"""Benchmark regenerating Fig. 6: the enterprise packet-size CDF."""

from _harness import run_figure

from repro.experiments import fig06_packet_size_cdf


def test_fig06_packet_size_cdf(benchmark):
    result = run_figure(
        benchmark,
        "Fig. 6 — enterprise datacenter packet-size distribution",
        fig06_packet_size_cdf.run,
        sample_count=20_000,
    )
    assert abs(result["analytic_mean_bytes"] - 882) < 30
    assert abs(result["fraction_below_160B_payload"] - 0.30) < 0.05
