"""Benchmark regenerating Fig. 11: per-server latency with 8 NF servers."""

from _harness import bench_runner, run_figure

from repro.experiments import fig11_multi_server_latency


def test_fig11_multi_server_latency(benchmark):
    rows = run_figure(
        benchmark,
        "Fig. 11 — per-server latency, 8 NF servers, 384-byte packets",
        fig11_multi_server_latency.run,
        runner=bench_runner(),
    )
    assert len(rows) == 8
    # PayloadPark must not add latency; the paper reports a ~9 % win.
    average_win = sum(row["latency_win_percent"] for row in rows) / len(rows)
    assert average_win > -5.0
