"""Benchmark regenerating Fig. 13: packet recirculation (384 parked bytes)."""

from _harness import bench_runner, run_figure

from repro.experiments import fig13_recirculation


def test_fig13_recirculation(benchmark):
    rows = run_figure(
        benchmark,
        "Fig. 13 — recirculation-enabled PayloadPark (FW -> NAT -> LB, 10 GbE)",
        fig13_recirculation.run,
        runner=bench_runner(),
    )
    saturated = [row for row in rows if row["send_rate_gbps"] >= 12.0]
    # Past the baseline's saturation, parking 384 bytes beats parking 160.
    assert all(row["pp384_gain_percent"] >= row["pp160_gain_percent"] for row in saturated)
    # Recirculation increases the PCIe savings while the baseline link is not
    # yet saturated (paper: ≈23 % for all send rates before saturation).
    unsaturated = [row for row in rows if row["send_rate_gbps"] <= 10.5]
    assert all(row["pp384_pcie_savings_percent"] > 15.0 for row in unsaturated)
