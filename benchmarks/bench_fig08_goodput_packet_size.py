"""Benchmark regenerating Fig. 8: goodput vs. fixed packet size."""

from _harness import bench_runner, run_figure

from repro.experiments import fig08_fixed_sizes


def test_fig08_goodput_vs_packet_size(benchmark):
    rows = run_figure(
        benchmark,
        "Fig. 8 — goodput with fixed packet sizes (Firewall, NAT, FW -> NAT; 40 GbE)",
        fig08_fixed_sizes.run,
        runner=bench_runner(),
    )
    gains = {
        (row["chain"], row["packet_size_bytes"]): row["goodput_gain_percent"] for row in rows
    }
    # PayloadPark wins for every chain at 384-1492 bytes (paper: 10-36 %)...
    for chain in ("firewall", "nat", "fw_nat"):
        for size in (512, 1024, 1492):
            assert gains[(chain, size)] > 5.0
    # ...and the gain shrinks to (roughly) nothing at 256 bytes.
    for chain in ("firewall", "nat", "fw_nat"):
        assert gains[(chain, 256)] < gains[(chain, 512)]
