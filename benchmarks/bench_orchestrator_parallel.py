"""Benchmark: orchestrator multi-process fan-out vs. serial execution.

Runs the same 8-point comparison campaign twice — serial in-process and
over a worker pool — and reports the wall-clock speedup.  Each grid
point owns a private event loop, so the sweep is embarrassingly parallel
and the speedup should approach ``min(workers, points)`` on an idle
multi-core machine (pool startup and result pickling are the overheads).
"""

import multiprocessing
import sys
import time

from _harness import BENCH_TIME_SCALE

from repro.orchestrator import CampaignExecutor, CampaignSpec

#: Worker processes used for the parallel leg.
WORKERS = min(4, multiprocessing.cpu_count())


def _campaign() -> CampaignSpec:
    return CampaignSpec(
        name="bench-orchestrator-parallel",
        scenario="fw_nat_lb_10ge",
        grid={
            "send_rate_gbps": [4.0, 6.0, 8.0, 10.5],
            "expiry_threshold": [1, 10],
        },
        time_scale=BENCH_TIME_SCALE,
    )


def _timed_run(workers: int) -> float:
    campaign = _campaign()
    started = time.perf_counter()
    summary = CampaignExecutor(workers=workers).run_campaign(campaign)
    elapsed = time.perf_counter() - started
    assert summary.executed == campaign.point_count
    assert summary.failed == 0
    return elapsed

def test_orchestrator_parallel_speedup(benchmark):
    serial_s = _timed_run(workers=1)
    parallel_s = benchmark.pedantic(
        lambda: _timed_run(workers=WORKERS), rounds=1, iterations=1
    )
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    sys.__stdout__.write(
        f"\nOrchestrator 8-point sweep: serial {serial_s:.2f}s, "
        f"{WORKERS} workers {parallel_s:.2f}s, speedup {speedup:.2f}x\n"
    )
    sys.__stdout__.flush()
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["speedup"] = round(speedup, 3)
    # Speedup is only observable with real cores to spread across.
    if multiprocessing.cpu_count() >= 4:
        assert speedup > 1.5
    elif multiprocessing.cpu_count() >= 2:
        assert speedup > 1.1
