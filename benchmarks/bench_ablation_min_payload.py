"""Ablation: the minimum-payload split threshold (§6.3.3 discussion).

The prototype refuses to split payloads smaller than the parked size
(160 bytes) so that a table slot is never wasted on a partial payload;
the paper suggests raising the threshold to 384 bytes would use switch
memory even better.  This ablation compares thresholds on the enterprise
mix, reporting how many packets are parked and what goodput results.
"""

from dataclasses import replace

from _harness import bench_runner, run_figure

from repro.core.config import PayloadParkConfig
from repro.experiments.runner import DeploymentKind
from repro.experiments.scenarios import fw_nat_40ge_enterprise


def _run(thresholds=(0, 160, 384), send_rate_gbps=34.0):
    runner = bench_runner()
    rows = []
    for threshold in thresholds:
        scenario = fw_nat_40ge_enterprise(send_rate_gbps=send_rate_gbps)
        scenario = replace(
            scenario,
            name=f"min-split-{threshold}B",
            payloadpark=PayloadParkConfig(
                sram_fraction=0.26, expiry_threshold=1, min_split_payload=threshold
            ),
        )
        report = runner.run_deployment(scenario, DeploymentKind.PAYLOADPARK)
        total_attempts = report.splits + report.split_disabled
        rows.append(
            {
                "min_split_payload_bytes": threshold,
                "goodput_gbps": round(report.goodput_to_nf_gbps, 4),
                "splits": report.splits,
                "split_disabled": report.split_disabled,
                "split_fraction": round(report.splits / total_attempts, 3)
                if total_attempts
                else 0.0,
                "premature_evictions": report.premature_evictions,
            }
        )
    return rows


def test_ablation_min_split_payload(benchmark):
    rows = run_figure(
        benchmark,
        "Ablation — minimum payload size worth splitting (enterprise mix, FW -> NAT, 40 GbE)",
        _run,
    )
    by_threshold = {row["min_split_payload_bytes"]: row for row in rows}
    # Raising the threshold parks fewer packets...
    assert by_threshold[384]["splits"] < by_threshold[160]["splits"]
    # ...and lowering it to zero parks (nearly) everything.
    assert by_threshold[0]["split_fraction"] >= by_threshold[160]["split_fraction"]
