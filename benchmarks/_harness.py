"""Shared helpers for the benchmark suite.

Every benchmark regenerates one figure or table of the paper's
evaluation: it executes the corresponding experiment module once (the
simulation itself is the thing being timed), prints the resulting rows
in the shape of the paper's figure, and attaches them to
``benchmark.extra_info`` so they land in the JSON output of
``pytest-benchmark``.

Set ``REPRO_BENCH_TIME_SCALE`` (default ``0.5``) to trade fidelity for
speed: it scales every scenario's simulated duration.
"""

from __future__ import annotations

import os
import sys
from typing import Callable, List, Optional, Sequence

from repro.experiments.runner import ExperimentRunner
from repro.telemetry.report import render_table

#: Simulated-time scale used by all benchmarks (1.0 = the scenarios' full horizons).
BENCH_TIME_SCALE = float(os.environ.get("REPRO_BENCH_TIME_SCALE", "0.4"))


def bench_runner() -> ExperimentRunner:
    """An experiment runner configured for benchmark use."""
    return ExperimentRunner(time_scale=BENCH_TIME_SCALE)


def run_figure(
    benchmark,
    title: str,
    func: Callable[..., List[dict]],
    columns: Optional[Sequence[str]] = None,
    **kwargs,
):
    """Execute *func* once under pytest-benchmark and print its rows."""
    rows = benchmark.pedantic(lambda: func(**kwargs), rounds=1, iterations=1)
    if isinstance(rows, dict):
        printable = rows.get("rows", [rows])
    else:
        printable = rows
    table = render_table(printable, columns=list(columns) if columns else None)
    # Write the regenerated figure straight to the real stdout so it shows up
    # in the benchmark log even though pytest captures per-test output.
    sys.__stdout__.write(f"\n{title}\n{table}\n")
    sys.__stdout__.flush()
    benchmark.extra_info["title"] = title
    benchmark.extra_info["rows"] = printable
    return rows
