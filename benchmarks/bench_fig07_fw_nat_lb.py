"""Benchmark regenerating Fig. 7 and the §6.2.1 40 GbE result."""

from _harness import bench_runner, run_figure

from repro.experiments import fig07_goodput_latency
from repro.telemetry.report import render_table


def test_fig07_goodput_latency_sweep(benchmark):
    rows = run_figure(
        benchmark,
        "Fig. 7 — goodput and latency vs. send rate (FW -> NAT -> LB, NetBricks, 10 GbE)",
        fig07_goodput_latency.run,
        runner=bench_runner(),
    )
    below = [row for row in rows if row["send_rate_gbps"] <= 9.5]
    above = [row for row in rows if row["send_rate_gbps"] >= 10.5]
    # Below link saturation the deployments are equivalent and healthy.
    assert all(row["baseline_healthy"] and row["payloadpark_healthy"] for row in below)
    # Past saturation PayloadPark delivers more useful bytes to the NFs.
    assert all(row["goodput_gain_percent"] > 0 for row in above)


def test_fig07_40ge_fw_nat_gain(benchmark):
    row = benchmark.pedantic(
        lambda: fig07_goodput_latency.run_40ge_fw_nat(runner=bench_runner()),
        rounds=1,
        iterations=1,
    )
    print()
    print("§6.2.1 — FW -> NAT on OpenNetVM, 40 GbE NIC")
    print(render_table([row]))
    benchmark.extra_info["rows"] = [row]
    assert row["pcie_savings_percent"] > 5.0
