"""Benchmark regenerating Fig. 16: 512-byte packets, FW -> NAT, 40 GbE."""

from _harness import bench_runner, run_figure

from repro.experiments import fig16_small_packets


def test_fig16_small_packets(benchmark):
    rows = run_figure(
        benchmark,
        "Fig. 16 — goodput and latency with 512-byte packets (FW -> NAT, 40 GbE)",
        fig16_small_packets.run,
        runner=bench_runner(),
    )
    top = [row for row in rows if row["send_rate_gbps"] >= 40.0]
    low = [row for row in rows if row["send_rate_gbps"] <= 28.0]
    # Beyond the baseline's NIC/PCIe ceiling PayloadPark keeps processing more packets.
    assert all(
        row["payloadpark_goodput_gbps"] > row["baseline_goodput_gbps"] * 1.05 for row in top
    )
    # Before saturation PayloadPark's latency is no worse than the baseline's.
    assert all(
        row["payloadpark_latency_us"] <= row["baseline_latency_us"] * 1.10 for row in low
    )
