"""Ablation: static memory slicing between NF servers sharing a pipe (§6.2.3).

The prototype slices the reserved lookup-table memory statically between
the NF servers on a pipe, trading peak capacity for performance
isolation.  This ablation compares equal slicing against a deliberately
skewed split (75/25) under identical offered load, showing that the
starved binding falls back to non-PayloadPark mode more often while the
favoured one is unaffected — the isolation property the paper argues for.
"""

from dataclasses import replace

from _harness import bench_runner, run_figure

from repro.experiments.runner import DeploymentKind, ExperimentRunner, multi_server_bindings
from repro.experiments.scenarios import multi_server_384b


def _run(send_rate_gbps=10.0):
    runner = bench_runner()
    rows = []
    for label, weights in (("equal 50/50", (1.0, 1.0)), ("skewed 75/25", (3.0, 1.0))):
        scenario = replace(
            multi_server_384b(server_count=2, send_rate_gbps=send_rate_gbps),
            name=f"slicing-{label}",
        )
        bindings = multi_server_bindings(2)
        bindings = [replace(b, memory_weight=w) for b, w in zip(bindings, weights)]

        reports = _run_with_bindings(runner, scenario, bindings)
        for binding, report in zip(bindings, reports):
            rows.append(
                {
                    "slicing": label,
                    "binding": binding.name,
                    "memory_weight": binding.memory_weight,
                    "goodput_gbps": round(report.goodput_to_nf_gbps, 4),
                    "splits": report.splits,
                    "split_disabled": report.split_disabled,
                    "premature_evictions": report.premature_evictions,
                }
            )
    return rows


def _run_with_bindings(runner: ExperimentRunner, scenario, bindings):
    """Run the PayloadPark deployment with an explicit binding list."""
    from repro.core.program import PayloadParkProgram
    from repro.netsim.eventloop import EventLoop
    from repro.netsim.topology import MultiServerTopology
    from repro.traffic.pktgen import PktGenConfig
    from dataclasses import replace as dc_replace

    env = EventLoop()
    program = PayloadParkProgram(
        dc_replace(scenario.payloadpark, bindings=[]), bindings=bindings
    )
    models = [runner._build_server_model(scenario) for _ in bindings]
    pktgen_configs = [
        PktGenConfig(
            rate_gbps=scenario.send_rate_gbps, workload=scenario.workload, seed=scenario.seed + i
        )
        for i in range(len(bindings))
    ]
    topology = MultiServerTopology(
        env, program, server_models=models, pktgen_configs=pktgen_configs, nic_spec=scenario.nic
    )
    return runner._execute(scenario, DeploymentKind.PAYLOADPARK, topology, program)


def test_ablation_memory_slicing(benchmark):
    rows = run_figure(
        benchmark,
        "Ablation — static memory slicing between two NF servers on one pipe",
        _run,
    )
    equal = [row for row in rows if row["slicing"] == "equal 50/50"]
    skewed = {row["binding"]: row for row in rows if row["slicing"] == "skewed 75/25"}
    # Equal slicing treats both servers alike.
    assert abs(equal[0]["goodput_gbps"] - equal[1]["goodput_gbps"]) < 0.2
    # The favoured binding keeps (at least) its goodput; the starved one
    # falls back to non-PayloadPark mode more often than its peer.
    assert skewed["srv1"]["split_disabled"] >= skewed["srv0"]["split_disabled"]
