#!/usr/bin/env python3
"""Benchmark the simulation fast path against the reference slow path.

Runs the Fig. 7 scenario (FW -> NAT -> LB on a 10 GbE NIC) through both
deployments on each simulation path and reports
simulated-packets-per-wallclock-second plus the fast/slow speedup.
Results are byte-identical between the two paths (the golden-figure
suite asserts this); only wallclock differs.

Usage::

    PYTHONPATH=src python benchmarks/bench_fastpath.py            # full run
    PYTHONPATH=src python benchmarks/bench_fastpath.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_fastpath.py --check    # vs baseline

This is a thin wrapper over ``repro bench`` (see :mod:`repro.bench`);
both share the committed reference numbers in
``benchmarks/fastpath_baseline.json``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
