"""Benchmark: packet-generation throughput of the workload subsystem.

Measures packets/second of each registered generative workload's packet
source against the legacy :class:`~repro.traffic.pktgen.PacketFactory`
baseline, plus the cost of full trace materialization (packet build +
arrival-gap sampling, the ``repro workload preview`` path).  Generation
must stay far faster than the simulator consumes packets, or the
workload layer would become the experiment bottleneck.
"""

import sys
import time

from repro.traffic.pktgen import PacketFactory, PktGenConfig
from repro.traffic.workload import Workload
from repro.workloads import get_workload, workload_names
from repro.workloads.generative import GenerativeWorkload

#: Packets generated per measured leg.
PACKETS = 20_000


def _pps(build_next, count=PACKETS) -> float:
    started = time.perf_counter()
    for _ in range(count):
        build_next()
    return count / (time.perf_counter() - started)


def _legacy_factory_pps() -> float:
    factory = PacketFactory(
        PktGenConfig(rate_gbps=8.0, workload=Workload.enterprise(), seed=1)
    )
    return _pps(factory.next_packet)


def run() -> list:
    rows = [
        {
            "generator": "PacketFactory (legacy)",
            "packets_per_sec": round(_legacy_factory_pps()),
            "trace_packets_per_sec": "-",
        }
    ]
    for name in workload_names():
        spec = get_workload(name)
        if isinstance(spec, GenerativeWorkload):
            source = spec.packet_source(seed=1)
            source_pps = round(_pps(source.next_packet))
        else:
            source_pps = "-"
        started = time.perf_counter()
        spec.trace(seed=1, max_packets=PACKETS)
        trace_pps = round(PACKETS / (time.perf_counter() - started))
        rows.append(
            {
                "generator": name,
                "packets_per_sec": source_pps,
                "trace_packets_per_sec": trace_pps,
            }
        )
    return rows


def test_workload_generation_throughput(benchmark):
    from _harness import run_figure

    rows = run_figure(
        benchmark,
        "Workload generation throughput (packets/sec)",
        run,
        columns=["generator", "packets_per_sec", "trace_packets_per_sec"],
    )
    legacy = rows[0]["packets_per_sec"]
    for row in rows[1:]:
        if row["packets_per_sec"] == "-":
            continue
        # Generative sources must stay within 5x of the legacy factory.
        assert row["packets_per_sec"] * 5 > legacy, row


if __name__ == "__main__":
    from repro.telemetry.report import render_table

    print(render_table(run()))
    sys.exit(0)
