"""Benchmark regenerating Fig. 10: per-server goodput with 8 NF servers."""

from _harness import bench_runner, run_figure

from repro.experiments import fig10_multi_server


def test_fig10_multi_server_goodput(benchmark):
    rows = run_figure(
        benchmark,
        "Fig. 10 — per-server goodput, 8 NF servers, 384-byte packets",
        fig10_multi_server.run,
        runner=bench_runner(),
    )
    assert len(rows) == 8
    # Every server sees PayloadPark goodput at least on par with the baseline,
    # and the gains are consistent across servers (performance isolation).
    gains = [row["goodput_gain_percent"] for row in rows]
    assert all(gain > -2.0 for gain in gains)
    assert max(gains) - min(gains) < 30.0
