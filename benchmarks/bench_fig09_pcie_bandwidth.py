"""Benchmark regenerating Fig. 9: PCIe bandwidth vs. fixed packet size."""

from _harness import bench_runner, run_figure

from repro.experiments import fig09_pcie


def test_fig09_pcie_bandwidth(benchmark):
    rows = run_figure(
        benchmark,
        "Fig. 9 — PCIe bandwidth utilization with fixed packet sizes (FW -> NAT; 40 GbE)",
        fig09_pcie.run,
        runner=bench_runner(),
    )
    savings = {row["packet_size_bytes"]: row["pcie_savings_percent"] for row in rows}
    # Savings shrink as packets grow (paper: ≈58 % at 256 B down to ≈2-10 % at 1492 B).
    assert savings[256] > savings[512] > savings[1492]
    assert savings[256] > 30.0
    assert savings[1492] > 0.0
