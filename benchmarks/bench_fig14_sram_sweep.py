"""Benchmark regenerating Fig. 14: peak goodput vs. reserved switch memory."""

from _harness import bench_runner, run_figure

from repro.experiments import fig14_memory_sweep


def test_fig14_peak_goodput_vs_memory(benchmark):
    rows = run_figure(
        benchmark,
        "Fig. 14 — peak goodput vs. % of switch SRAM reserved (384-byte packets, EXP=1)",
        fig14_memory_sweep.run,
        runner=bench_runner(),
    )
    # Peak goodput must not decrease as more memory is reserved, and the
    # largest reservation must beat the smallest one.
    peaks = [row["peak_goodput_gbps"] for row in rows]
    assert peaks[-1] >= peaks[0]
    # Every reported peak is a healthy, eviction-free operating point.
    assert all(row["premature_evictions"] == 0 for row in rows)
