"""Benchmark regenerating Fig. 15: NF CPU cost vs. PayloadPark benefit."""

from _harness import bench_runner, run_figure

from repro.experiments import fig15_nf_cycles


def test_fig15_nf_cycles(benchmark):
    rows = run_figure(
        benchmark,
        "Fig. 15 — goodput with NF-Light / NF-Medium / NF-Heavy",
        fig15_nf_cycles.run,
        runner=bench_runner(),
    )
    gains = {(row["nf"], row["packet_size_bytes"]): row["goodput_gain_percent"] for row in rows}
    # Large packets benefit for every NF weight (the server is never compute bound).
    for nf_kind in ("light", "medium", "heavy"):
        assert gains[(nf_kind, 1492)] > 3.0
    # For small packets, a heavy NF leaves little or no gain compared to a light one.
    assert gains[("heavy", 256)] <= gains[("light", 1492)]
    assert gains[("heavy", 256)] < 10.0
