"""Benchmark regenerating Table 1: switch resource utilization."""

from _harness import run_figure

from repro.experiments import table1_resources


def test_table1_resource_utilization(benchmark):
    rows = run_figure(
        benchmark,
        "Table 1 — resource utilization on the simulated ASIC",
        table1_resources.run,
    )
    measured = {row["resource"]: row["measured_percent"] for row in rows}
    # Well under half the chip even in the 8-server configuration (paper: <50 %).
    assert measured["SRAM (8 NF servers) peak"] < 60.0
    # The 8-server configuration uses more memory than the 4-server one.
    assert measured["SRAM (8 NF servers) avg"] > measured["SRAM (4 NF servers) avg"]
    # PHV is not the limiting resource (paper: 37.65 %).
    assert measured["Packet Header Vector"] < 60.0
    # Each measured figure is within 15 percentage points of the paper's value.
    for row in rows:
        assert abs(row["measured_percent"] - row["paper_percent"]) < 15.0
