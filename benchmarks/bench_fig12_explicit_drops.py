"""Benchmark regenerating Fig. 12: eviction policies vs. Explicit Drops."""

from _harness import bench_runner, run_figure

from repro.experiments import fig12_explicit_drops


def test_fig12_explicit_drops(benchmark):
    rows = run_figure(
        benchmark,
        "Fig. 12 — goodput with/without Explicit Drops (FW -> NAT)",
        fig12_explicit_drops.run,
        runner=bench_runner(),
    )

    def goodput(fraction, policy):
        for row in rows:
            if row["firewall_drop_fraction"] == fraction and row["policy"] == policy:
                return row["goodput_gbps"]
        raise KeyError((fraction, policy))

    heavy_drop = 0.10
    # With firewall drops, a conservative threshold without Explicit Drops
    # wastes table space; Explicit Drops (or an aggressive threshold) recover it.
    assert goodput(heavy_drop, "No Explicit EXP=2") >= goodput(heavy_drop, "No Explicit EXP=10")
    assert goodput(heavy_drop, "Explicit EXP=10") >= goodput(heavy_drop, "No Explicit EXP=10")
    # PayloadPark beats the baseline at this operating point regardless of policy.
    assert goodput(heavy_drop, "Explicit EXP=10") > goodput(heavy_drop, "baseline")
