"""Compatibility shim so ``pip install -e .`` works without the ``wheel`` package.

Offline environments that lack the ``wheel`` module cannot build PEP 660
editable wheels; with this file present, ``pip install -e . --no-use-pep517
--no-build-isolation`` falls back to the classic ``setup.py develop`` path.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
