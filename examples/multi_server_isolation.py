#!/usr/bin/env python3
"""Multi-tenant setup: several NF servers share one switch (§6.2.3).

The switch reserves ≈40 % of its stateful memory and slices it statically
between the NF servers on each pipe.  Each server has its own traffic
generator; this script reports per-server goodput and latency under both
deployments and checks that the gains are consistent across servers —
the performance-isolation property that static slicing buys.

Run with:

    python examples/multi_server_isolation.py [server_count]
"""

import sys

from repro.experiments.fig10_multi_server import run_comparison, rows_from_result
from repro.experiments.fig11_multi_server_latency import rows_from_result as latency_rows
from repro.experiments.runner import ExperimentRunner
from repro.telemetry.report import render_table


def main() -> None:
    server_count = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"Running {server_count} NF servers (MAC swappers, 384-byte packets)...")
    result = run_comparison(
        server_count=server_count,
        send_rate_gbps=9.0,
        runner=ExperimentRunner(time_scale=0.75),
    )

    goodput = rows_from_result(result)
    latency = latency_rows(result)
    print()
    print("Per-server goodput (Fig. 10 shape):")
    print(render_table(goodput))
    print()
    print("Per-server latency (Fig. 11 shape):")
    print(render_table(latency))
    print()

    gains = [row["goodput_gain_percent"] for row in goodput]
    print(f"goodput gain spread across servers: min {min(gains):.1f}% / max {max(gains):.1f}%")
    aggregate = result.comparison
    print(f"aggregate premature evictions: {aggregate.payloadpark.premature_evictions} "
          f"(must be 0 for functional equivalence)")


if __name__ == "__main__":
    main()
