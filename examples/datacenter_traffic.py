#!/usr/bin/env python3
"""Enterprise datacenter workload: sweep send rates across the FW→NAT→LB chain.

Reproduces the headline experiment of the paper (Fig. 7): the three-NF
chain on NetBricks behind a 10 GbE NIC, driven by the Benson-style
enterprise packet-size mix.  The script also exports the synthetic
workload to a PCAP file, mirroring how the paper replays a PCAP with the
measured packet-size distribution.

Run with:

    python examples/datacenter_traffic.py
"""

from pathlib import Path

from repro.experiments.fig07_goodput_latency import run as run_fig07
from repro.experiments.runner import ExperimentRunner
from repro.telemetry.report import render_table
from repro.traffic.workload import Workload


def main() -> None:
    workload = Workload.enterprise()
    pcap_path = Path("enterprise_workload.pcap")
    workload.export_pcap(pcap_path, packet_count=2_000)
    print(f"Exported a representative workload to {pcap_path} "
          f"(mean frame size {workload.mean_frame_bytes():.0f} B, "
          f"{workload.useful_fraction() * 100:.1f}% useful header bytes).")
    print()

    print("Sweeping send rates for FW -> NAT -> LB on NetBricks (10 GbE)...")
    rows = run_fig07(
        rates_gbps=(4.0, 8.0, 10.5, 12.0),
        runner=ExperimentRunner(time_scale=0.75),
    )
    print(render_table(rows))
    print()

    saturated = [row for row in rows if row["send_rate_gbps"] > 10.0]
    best = max(row["goodput_gain_percent"] for row in saturated)
    print(f"Maximum goodput gain past the baseline's link saturation: {best:.1f}% "
          f"(the paper reports ≈13% for this chain, ≈28% with recirculation).")


if __name__ == "__main__":
    main()
