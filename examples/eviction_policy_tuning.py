#!/usr/bin/env python3
"""Eviction-policy tuning: expiry thresholds vs. Explicit Drop notifications.

When the firewall drops packets, their parked payloads linger in the
lookup table until the expiry threshold evicts them.  This script sweeps
the firewall drop rate and compares an aggressive threshold (EXP=2), a
conservative one (EXP=10), and the Explicit-Drop variant in which a
lightly modified NF framework tells the switch about drops immediately
(§6.2.4, Fig. 12).

Run with:

    python examples/eviction_policy_tuning.py
"""

from repro.experiments.fig12_explicit_drops import run as run_fig12
from repro.experiments.runner import ExperimentRunner
from repro.telemetry.report import render_table


def main() -> None:
    print("Sweeping firewall drop rates and eviction policies (FW -> NAT, enterprise mix)...")
    rows = run_fig12(
        drop_fractions=(0.0, 0.05, 0.10),
        send_rate_gbps=10.5,
        runner=ExperimentRunner(time_scale=0.75),
    )
    print(render_table(rows))
    print()

    def goodput(fraction, policy):
        return next(
            row["goodput_gbps"]
            for row in rows
            if row["firewall_drop_fraction"] == fraction and row["policy"] == policy
        )

    heavy = 0.10
    aggressive = goodput(heavy, "No Explicit EXP=2")
    conservative = goodput(heavy, "No Explicit EXP=10")
    explicit = goodput(heavy, "Explicit EXP=10")
    print(f"At a {heavy:.0%} firewall drop rate:")
    print(f"  aggressive eviction (EXP=2)              : {aggressive:.3f} Gbps")
    print(f"  conservative eviction (EXP=10)           : {conservative:.3f} Gbps")
    print(f"  conservative + Explicit Drops (EXP=10)   : {explicit:.3f} Gbps")
    print("Explicit Drops let a conservative policy match the aggressive one, "
          "at the cost of a ~50-line NF-framework change (§6.2.4).")


if __name__ == "__main__":
    main()
