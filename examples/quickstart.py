#!/usr/bin/env python3
"""Quickstart: compare PayloadPark against the baseline on one operating point.

Builds the paper's Fig. 5 testbed in simulation — a PktGen traffic
generator connected to a Tofino-like switch through two ports, and an NF
server running a Firewall → NAT chain on OpenNetVM behind a 10 GbE NIC —
and runs it twice: once with plain L2 forwarding (the baseline) and once
with the PayloadPark program parking 160 payload bytes per packet.

Run with:

    python examples/quickstart.py [send_rate_gbps]
"""

import sys

from repro.experiments.quickstart import quickstart_scenario
from repro.experiments.runner import ExperimentRunner
from repro.telemetry.report import render_table


def main() -> None:
    send_rate_gbps = float(sys.argv[1]) if len(sys.argv) > 1 else 10.5
    scenario = quickstart_scenario(send_rate_gbps=send_rate_gbps)

    print(f"Scenario: {scenario.name}")
    print(f"  chain     : {scenario.chain_factory().name}")
    print(f"  framework : {scenario.framework.name}")
    print(f"  NIC       : {scenario.nic.name}")
    print(f"  workload  : {scenario.workload.name} "
          f"(mean frame {scenario.workload.mean_frame_bytes():.0f} B)")
    print(f"  send rate : {send_rate_gbps} Gbps")
    print()

    runner = ExperimentRunner()
    result = runner.compare(scenario)
    comparison = result.comparison

    print(render_table([comparison.baseline.as_row(), comparison.payloadpark.as_row()]))
    print()
    print(f"goodput gain   : {comparison.goodput_gain_percent:+.2f}%")
    print(f"PCIe savings   : {comparison.pcie_savings_percent:+.2f}%")
    print(f"latency delta  : {comparison.latency_delta_us:+.2f} us "
          f"(negative means PayloadPark is faster)")
    print(f"premature evictions (PayloadPark): {comparison.payloadpark.premature_evictions}")


if __name__ == "__main__":
    main()
