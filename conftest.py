"""Pytest bootstrap: make ``src/`` importable without an installed package.

The canonical workflow is ``pip install -e .``; this fallback lets the
test and benchmark suites run from a plain checkout (e.g. in offline CI
where editable installs are awkward).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
