"""Pytest bootstrap: make ``src/`` importable without an installed package.

The canonical workflow is ``pip install -e .``; this fallback lets the
test and benchmark suites run from a plain checkout (e.g. in offline CI
where editable installs are awkward).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_configure(config):
    """Register repo-local markers.

    ``validation`` marks the heavyweight validation-subsystem checks
    (the 50-scenario fuzz acceptance run, corpus replay, injected-bug
    shrinking).  The fast lane skips them: ``pytest -m "not validation"``.
    """
    config.addinivalue_line(
        "markers",
        "validation: heavyweight validation-subsystem checks "
        "(deselect with -m \"not validation\")",
    )
