"""The observability plane: metrics, flight recording and phase profiling.

Three instruments, all default-off, all wired through the testbed by
:class:`~repro.obs.plane.ObservabilityPlane` when
``ScenarioConfig.observe`` enables them:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges,
  fixed-bucket histograms, and ring-buffer time series sampled
  periodically off the event loop (SRAM occupancy, park/evict/merge
  rates, per-link drops, NF cache hit ratios, goodput over time).
* :class:`~repro.obs.trace.FlightRecorder` — deterministic 1-in-N
  sampled packet-lifecycle spans, exportable as JSONL and Chrome
  trace-event JSON; fault windows appear as trace annotations.
* :class:`~repro.obs.profiler.PhaseProfiler` — wall-time attribution
  to engine stages (pipeline walk, NF processing, traffic generation,
  link transmit, fault injection, residual event dispatch).

The disabled path is budgeted at <2% overhead and gated by
``repro bench --obs-check``.
"""

from repro.obs.config import ObserveSpec
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.plane import ObservabilityPlane, RunObservation
from repro.obs.profiler import PhaseProfiler
from repro.obs.session import (
    ObservationSink,
    current_observation_sink,
    observation_sink,
)
from repro.obs.trace import FlightRecorder

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityPlane",
    "ObservationSink",
    "ObserveSpec",
    "PhaseProfiler",
    "RunObservation",
    "TimeSeries",
    "current_observation_sink",
    "observation_sink",
]
