"""Metric-by-metric diff between two observability exports.

``repro obs diff <runA> <runB>`` compares the ``repro.metrics/v1``
exports PR 6's planes write (via ``repro observe run`` / ``repro run
--metrics`` / campaign ``observe:`` blocks) so a regression hunt can
start from *which counters moved*, not from raw JSON.  Each argument is
a metrics export file or a directory holding exactly one
``*.metrics.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.schema import SchemaError, validate_metrics
from repro.telemetry.report import render_table


def load_metrics_export(path) -> Dict[str, Any]:
    """Load and validate a metrics export from a file or directory."""
    path = Path(path)
    if path.is_dir():
        candidates = sorted(path.rglob("*.metrics.json"))
        if not candidates:
            raise SchemaError(f"{path}: no *.metrics.json export found")
        if len(candidates) > 1:
            names = ", ".join(str(c.relative_to(path)) for c in candidates[:5])
            raise SchemaError(
                f"{path}: ambiguous — {len(candidates)} metrics exports ({names}"
                f"{', ...' if len(candidates) > 5 else ''}); pass one file"
            )
        path = candidates[0]
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SchemaError(f"{path}: unreadable metrics export: {exc}") from exc
    return validate_metrics(data)


def _series_last(export: Dict[str, Any]) -> Dict[str, float]:
    """Final value of every series (the end-of-run reading)."""
    last = {}
    for name, entry in export.get("series", {}).items():
        points = entry.get("points") or []
        if points:
            last[name] = points[-1][1]
    return last


def _numeric_diff(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    entries = {}
    for name in sorted(set(a) | set(b)):
        if name not in a:
            entries[name] = {"a": None, "b": b[name], "delta": None, "percent": None}
            continue
        if name not in b:
            entries[name] = {"a": a[name], "b": None, "delta": None, "percent": None}
            continue
        va, vb = a[name], b[name]
        if not isinstance(va, (int, float)) or not isinstance(vb, (int, float)):
            continue
        delta = vb - va
        percent = (delta / va * 100.0) if va else (None if delta == 0 else float("inf"))
        entries[name] = {
            "a": va,
            "b": vb,
            "delta": round(delta, 6),
            "percent": round(percent, 2) if percent not in (None, float("inf")) else percent,
        }
    return entries


def diff_metrics(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Structured diff of two validated metrics exports."""
    histograms = {}
    ha, hb = a.get("histograms", {}), b.get("histograms", {})
    for name in sorted(set(ha) | set(hb)):
        summary_a = {k: ha[name][k] for k in ("count", "mean")} if name in ha else None
        summary_b = {k: hb[name][k] for k in ("count", "mean")} if name in hb else None
        entry: Dict[str, Any] = {"a": summary_a, "b": summary_b}
        if summary_a and summary_b:
            entry["count_delta"] = summary_b["count"] - summary_a["count"]
            entry["mean_delta"] = round(summary_b["mean"] - summary_a["mean"], 6)
        histograms[name] = entry
    return {
        "counters": _numeric_diff(a.get("counters", {}), b.get("counters", {})),
        "gauges": _numeric_diff(a.get("gauges", {}), b.get("gauges", {})),
        "series_last": _numeric_diff(_series_last(a), _series_last(b)),
        "histograms": histograms,
        "samples_taken": {"a": a.get("samples_taken"), "b": b.get("samples_taken")},
    }


def _magnitude(entry: Dict[str, Any]) -> float:
    percent = entry.get("percent")
    if percent is None:
        # One-sided entries sort after everything that moved.
        return -1.0
    if percent == float("inf"):
        return float("inf")
    return abs(percent)


def format_diff(diff: Dict[str, Any], top: Optional[int] = None) -> str:
    """Render a diff as aligned tables, biggest movers first."""
    sections = []
    for section in ("counters", "gauges", "series_last"):
        entries = diff.get(section, {})
        rows: List[Dict[str, Any]] = []
        for name, entry in sorted(
            entries.items(), key=lambda item: _magnitude(item[1]), reverse=True
        ):
            rows.append(
                {
                    "metric": name,
                    "a": entry["a"] if entry["a"] is not None else "-",
                    "b": entry["b"] if entry["b"] is not None else "-",
                    "delta": entry["delta"] if entry["delta"] is not None else "-",
                    "percent": (
                        f"{entry['percent']:+.2f}%"
                        if isinstance(entry["percent"], (int, float))
                        and entry["percent"] != float("inf")
                        else ("new" if entry["a"] is None else
                              "gone" if entry["b"] is None else "inf")
                    ),
                }
            )
        if top is not None:
            rows = rows[:top]
        if rows:
            sections.append(f"== {section} ==\n" + render_table(rows))
    histograms = diff.get("histograms", {})
    rows = []
    for name, entry in sorted(histograms.items()):
        if entry.get("a") and entry.get("b"):
            rows.append(
                {
                    "histogram": name,
                    "count_a": entry["a"]["count"],
                    "count_b": entry["b"]["count"],
                    "count_delta": entry["count_delta"],
                    "mean_delta": entry["mean_delta"],
                }
            )
    if rows:
        sections.append("== histograms ==\n" + render_table(rows))
    if not sections:
        return "(no comparable metrics)"
    return "\n\n".join(sections)
