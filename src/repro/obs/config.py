"""The observability specification: what to record, and how densely.

:class:`ObserveSpec` is the plain-data contract between a scenario and
the observability plane.  It travels inside
``ScenarioConfig.observe`` (and campaign run options), so it must stay
frozen, hashable and picklable — campaign workers rebuild the plane on
their side of the process boundary from this spec alone.

Everything defaults *off*: a scenario without a spec (or with every
feature flag false) runs the exact pre-observability hot path, which is
what the <2% disabled-overhead budget in ``repro bench --obs-check``
gates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping, Optional

from repro.errors import ObserveSpecError

#: Keys accepted in a dict-form observe spec.
_SPEC_KEYS = frozenset(
    {
        "metrics",
        "trace",
        "profile",
        "sample_interval_us",
        "series_capacity",
        "trace_sample_every",
        "trace_max_events",
    }
)


@dataclass(frozen=True)
class ObserveSpec:
    """Which observability features a run enables, and their knobs.

    Attributes
    ----------
    metrics:
        Enable the :class:`~repro.obs.metrics.MetricsRegistry` with
        periodic time-series sampling off the event loop.
    trace:
        Enable the :class:`~repro.obs.trace.FlightRecorder` (sampled
        packet-lifecycle spans, JSONL / Chrome trace export).
    profile:
        Enable the :class:`~repro.obs.profiler.PhaseProfiler`
        (wall-time attribution to engine stages).
    sample_interval_us:
        Simulated time between metric samples.
    series_capacity:
        Ring-buffer capacity of each time series; older samples are
        overwritten once full (the overwrite count is exported).
    trace_sample_every:
        Deterministic 1-in-N packet sampling: the flight recorder
        follows every N-th packet each generator emits.
    trace_max_events:
        Hard cap on recorded trace events; overflow is counted and
        reported in the export metadata, never silently dropped.
    """

    metrics: bool = False
    trace: bool = False
    profile: bool = False
    sample_interval_us: float = 50.0
    series_capacity: int = 512
    trace_sample_every: int = 1
    trace_max_events: int = 200_000

    def __post_init__(self) -> None:
        if self.sample_interval_us <= 0:
            raise ObserveSpecError(
                f"sample_interval_us must be positive, got {self.sample_interval_us}"
            )
        if self.series_capacity < 2:
            raise ObserveSpecError(
                f"series_capacity must be at least 2, got {self.series_capacity}"
            )
        if self.trace_sample_every < 1:
            raise ObserveSpecError(
                f"trace_sample_every must be at least 1, got {self.trace_sample_every}"
            )
        if self.trace_max_events < 1:
            raise ObserveSpecError(
                f"trace_max_events must be at least 1, got {self.trace_max_events}"
            )

    @property
    def enabled(self) -> bool:
        """True when any feature is on (the plane is worth building)."""
        return self.metrics or self.trace or self.profile

    @property
    def sample_interval_ns(self) -> int:
        """The metric sampling interval in integer nanoseconds (>= 1)."""
        return max(1, int(round(self.sample_interval_us * 1_000)))

    @classmethod
    def full(cls, **overrides: Any) -> "ObserveSpec":
        """Every feature on — the ``repro observe run`` configuration."""
        spec = cls(metrics=True, trace=True, profile=True)
        return replace(spec, **overrides) if overrides else spec

    @classmethod
    def from_spec(cls, spec: Any) -> Optional["ObserveSpec"]:
        """Normalize ``ScenarioConfig.observe`` / campaign option forms.

        ``None``/``False`` mean off; ``True`` enables metrics only (the
        cheap default for campaign summaries); a mapping configures
        features explicitly; an existing spec passes through.
        """
        if spec is None or spec is False:
            return None
        if isinstance(spec, ObserveSpec):
            return spec
        if spec is True:
            return cls(metrics=True)
        if isinstance(spec, Mapping):
            unknown = set(spec) - _SPEC_KEYS
            if unknown:
                raise ObserveSpecError(
                    f"unknown observe key(s) {sorted(unknown)}; "
                    f"known: {sorted(_SPEC_KEYS)}"
                )
            try:
                return cls(**dict(spec))
            except TypeError as exc:  # non-keyword-able values
                raise ObserveSpecError(f"invalid observe spec {spec!r}: {exc}") from exc
        raise ObserveSpecError(
            f"observe spec must be None, a bool, a mapping or an ObserveSpec; got {spec!r}"
        )

    def as_dict(self) -> dict:
        """Plain-data form, round-trippable through :meth:`from_spec`."""
        return asdict(self)
