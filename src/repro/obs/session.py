"""The ambient observation sink: where finished runs deliver their exports.

Mirrors the runner's ambient-override contexts (``default_seed``,
``run_observer``, …): installing a sink is orthogonal to enabling
observability on a scenario, so the CLI can say "observe *and* give me
the exports" while a campaign worker collects summaries without the
runner knowing who is listening.  With no sink installed, finished
observations are simply discarded — enabling observability never
obligates a caller to consume it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, List, Optional


class ObservationSink:
    """Collects :class:`~repro.obs.plane.RunObservation` objects."""

    def __init__(self) -> None:
        self.observations: List[Any] = []

    def add(self, observation: Any) -> None:
        self.observations.append(observation)


#: Active sink installed by :func:`observation_sink` (None = discard).
_SINK: Optional[ObservationSink] = None


def current_observation_sink() -> Optional[ObservationSink]:
    """The sink finished runs should deliver to (None when absent)."""
    return _SINK


@contextmanager
def observation_sink(
    sink: Optional[ObservationSink] = None,
) -> Iterator[ObservationSink]:
    """Install *sink* (or a fresh one) for the duration of the block."""
    global _SINK
    if sink is None:
        sink = ObservationSink()
    previous = _SINK
    _SINK = sink
    try:
        yield sink
    finally:
        _SINK = previous
