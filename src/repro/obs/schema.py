"""Export-schema validators for the observability plane.

These run in three places with one implementation: the unit/integration
suites (every export a test touches must validate), the CLI (exports
are validated *before* they are written, so a malformed file can never
be shipped), and the CI observe-smoke step (which re-validates the
files the smoke run produced).  All validators raise
:class:`SchemaError` (a :class:`~repro.errors.ObserveSpecError`) with a
path-ish message pointing at the offending field.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import ObserveSpecError
from repro.obs.metrics import METRICS_SCHEMA
from repro.obs.profiler import PROFILE_SCHEMA
from repro.obs.trace import TRACE_SCHEMA


class SchemaError(ObserveSpecError):
    """An observability export that violates its declared schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _require_keys(data: Dict[str, Any], keys, where: str) -> None:
    _require(isinstance(data, dict), f"{where}: expected an object")
    missing = [key for key in keys if key not in data]
    _require(not missing, f"{where}: missing key(s) {missing}")


def validate_metrics(data: Any) -> Dict[str, Any]:
    """Validate a ``repro.metrics/v1`` export; returns it for chaining."""
    _require_keys(
        data,
        ("schema", "sample_interval_ns", "samples_taken",
         "counters", "gauges", "histograms", "series"),
        "metrics export",
    )
    _require(
        data["schema"] == METRICS_SCHEMA,
        f"metrics export: schema {data.get('schema')!r} != {METRICS_SCHEMA!r}",
    )
    for name, entry in data["series"].items():
        _require_keys(entry, ("kind", "points", "dropped_samples"), f"series {name!r}")
        _require(
            entry["kind"] in ("gauge", "cumulative"),
            f"series {name!r}: bad kind {entry['kind']!r}",
        )
        previous_ts = None
        for point in entry["points"]:
            _require(
                isinstance(point, (list, tuple)) and len(point) == 2,
                f"series {name!r}: points must be [t_ns, value] pairs",
            )
            _require(
                previous_ts is None or point[0] >= previous_ts,
                f"series {name!r}: timestamps must be non-decreasing",
            )
            previous_ts = point[0]
        if entry["kind"] == "cumulative":
            _require("rates_per_s" in entry, f"series {name!r}: missing rates_per_s")
    for name, histogram in data["histograms"].items():
        _require_keys(
            histogram, ("bounds", "counts", "count", "mean"), f"histogram {name!r}"
        )
        _require(
            len(histogram["counts"]) == len(histogram["bounds"]) + 1,
            f"histogram {name!r}: counts must have len(bounds)+1 buckets",
        )
        _require(
            sum(histogram["counts"]) == histogram["count"],
            f"histogram {name!r}: bucket counts do not sum to count",
        )
    return data


def validate_trace_jsonl(text: str) -> Dict[str, Any]:
    """Validate a ``repro.trace/v1`` JSONL export; returns the summary."""
    lines = [line for line in text.splitlines() if line]
    _require(len(lines) >= 2, "trace export: needs at least a header and a summary")
    try:
        records = [json.loads(line) for line in lines]
    except json.JSONDecodeError as exc:
        raise SchemaError(f"trace export: invalid JSON line: {exc}") from exc
    header, body, summary = records[0], records[1:-1], records[-1]
    _require_keys(header, ("type", "schema", "sample_every"), "trace header")
    _require(header["type"] == "header", "trace export: first line must be the header")
    _require(
        header["schema"] == TRACE_SCHEMA,
        f"trace export: schema {header.get('schema')!r} != {TRACE_SCHEMA!r}",
    )
    _require(
        summary.get("type") == "summary",
        "trace export: last line must be the summary",
    )
    _require(
        summary.get("records") == len(body),
        f"trace export: summary says {summary.get('records')} records, found {len(body)}",
    )
    for index, record in enumerate(body):
        kind = record.get("type")
        _require(
            kind in ("event", "span", "fault"),
            f"trace record {index}: bad type {kind!r}",
        )
        if kind == "event":
            _require_keys(record, ("ev", "ts"), f"trace record {index}")
        elif kind == "span":
            _require_keys(
                record,
                ("span", "binding", "slot", "start_ns", "end_ns", "outcome"),
                f"trace record {index}",
            )
            _require(
                record["end_ns"] >= record["start_ns"],
                f"trace record {index}: span ends before it starts",
            )
        else:
            _require_keys(record, ("kind", "ts", "duration_ns"), f"trace record {index}")
    return summary


def validate_chrome_trace(data: Any) -> Dict[str, Any]:
    """Validate a Chrome trace-event export; returns it for chaining."""
    _require_keys(data, ("traceEvents",), "chrome trace")
    for index, event in enumerate(data["traceEvents"]):
        _require_keys(event, ("ph", "pid", "tid", "name"), f"traceEvents[{index}]")
        phase = event["ph"]
        _require(
            phase in ("M", "X", "i"),
            f"traceEvents[{index}]: unsupported phase {phase!r}",
        )
        if phase == "X":
            _require_keys(event, ("ts", "dur"), f"traceEvents[{index}]")
            _require(
                event["dur"] >= 0, f"traceEvents[{index}]: negative duration"
            )
        elif phase == "i":
            _require_keys(event, ("ts",), f"traceEvents[{index}]")
    return data


def validate_profile(data: Any) -> Dict[str, Any]:
    """Validate a ``repro.profile/v1`` report; returns it for chaining."""
    _require_keys(
        data,
        ("schema", "total_wall_ns", "measured_fraction",
         "attributed_fraction", "stages"),
        "profile report",
    )
    _require(
        data["schema"] == PROFILE_SCHEMA,
        f"profile report: schema {data.get('schema')!r} != {PROFILE_SCHEMA!r}",
    )
    total_fraction = 0.0
    for index, stage in enumerate(data["stages"]):
        _require_keys(stage, ("name", "wall_ns", "events", "fraction"), f"stages[{index}]")
        _require(stage["wall_ns"] >= 0, f"stages[{index}]: negative wall time")
        total_fraction += stage["fraction"]
    _require(
        total_fraction <= 1.0 + 1e-9,
        f"profile report: stage fractions sum to {total_fraction} > 1",
    )
    return data


def validate_observation(observation: Any) -> None:
    """Validate every export an observation carries."""
    if observation.metrics is not None:
        validate_metrics(observation.metrics)
    if observation.trace_jsonl is not None:
        validate_trace_jsonl(observation.trace_jsonl)
    if observation.chrome_trace is not None:
        validate_chrome_trace(observation.chrome_trace)
    if observation.profile is not None:
        validate_profile(observation.profile)


# ---------------------------------------------------------------------- #
# repro.campaign/v1 — the `repro campaign serve` payloads
# ---------------------------------------------------------------------- #

CAMPAIGN_SCHEMA = "repro.campaign/v1"

_CELL_STATUSES = ("running", "ok", "error", "violation", "exhausted")


def _require_campaign_envelope(data: Any, kind: str) -> None:
    _require_keys(data, ("schema", "type"), f"campaign {kind}")
    _require(
        data["schema"] == CAMPAIGN_SCHEMA,
        f"campaign {kind}: schema {data.get('schema')!r} != {CAMPAIGN_SCHEMA!r}",
    )
    _require(
        data["type"] == kind,
        f"campaign {kind}: type {data.get('type')!r} != {kind!r}",
    )


def validate_campaign_status(data: Any) -> Dict[str, Any]:
    """Validate a ``repro.campaign/v1`` `/status` payload."""
    _require_campaign_envelope(data, "status")
    _require_keys(
        data,
        ("state", "cells_total", "cells_done", "cells_ok", "cells_error",
         "cells_violation", "cells_exhausted", "cells_running",
         "cells_pending", "retries_total", "workers_died",
         "violations_total", "progress", "eta_s", "slices"),
        "campaign status",
    )
    _require(
        data["state"] in ("running", "finished", "idle"),
        f"campaign status: bad state {data['state']!r}",
    )
    for key in ("cells_total", "cells_done", "cells_ok", "cells_error",
                "cells_violation", "cells_exhausted", "cells_running",
                "cells_pending", "retries_total", "workers_died",
                "violations_total"):
        _require(
            isinstance(data[key], int) and data[key] >= 0,
            f"campaign status: {key} must be a non-negative integer",
        )
    done = (data["cells_ok"] + data["cells_error"]
            + data["cells_violation"] + data["cells_exhausted"])
    _require(
        data["cells_done"] == done,
        "campaign status: cells_done "
        f"{data['cells_done']} != ok+error+violation+exhausted {done}",
    )
    _require(
        data["cells_done"] <= data["cells_total"],
        "campaign status: cells_done exceeds cells_total",
    )
    _require(
        0.0 <= data["progress"] <= 1.0,
        f"campaign status: progress {data['progress']} outside [0, 1]",
    )
    _require(
        data["eta_s"] is None or data["eta_s"] >= 0,
        "campaign status: negative eta_s",
    )
    _require(isinstance(data["slices"], dict), "campaign status: slices must be an object")
    for axis, buckets in data["slices"].items():
        _require(
            isinstance(buckets, dict),
            f"campaign status: slices[{axis!r}] must be an object",
        )
        for value, bucket in buckets.items():
            _require_keys(
                bucket,
                ("cells", "ok", "failed", "violations", "mean_wall_s"),
                f"campaign status: slices[{axis!r}][{value!r}]",
            )
    return data


def validate_campaign_cells(data: Any) -> Dict[str, Any]:
    """Validate a ``repro.campaign/v1`` `/cells` payload."""
    _require_campaign_envelope(data, "cells")
    _require_keys(data, ("cells",), "campaign cells")
    _require(isinstance(data["cells"], list), "campaign cells: cells must be a list")
    seen = set()
    for index, cell in enumerate(data["cells"]):
        _require_keys(
            cell,
            ("spec_hash", "scenario", "params", "status", "wall_time_s", "violations"),
            f"campaign cells[{index}]",
        )
        _require(
            cell["status"] in _CELL_STATUSES,
            f"campaign cells[{index}]: bad status {cell['status']!r}",
        )
        _require(
            cell["spec_hash"] not in seen,
            f"campaign cells[{index}]: duplicate spec_hash {cell['spec_hash']!r}",
        )
        seen.add(cell["spec_hash"])
    return data


def validate_campaign_violations(data: Any) -> Dict[str, Any]:
    """Validate a ``repro.campaign/v1`` `/violations` payload."""
    _require_campaign_envelope(data, "violations")
    _require_keys(data, ("violations",), "campaign violations")
    for index, entry in enumerate(data["violations"]):
        _require_keys(
            entry,
            ("spec_hash", "scenario", "deployment", "check", "message"),
            f"campaign violations[{index}]",
        )
    return data


def validate_campaign_event(data: Any) -> Dict[str, Any]:
    """Validate one bus event line (the `/events` NDJSON records)."""
    _require_keys(data, ("type", "ts"), "campaign event")
    _require(
        isinstance(data["type"], str) and data["type"],
        "campaign event: type must be a non-empty string",
    )
    _require(
        isinstance(data["ts"], (int, float)),
        "campaign event: ts must be a number",
    )
    if data["type"] in ("cell_started", "cell_finished", "cell_retried",
                        "heartbeat", "violation", "obs_summary"):
        _require_keys(data, ("spec_hash",), f"campaign event {data['type']!r}")
    return data


def validate_observation_summary(data: Any) -> Dict[str, Any]:
    """Validate one per-cell observability summary digest."""
    _require_keys(
        data, ("scenario", "deployment", "seed", "fast_path"), "observation summary"
    )
    if "metrics" in data and data["metrics"] is not None:
        _require_keys(
            data["metrics"], ("samples_taken", "series", "counters"),
            "observation summary metrics",
        )
    if "profile" in data and data["profile"] is not None:
        _require_keys(
            data["profile"], ("total_wall_ns", "measured_fraction"),
            "observation summary profile",
        )
    return data
