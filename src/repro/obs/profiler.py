"""The phase profiler: wall-time attribution to engine stages.

The runner wraps every ``run_until`` call in :meth:`measure_total`, and
each instrumented node brackets its hot section with
``enter(stage)`` / ``exit()``.  Stages nest (a pipeline walk can fire a
fault handler); the accounting is *exclusive* — a frame's self time is
its elapsed time minus the time spent in frames it opened — so stage
wall times are disjoint and sum to at most the total.  Whatever the
named stages do not cover is the event loop's own dispatch overhead
(heap pops, calendar bookkeeping, callback indirection), reported as
the residual ``event_dispatch`` stage: the dispatch wall ROADMAP item 1
targets, now measurable instead of inferred.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List

#: Report schema identifier; bump on incompatible layout changes.
PROFILE_SCHEMA = "repro.profile/v1"

#: The residual stage name (total minus every named stage).
DISPATCH_STAGE = "event_dispatch"


class PhaseProfiler:
    """Accumulates exclusive wall time and event counts per stage."""

    __slots__ = ("_self_ns", "_events", "_stack", "total_wall_ns")

    def __init__(self) -> None:
        self._self_ns: Dict[str, int] = {}
        self._events: Dict[str, int] = {}
        #: Open frames: [stage, start_ns, child_ns].
        self._stack: List[List[Any]] = []
        self.total_wall_ns = 0

    def enter(self, stage: str) -> None:
        """Open a frame for *stage* (stages may nest)."""
        self._stack.append([stage, time.perf_counter_ns(), 0])

    def exit(self) -> None:
        """Close the innermost frame, crediting its exclusive time."""
        stage, start_ns, child_ns = self._stack.pop()
        elapsed = time.perf_counter_ns() - start_ns
        self._self_ns[stage] = self._self_ns.get(stage, 0) + max(elapsed - child_ns, 0)
        self._events[stage] = self._events.get(stage, 0) + 1
        if self._stack:
            self._stack[-1][2] += elapsed

    @contextmanager
    def measure_total(self) -> Iterator[None]:
        """Accumulate the wall time of the enclosed ``run_until`` window."""
        start_ns = time.perf_counter_ns()
        try:
            yield
        finally:
            self.total_wall_ns += time.perf_counter_ns() - start_ns

    @property
    def measured_ns(self) -> int:
        """Exclusive nanoseconds credited to named stages so far."""
        return sum(self._self_ns.values())

    def report(self) -> Dict[str, Any]:
        """The attribution report (``repro.profile/v1``).

        ``event_dispatch`` is the residual, so the listed stages always
        account for 100% of the measured total; ``measured_fraction``
        says how much was directly bracketed by hooks.
        """
        total_ns = self.total_wall_ns
        measured_ns = min(self.measured_ns, total_ns) if total_ns else self.measured_ns
        stages: Dict[str, Dict[str, Any]] = {
            stage: {"wall_ns": self_ns, "events": self._events.get(stage, 0)}
            for stage, self_ns in self._self_ns.items()
        }
        if total_ns:
            stages[DISPATCH_STAGE] = {
                "wall_ns": total_ns - measured_ns,
                "events": 0,
            }
        denominator = total_ns if total_ns else max(measured_ns, 1)
        rows = [
            {
                "name": name,
                "wall_ns": data["wall_ns"],
                "events": data["events"],
                "fraction": data["wall_ns"] / denominator,
            }
            for name, data in stages.items()
        ]
        rows.sort(key=lambda row: (-row["wall_ns"], row["name"]))
        return {
            "schema": PROFILE_SCHEMA,
            "total_wall_ns": total_ns,
            "measured_fraction": (measured_ns / denominator) if denominator else 0.0,
            "attributed_fraction": (
                sum(row["fraction"] for row in rows) if rows else 0.0
            ),
            "stages": rows,
        }
