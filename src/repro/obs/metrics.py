"""Time-series metrics: counters, gauges, histograms and the registry.

The registry is sampled periodically *on the simulated clock*: a
self-rescheduling event-loop callback snapshots every tracked series
into a fixed-capacity ring buffer.  Sampling reads state and mutates
nothing in the simulation, so an instrumented run produces reports
byte-identical to an uninstrumented one — the property the integration
suite pins.

All values are plain Python numbers and every container is a plain
dict/list, so a finished export pickles across campaign worker
boundaries and serializes to JSON without custom encoders.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Export schema identifier; bump on incompatible layout changes.
METRICS_SCHEMA = "repro.metrics/v1"

#: Default latency histogram bucket upper bounds (microseconds).
LATENCY_BUCKETS_US: Tuple[float, ...] = (
    10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0,
)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A fixed-bucket histogram (upper-bound buckets plus overflow).

    ``bounds`` are the inclusive upper edges of each bucket in ascending
    order; one implicit overflow bucket catches everything above the
    last edge.  Two histograms merge only when their bounds are
    identical — merging across differing layouts would silently
    misattribute observations.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        edges = tuple(float(bound) for bound in bounds)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(f"histogram bounds must be strictly increasing: {edges}")
        self.name = name
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def as_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class TimeSeries:
    """A fixed-capacity ring buffer of ``(t_ns, value)`` samples.

    Once full, the oldest sample is overwritten and the overwrite is
    counted — long runs keep the most recent window instead of growing
    without bound, and the export says how much history was shed.
    """

    __slots__ = ("name", "capacity", "_times", "_values", "_start", "_size", "dropped")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 2:
            raise ValueError(f"time series capacity must be >=2, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._times: List[int] = [0] * capacity
        self._values: List[float] = [0.0] * capacity
        self._start = 0
        self._size = 0
        self.dropped = 0

    def __len__(self) -> int:
        return self._size

    def append(self, t_ns: int, value: float) -> None:
        """Record one sample, overwriting the oldest when full."""
        if self._size < self.capacity:
            index = (self._start + self._size) % self.capacity
            self._size += 1
        else:
            index = self._start
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1
        self._times[index] = t_ns
        self._values[index] = value

    def points(self) -> List[Tuple[int, float]]:
        """Samples oldest-first."""
        return [
            (
                self._times[(self._start + offset) % self.capacity],
                self._values[(self._start + offset) % self.capacity],
            )
            for offset in range(self._size)
        ]

    def rates(self) -> List[Tuple[int, float]]:
        """Per-second rates between consecutive samples of a cumulative series.

        Each entry is ``(t_ns, (v[i] - v[i-1]) / dt_seconds)`` stamped at
        the end of its interval — the derivative view that turns a
        delivered-bytes counter into a goodput-over-time curve.
        """
        samples = self.points()
        rates: List[Tuple[int, float]] = []
        for (t0, v0), (t1, v1) in zip(samples, samples[1:]):
            dt_ns = t1 - t0
            if dt_ns <= 0:
                continue
            rates.append((t1, (v1 - v0) * 1e9 / dt_ns))
        return rates


class MetricsRegistry:
    """Named metrics plus tracked time series sampled off the event loop.

    ``track`` registers a zero-argument read callback; every sampling
    tick appends its current value to the series' ring buffer.  ``kind``
    distinguishes gauges (instantaneous values: SRAM occupancy, queue
    depth) from cumulative counters (delivered bytes, drops), for which
    the export also derives per-interval rates.
    """

    def __init__(self, series_capacity: int = 512) -> None:
        self.series_capacity = series_capacity
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, TimeSeries] = {}
        self._tracked: List[Tuple[str, Callable[[], float], str]] = []
        self._kinds: Dict[str, str] = {}
        self.samples_taken = 0
        self.sample_interval_ns = 0

    # ------------------------------------------------------------------ #
    # Instrument registration
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge *name*."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        """Get or create the histogram *name* with the given bucket bounds."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, bounds)
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds {instrument.bounds}"
            )
        return instrument

    def track(self, name: str, read: Callable[[], float], kind: str = "gauge") -> None:
        """Sample ``read()`` into the series *name* on every tick."""
        if kind not in ("gauge", "cumulative"):
            raise ValueError(f"track kind must be 'gauge' or 'cumulative', got {kind!r}")
        if name in self._kinds:
            raise ValueError(f"series {name!r} is already tracked")
        self.series[name] = TimeSeries(name, self.series_capacity)
        self._tracked.append((name, read, kind))
        self._kinds[name] = kind

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def sample(self, now_ns: int) -> None:
        """Snapshot every tracked series at simulated time *now_ns*."""
        for name, read, _kind in self._tracked:
            self.series[name].append(now_ns, float(read()))
        self.samples_taken += 1

    def start_sampling(self, env: Any, interval_ns: int, horizon_ns: int) -> None:
        """Arm the periodic sampler on *env* until *horizon_ns*.

        The tick callback only reads simulation state, so scheduling it
        interleaved with traffic events cannot change their results —
        only their (already-deterministic) dispatch order, identically
        on the fast and reference loops.
        """
        if interval_ns < 1:
            raise ValueError(f"sample interval must be >=1 ns, got {interval_ns}")
        self.sample_interval_ns = interval_ns

        def tick() -> None:
            self.sample(env.now)
            next_ns = env.now + interval_ns
            if next_ns <= horizon_ns:
                env.schedule_at(next_ns, tick)

        first_ns = env.now + interval_ns
        if first_ns <= horizon_ns:
            env.schedule_at(first_ns, tick)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def export(self) -> Dict[str, Any]:
        """Plain-data dump of every instrument and series."""
        series: Dict[str, Any] = {}
        for name, ts in self.series.items():
            kind = self._kinds[name]
            entry: Dict[str, Any] = {
                "kind": kind,
                "points": [[t, v] for t, v in ts.points()],
                "dropped_samples": ts.dropped,
            }
            if kind == "cumulative":
                entry["rates_per_s"] = [[t, r] for t, r in ts.rates()]
            series[name] = entry
        return {
            "schema": METRICS_SCHEMA,
            "sample_interval_ns": self.sample_interval_ns,
            "samples_taken": self.samples_taken,
            "counters": {name: c.value for name, c in self.counters.items()},
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "histograms": {name: h.as_dict() for name, h in self.histograms.items()},
            "series": series,
        }
