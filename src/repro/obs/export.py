"""File export for run observations: validated JSON/JSONL artifacts.

The CLI (``repro observe``, ``repro run --trace``) lands every export on
disk through this module, and every payload is schema-validated *before*
it is written — a malformed artifact is a bug in the plane, and the
place to catch it is the producer, not a downstream consumer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.obs import schema as obs_schema
from repro.obs.plane import RunObservation


def observation_stem(observation: RunObservation, index: int = 0) -> str:
    """A filesystem-safe stem identifying one observation's artifacts."""
    scenario = "".join(
        ch if ch.isalnum() or ch in "-_" else "-" for ch in observation.scenario
    )
    return f"{scenario}-{index:03d}-{observation.deployment}"


def write_observation(
    observation: RunObservation,
    out_dir: Path,
    stem: str,
) -> List[Path]:
    """Write every export *observation* carries into *out_dir*.

    Emits ``<stem>.metrics.json``, ``<stem>.trace.jsonl``,
    ``<stem>.trace.chrome.json`` and ``<stem>.profile.json`` for the
    parts that are present, validating each against its schema first.
    Returns the paths written.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    if observation.metrics is not None:
        obs_schema.validate_metrics(observation.metrics)
        path = out_dir / f"{stem}.metrics.json"
        path.write_text(
            json.dumps(observation.metrics, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    if observation.trace_jsonl is not None:
        obs_schema.validate_trace_jsonl(observation.trace_jsonl)
        path = out_dir / f"{stem}.trace.jsonl"
        path.write_text(observation.trace_jsonl, encoding="utf-8")
        written.append(path)
    if observation.chrome_trace is not None:
        obs_schema.validate_chrome_trace(observation.chrome_trace)
        path = out_dir / f"{stem}.trace.chrome.json"
        path.write_text(
            json.dumps(observation.chrome_trace, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    if observation.profile is not None:
        obs_schema.validate_profile(observation.profile)
        path = out_dir / f"{stem}.profile.json"
        path.write_text(
            json.dumps(observation.profile, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written


def format_profile(profile: Dict[str, object]) -> str:
    """Human-readable stage-attribution table for one profiler report."""
    lines = [
        f"total wall time: {float(profile['total_wall_ns']) / 1e6:.2f} ms  "
        f"(measured {float(profile['measured_fraction']):.1%}, "
        f"attributed {float(profile['attributed_fraction']):.1%})",
        f"{'stage':<18} {'wall ms':>10} {'events':>10} {'fraction':>9}",
    ]
    for stage in profile["stages"]:
        lines.append(
            f"{stage['name']:<18} {float(stage['wall_ns']) / 1e6:>10.2f} "
            f"{stage['events']:>10} {float(stage['fraction']):>8.1%}"
        )
    return "\n".join(lines)
