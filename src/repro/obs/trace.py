"""The flight recorder: sampled packet-lifecycle spans and fault windows.

The recorder follows every N-th packet each traffic generator emits
(deterministic 1-in-N sampling decided at generation time, so the fast
and reference simulation paths sample the *same* packets) through its
whole life: generate → park → evict/merge/drain → NF chain →
deliver/drop.  Park events open a span keyed by ``(binding, slot)``
that the matching evict/merge/drain closes, which is how a
parked-then-evicted payload becomes one visible span in the export.

Two export formats:

* JSONL (``repro.trace/v1``): a header line followed by one
  sorted-key JSON record per line — byte-identical for identical
  simulations, which the determinism suite pins.
* Chrome trace-event JSON: loadable in ``chrome://tracing`` / Perfetto.
  Packet lifetimes, park spans and fault windows render as complete
  ("X") events on separate tracks; point events render as instants.

Timestamps are simulated nanoseconds (microseconds in the Chrome
export, per that format's convention).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

#: JSONL schema identifier; bump on incompatible layout changes.
TRACE_SCHEMA = "repro.trace/v1"

#: Chrome trace track (tid) assignments.
_TID_PACKETS = 1
_TID_SLOTS = 2
_TID_FAULTS = 3


class FlightRecorder:
    """Collects sampled lifecycle events during one deployment run."""

    def __init__(self, sample_every: int = 1, max_events: int = 200_000) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >=1, got {sample_every}")
        if max_events < 1:
            raise ValueError(f"max_events must be >=1, got {max_events}")
        self.sample_every = sample_every
        self.max_events = max_events
        #: Simulation clock bound by the plane; dataplane hooks (split,
        #: merge, control plane) have no env reference of their own.
        self._clock = None
        #: Flat record list in execution order (events, closed spans, faults).
        self.records: List[Dict[str, Any]] = []
        #: Records rejected by the ``max_events`` cap (never silent).
        self.dropped_records = 0
        #: Open park spans: (binding, slot) -> (pkt_id, clk, start_ns).
        self._open_parks: Dict[Tuple[str, int], Tuple[str, int, int]] = {}
        self.spans_closed = 0

    # ------------------------------------------------------------------ #
    # Recording (hot-path hooks; every caller guards on ``is not None``)
    # ------------------------------------------------------------------ #

    def bind_clock(self, env: Any) -> None:
        """Attach the event loop whose ``now`` stamps clock-less hooks."""
        self._clock = env

    def now(self) -> int:
        """Current simulated time (0 before a clock is bound)."""
        return self._clock.now if self._clock is not None else 0

    def _append(self, record: Dict[str, Any]) -> None:
        if len(self.records) >= self.max_events:
            self.dropped_records += 1
            return
        self.records.append(record)

    def packet_generated(self, pkt_id: str, t_ns: int, port: int, wire_bytes: int) -> None:
        self._append(
            {"type": "event", "ev": "generate", "ts": t_ns, "pkt": pkt_id,
             "port": port, "bytes": wire_bytes}
        )

    def packet_delivered(self, pkt_id: str, t_ns: int, latency_ns: Optional[int]) -> None:
        self._append(
            {"type": "event", "ev": "deliver", "ts": t_ns, "pkt": pkt_id,
             "latency_ns": latency_ns}
        )

    def packet_dropped(self, pkt_id: str, t_ns: int, where: str, reason: str) -> None:
        self._append(
            {"type": "event", "ev": "drop", "ts": t_ns, "pkt": pkt_id,
             "where": where, "reason": reason}
        )

    def nf_processed(self, pkt_id: str, t_ns: int, server: str, forwarded: bool) -> None:
        self._append(
            {"type": "event", "ev": "nf_process", "ts": t_ns, "pkt": pkt_id,
             "server": server, "forwarded": forwarded}
        )

    def payload_parked(
        self, binding: str, slot: int, clk: int, pkt_id: Optional[str]
    ) -> None:
        """Open a park span (sampled packets only: ``pkt_id`` may be None)."""
        if pkt_id is None:
            return
        t_ns = self.now()
        self._open_parks[(binding, slot)] = (pkt_id, clk, t_ns)
        self._append(
            {"type": "event", "ev": "park", "ts": t_ns, "pkt": pkt_id,
             "binding": binding, "slot": slot, "clk": clk}
        )

    def _close_park(self, binding: str, slot: int, t_ns: int, outcome: str) -> None:
        opened = self._open_parks.pop((binding, slot), None)
        if opened is None:
            return
        pkt_id, clk, start_ns = opened
        self.spans_closed += 1
        self._append(
            {"type": "span", "span": "park", "binding": binding, "slot": slot,
             "clk": clk, "pkt": pkt_id, "start_ns": start_ns, "end_ns": t_ns,
             "outcome": outcome}
        )

    def slot_evicted(self, binding: str, slot: int) -> None:
        self._close_park(binding, slot, self.now(), "evicted")

    def slot_merged(self, binding: str, slot: int) -> None:
        self._close_park(binding, slot, self.now(), "merged")

    def slot_drained(self, binding: str, slot: int) -> None:
        self._close_park(binding, slot, self.now(), "drained")

    def slot_released(self, binding: str, slot: int, outcome: str) -> None:
        self._close_park(binding, slot, self.now(), outcome)

    def premature_eviction(self, binding: str, slot: int, pkt_id: Optional[str]) -> None:
        self._append(
            {"type": "event", "ev": "premature_eviction", "ts": self.now(),
             "pkt": pkt_id, "binding": binding, "slot": slot}
        )

    def fault_applied(
        self, kind: str, t_ns: int, duration_ns: int, params: Dict[str, Any]
    ) -> None:
        """Annotate the trace with a fault window (or instant event)."""
        clean = {
            key: value
            for key, value in params.items()
            if isinstance(value, (str, int, float, bool)) or value is None
        }
        self._append(
            {"type": "fault", "kind": kind, "ts": t_ns,
             "duration_ns": duration_ns, "params": clean}
        )

    # ------------------------------------------------------------------ #
    # Finalization / export
    # ------------------------------------------------------------------ #

    def finalize(self, t_ns: int) -> None:
        """Close every still-open park span with the ``open`` outcome."""
        for (binding, slot) in sorted(self._open_parks):
            self._close_park(binding, slot, t_ns, "open")

    def fault_windows(self) -> List[Dict[str, Any]]:
        """The recorded fault annotations (trace order)."""
        return [record for record in self.records if record["type"] == "fault"]

    def park_spans(self) -> List[Dict[str, Any]]:
        """Every closed park span (trace order)."""
        return [record for record in self.records if record["type"] == "span"]

    def _summary_record(self) -> Dict[str, Any]:
        return {
            "type": "summary",
            "records": len(self.records),
            "spans_closed": self.spans_closed,
            "dropped_records": self.dropped_records,
        }

    def to_jsonl(self) -> str:
        """Byte-deterministic JSONL export (header + records + summary)."""
        dumps = json.dumps
        header = {
            "type": "header",
            "schema": TRACE_SCHEMA,
            "sample_every": self.sample_every,
            "max_events": self.max_events,
        }
        lines = [dumps(header, sort_keys=True, separators=(",", ":"))]
        for record in self.records:
            lines.append(dumps(record, sort_keys=True, separators=(",", ":")))
        lines.append(
            dumps(self._summary_record(), sort_keys=True, separators=(",", ":"))
        )
        return "\n".join(lines) + "\n"

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome trace-event export (``chrome://tracing`` / Perfetto)."""
        events: List[Dict[str, Any]] = [
            {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
             "args": {"name": "repro-sim"}},
            {"ph": "M", "pid": 1, "tid": _TID_PACKETS, "name": "thread_name",
             "args": {"name": "packets"}},
            {"ph": "M", "pid": 1, "tid": _TID_SLOTS, "name": "thread_name",
             "args": {"name": "parked-payload-slots"}},
            {"ph": "M", "pid": 1, "tid": _TID_FAULTS, "name": "thread_name",
             "args": {"name": "fault-windows"}},
        ]
        # Derive one lifetime span per sampled packet: generate -> last
        # terminal event (deliver or drop); packets still in flight at
        # the end of the run render as instants only.
        born: Dict[str, int] = {}
        ended: Dict[str, Tuple[int, str]] = {}
        for record in self.records:
            if record["type"] == "event":
                pkt = record.get("pkt")
                ev = record["ev"]
                if pkt is None:
                    continue
                if ev == "generate":
                    born[pkt] = record["ts"]
                elif ev in ("deliver", "drop"):
                    ended[pkt] = (record["ts"], ev)
        for pkt, start_ns in born.items():
            end = ended.get(pkt)
            if end is None:
                continue
            end_ns, outcome = end
            events.append(
                {"ph": "X", "pid": 1, "tid": _TID_PACKETS,
                 "name": f"pkt:{outcome}", "cat": "packet",
                 "ts": start_ns / 1_000.0, "dur": max(end_ns - start_ns, 0) / 1_000.0,
                 "args": {"pkt": pkt}}
            )
        for record in self.records:
            kind = record["type"]
            if kind == "span":
                events.append(
                    {"ph": "X", "pid": 1, "tid": _TID_SLOTS,
                     "name": f"park[{record['binding']}/{record['slot']}]:{record['outcome']}",
                     "cat": "payloadpark",
                     "ts": record["start_ns"] / 1_000.0,
                     "dur": max(record["end_ns"] - record["start_ns"], 0) / 1_000.0,
                     "args": {"pkt": record["pkt"], "clk": record["clk"],
                              "outcome": record["outcome"]}}
                )
            elif kind == "fault":
                events.append(
                    {"ph": "X", "pid": 1, "tid": _TID_FAULTS,
                     "name": f"fault:{record['kind']}", "cat": "fault",
                     "ts": record["ts"] / 1_000.0,
                     "dur": max(record["duration_ns"], 1) / 1_000.0,
                     "args": dict(record["params"])}
                )
            elif kind == "event" and record["ev"] != "generate":
                events.append(
                    {"ph": "i", "pid": 1, "tid": _TID_PACKETS,
                     "name": record["ev"], "cat": "packet", "s": "t",
                     "ts": record["ts"] / 1_000.0,
                     "args": {key: value for key, value in record.items()
                              if key not in ("type", "ev", "ts")}}
                )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": self._summary_record(),
        }
