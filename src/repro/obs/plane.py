"""The observability plane: builds, wires and finalizes one run's instruments.

One :class:`ObservabilityPlane` instance serves one deployment run.
The experiment runner builds it (when ``ScenarioConfig.observe``
enables anything), attaches it to the freshly built topology before
traffic starts, arms the metric sampler alongside the traffic
generators, and finalizes it into a :class:`RunObservation` after the
reports are computed.  Attachment is purely additive: it assigns
optional hook attributes (``obs_recorder`` / ``obs_profiler``) that
every hot path guards with a single ``is not None`` branch, and
registers read-only sampling callbacks — simulation behavior is
untouched, which the integration suite pins by comparing instrumented
and uninstrumented reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.config import ObserveSpec
from repro.obs.metrics import LATENCY_BUCKETS_US, MetricsRegistry
from repro.obs.profiler import PhaseProfiler
from repro.obs.trace import FlightRecorder


@dataclass
class RunObservation:
    """Everything the plane recorded about one deployment run.

    Exports are computed eagerly at finalization so the object is plain
    data end to end (strings and dicts) and survives pickling across
    campaign worker boundaries.
    """

    scenario: str
    deployment: str
    seed: int
    fast_path: bool
    duration_ns: int
    metrics: Optional[Dict[str, Any]] = None
    trace_jsonl: Optional[str] = None
    chrome_trace: Optional[Dict[str, Any]] = None
    profile: Optional[Dict[str, Any]] = None

    def summary(self) -> Dict[str, Any]:
        """A small per-run digest (what campaign records carry)."""
        digest: Dict[str, Any] = {
            "scenario": self.scenario,
            "deployment": self.deployment,
            "seed": self.seed,
            "fast_path": self.fast_path,
            "duration_ns": self.duration_ns,
        }
        if self.metrics is not None:
            digest["metrics"] = {
                "samples_taken": self.metrics["samples_taken"],
                "series": {
                    name: {
                        "kind": entry["kind"],
                        "points": len(entry["points"]),
                        "last": entry["points"][-1][1] if entry["points"] else None,
                        "dropped_samples": entry["dropped_samples"],
                    }
                    for name, entry in self.metrics["series"].items()
                },
                "counters": dict(self.metrics["counters"]),
            }
        if self.trace_jsonl is not None:
            summary_line = self.trace_jsonl.strip().rsplit("\n", 1)[-1]
            digest["trace"] = {"summary_line": summary_line}
        if self.profile is not None:
            digest["profile"] = {
                "total_wall_ns": self.profile["total_wall_ns"],
                "measured_fraction": round(self.profile["measured_fraction"], 4),
                "top_stage": (
                    self.profile["stages"][0]["name"]
                    if self.profile["stages"]
                    else None
                ),
            }
        return digest


class ObservabilityPlane:
    """Wires metrics, tracing and profiling through one testbed."""

    def __init__(self, spec: ObserveSpec, env: Any) -> None:
        self.spec = spec
        self.env = env
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry(series_capacity=spec.series_capacity)
            if spec.metrics
            else None
        )
        self.recorder: Optional[FlightRecorder] = (
            FlightRecorder(
                sample_every=spec.trace_sample_every,
                max_events=spec.trace_max_events,
            )
            if spec.trace
            else None
        )
        self.profiler: Optional[PhaseProfiler] = (
            PhaseProfiler() if spec.profile else None
        )
        if self.recorder is not None:
            self.recorder.bind_clock(env)

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def attach(self, topology: Any, program: Any) -> None:
        """Assign hook attributes and register metric series."""
        recorder = self.recorder
        profiler = self.profiler
        switch = topology.switch
        if profiler is not None:
            switch.obs_profiler = profiler
        if recorder is not None:
            switch.obs_recorder = recorder
        for attachment in topology.attachments:
            attachment.pktgen.obs_recorder = recorder
            attachment.pktgen.obs_profiler = profiler
            attachment.server.obs_recorder = recorder
            attachment.server.obs_profiler = profiler
            for link in attachment.gen_links:
                link.set_observability(recorder=recorder, profiler=profiler)
            attachment.server_link.set_observability(
                recorder=recorder, profiler=profiler
            )
        injector = topology.fault_injector
        if injector is not None:
            injector.obs_recorder = recorder
            injector.obs_profiler = profiler
            injector.manager.obs_recorder = recorder
        # The PayloadPark split/merge paths emit park-span events; the
        # baseline program has neither attribute and is skipped.
        for path in getattr(program, "_split_paths", ()):
            path.obs_recorder = recorder
        for path in getattr(program, "_merge_paths", ()):
            path.obs_recorder = recorder
        if self.registry is not None:
            self._register_series(topology, program)

    def _register_series(self, topology: Any, program: Any) -> None:
        registry = self.registry
        for attachment in topology.attachments:
            name = attachment.binding.name
            pktgen = attachment.pktgen
            server = attachment.server
            registry.track(
                f"pktgen.{name}.delivered_useful_bytes",
                lambda g=pktgen: g.useful_bytes_received,
                kind="cumulative",
            )
            registry.track(
                f"pktgen.{name}.packets_sent",
                lambda g=pktgen: g.packets_sent,
                kind="cumulative",
            )
            registry.track(
                f"pktgen.{name}.packets_received",
                lambda g=pktgen: g.packets_received,
                kind="cumulative",
            )
            registry.track(
                f"server.{name}.processed_packets",
                lambda s=server: s.processed_packets,
                kind="cumulative",
            )
            registry.track(
                f"server.{name}.queue_occupancy",
                lambda s=server: s.queue_occupancy,
                kind="gauge",
            )
            pktgen.obs_latency_hist = registry.histogram(
                f"latency_us.{name}", LATENCY_BUCKETS_US
            )
            links = [(f"link.{name}.server", attachment.server_link)]
            links.extend(
                (f"link.{name}.gen{index}", link)
                for index, link in enumerate(attachment.gen_links)
            )
            for series_name, link in links:
                registry.track(
                    f"{series_name}.buffer_drops",
                    lambda l=link: l.buffer_drops(),
                    kind="cumulative",
                )
                registry.track(
                    f"{series_name}.fault_drops",
                    lambda l=link: l.fault_drops(),
                    kind="cumulative",
                )
            # NF cache efficiency (duck-typed: any NF exposing the
            # cache_lookups/cache_hits counter pair participates).
            for nf in server.model.chain:
                if hasattr(nf, "cache_lookups"):
                    registry.track(
                        f"nf.{name}.{nf.name}.cache_hit_ratio",
                        lambda n=nf: (
                            n.cache_hits / n.cache_lookups if n.cache_lookups else 0.0
                        ),
                        kind="gauge",
                    )
        for binding_name, table in getattr(program, "lookup_tables", {}).items():
            registry.track(
                f"switch.{binding_name}.sram_occupied_slots",
                lambda t=table: t.occupancy(),
                kind="gauge",
            )
            registry.track(
                f"switch.{binding_name}.sram_occupancy_fraction",
                lambda t=table: t.occupancy_fraction(),
                kind="gauge",
            )
            counters = program.counters_for(binding_name)
            for counter_name in ("splits", "merges", "evictions",
                                 "premature_evictions", "explicit_drops"):
                registry.track(
                    f"payloadpark.{binding_name}.{counter_name}",
                    lambda c=counters, f=counter_name: getattr(c, f),
                    kind="cumulative",
                )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self, duration_ns: int) -> None:
        """Arm the periodic metric sampler for the run window."""
        if self.registry is not None:
            self.registry.start_sampling(
                self.env,
                self.spec.sample_interval_ns,
                self.env.now + duration_ns,
            )

    def finalize(
        self, scenario: Any, deployment: str, duration_ns: int
    ) -> RunObservation:
        """Take the closing sample, close open spans, export everything."""
        if self.registry is not None:
            self.registry.sample(self.env.now)
        observation = RunObservation(
            scenario=scenario.name,
            deployment=deployment,
            seed=scenario.seed,
            fast_path=bool(getattr(scenario, "fast_path", True)),
            duration_ns=duration_ns,
        )
        if self.registry is not None:
            observation.metrics = self.registry.export()
        if self.recorder is not None:
            self.recorder.finalize(self.env.now)
            observation.trace_jsonl = self.recorder.to_jsonl()
            observation.chrome_trace = self.recorder.to_chrome()
        if self.profiler is not None:
            observation.profile = self.profiler.report()
        return observation
