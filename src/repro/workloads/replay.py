"""PCAP replay: feed real captures through the simulator.

The paper replays a PCAP reproducing the Benson et al. enterprise
distribution; :class:`PcapReplayWorkload` generalizes that into a
first-class workload.  It ingests a capture via
:mod:`repro.packet.pcap`, re-times the frames onto the event loop's
nanosecond clock (optionally sped up or slowed down so campaign sweeps
over ``send_rate_gbps`` rescale the replay), and loops the capture until
the run ends.  Because replay streams carry raw frame bytes, the traffic
generator rebuilds a fresh :class:`~repro.packet.packet.Packet` per
transmission — loop iterations never share mutable packet state.

Without an external capture on disk, :func:`synthetic_enterprise_capture`
builds a small deterministic in-memory capture so the registered
``pcap-replay`` workload runs end-to-end with zero setup.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.errors import WorkloadSpecError
from repro.packet.flows import FlowGenerator
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES, Packet
from repro.packet.pcap import PcapRecord, read_pcap
from repro.traffic.distributions import enterprise_datacenter_distribution
from repro.traffic.workload import Workload
from repro.workloads.base import TimedFrame, TrafficModel, WorkloadSpec
from repro.workloads.stats import TracedPacket


def synthetic_enterprise_capture(
    packet_count: int = 512,
    seed: int = 20,
    rate_gbps: float = 8.0,
    flow_count: int = 128,
) -> List[PcapRecord]:
    """A deterministic in-memory capture with the enterprise size mix."""
    if packet_count <= 0:
        raise WorkloadSpecError("packet_count must be positive")
    rng = random.Random(seed)
    sizes = enterprise_datacenter_distribution()
    flows = FlowGenerator(flow_count=flow_count).flows()
    records: List[PcapRecord] = []
    timestamp = 0.0
    for index in range(packet_count):
        size = max(sizes.sample(rng), ETHERNET_UDP_HEADER_BYTES)
        flow = flows[index % len(flows)]
        packet = Packet.udp(
            src_ip=str(flow.src_ip),
            dst_ip=str(flow.dst_ip),
            src_port=flow.src_port,
            dst_port=flow.dst_port,
            total_size=size,
        )
        ts_sec = int(timestamp)
        ts_usec = int(round((timestamp - ts_sec) * 1_000_000))
        records.append(PcapRecord(ts_sec=ts_sec, ts_usec=ts_usec, data=packet.to_bytes()))
        timestamp += size * 8 / (rate_gbps * 1e9)
    return records


class PcapReplayWorkload(WorkloadSpec):
    """Replay a capture's frames with their original (re-timed) spacing."""

    kind = "pcap-replay"

    def __init__(
        self,
        records: List[PcapRecord],
        name: str = "pcap-replay",
        description: str = "",
        speedup: float = 1.0,
    ) -> None:
        if not records:
            raise WorkloadSpecError("a replay workload needs at least one captured frame")
        if speedup <= 0:
            raise WorkloadSpecError("speedup must be positive")
        self.records = records
        self.name = name
        self.description = description or f"replay of {len(records)} captured frames"
        self.speedup = speedup
        self._offsets_ns = self._compute_offsets(records)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_file(
        cls,
        path: Union[str, Path],
        name: Optional[str] = None,
        speedup: float = 1.0,
    ) -> "PcapReplayWorkload":
        """Load a capture from disk (classic pcap, either byte order)."""
        records = read_pcap(path)
        if not records:
            raise WorkloadSpecError(f"PCAP {path} contains no packets")
        return cls(
            records,
            name=name or f"pcap:{Path(path).name}",
            description=f"replay of {Path(path).name} ({len(records)} frames)",
            speedup=speedup,
        )

    @classmethod
    def synthetic(
        cls,
        packet_count: int = 512,
        seed: int = 20,
        rate_gbps: float = 8.0,
    ) -> "PcapReplayWorkload":
        """The built-in zero-setup capture (enterprise mix, deterministic)."""
        return cls(
            synthetic_enterprise_capture(packet_count, seed=seed, rate_gbps=rate_gbps),
            name="pcap-replay",
            description=(
                f"synthetic enterprise capture ({packet_count} frames) replayed "
                "with original spacing"
            ),
        )

    @staticmethod
    def _compute_offsets(records: List[PcapRecord]) -> List[int]:
        """Per-record offsets (ns) from the first frame, forced monotonic."""
        base = records[0].timestamp
        offsets = []
        previous = 0
        for record in records:
            offset = int(round((record.timestamp - base) * 1e9))
            offset = max(offset, previous)
            offsets.append(offset)
            previous = offset
        return offsets

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    def total_bytes(self) -> int:
        """Sum of captured frame lengths."""
        return sum(len(record.data) for record in self.records)

    def native_rate_gbps(self) -> float:
        """Mean rate of the capture as recorded (before any speedup).

        Captures whose timestamps do not advance (all-zero or truncated
        clocks) fall back to back-to-back transmission at 10 Gbps.
        """
        duration_ns = self._offsets_ns[-1]
        if duration_ns <= 0:
            return 10.0
        return self.total_bytes() * 8.0 / duration_ns

    def nominal_rate_gbps(self) -> float:
        return self.native_rate_gbps() * self.speedup

    def mean_frame_bytes(self) -> float:
        """Average captured frame length."""
        return self.total_bytes() / len(self.records)

    def workload(self) -> Workload:
        """Static size-distribution view (what :meth:`Workload.from_pcap` builds)."""
        counts = {}
        for record in self.records:
            size = min(max(len(record.data), 64), 1514)
            counts[size] = counts.get(size, 0) + 1
        total = sum(counts.values())
        from repro.traffic.distributions import EmpiricalDistribution

        return Workload(
            name=self.name,
            sizes=EmpiricalDistribution(
                [(size, count / total) for size, count in sorted(counts.items())]
            ),
            flows=FlowGenerator(flow_count=min(len(self.records), 4096)),
        )

    # ------------------------------------------------------------------ #
    # Streams and traces
    # ------------------------------------------------------------------ #

    def _stream(self, speedup: float) -> Iterator[TimedFrame]:
        for offset, record in zip(self._offsets_ns, self.records):
            yield int(offset / speedup), record.data

    def traffic_model(self, rate_gbps: Optional[float] = None) -> TrafficModel:
        speedup = self.speedup
        if rate_gbps is not None:
            speedup = rate_gbps / self.native_rate_gbps()

        def stream_factory(seed: int) -> Iterator[TimedFrame]:
            return self._stream(speedup)

        return TrafficModel(
            stream_factory=stream_factory,
            loop_stream=True,
            rescale=self.traffic_model,
        )

    def trace(
        self,
        seed: int,
        max_packets: int,
        rate_gbps: Optional[float] = None,
    ) -> List[TracedPacket]:
        """The first *max_packets* replayed frames (looping if needed)."""
        if max_packets <= 0:
            raise WorkloadSpecError("max_packets must be positive")
        speedup = self.speedup
        if rate_gbps is not None:
            speedup = rate_gbps / self.native_rate_gbps()
        cycle_ns = int(self._offsets_ns[-1] / speedup)
        # Looping inserts one mean inter-frame gap between cycles.
        cycle_gap_ns = max(cycle_ns // max(len(self.records) - 1, 1), 1)
        trace: List[TracedPacket] = []
        epoch = 0
        while len(trace) < max_packets:
            for offset, record in zip(self._offsets_ns, self.records):
                if len(trace) >= max_packets:
                    break
                trace.append(
                    self._traced(epoch + int(offset / speedup), record.data)
                )
            epoch += cycle_ns + cycle_gap_ns
        return trace

    @staticmethod
    def _traced(time_ns: int, data: bytes) -> TracedPacket:
        packet = Packet.from_bytes(data)
        if packet.ip is not None and packet.l4 is not None:
            return TracedPacket(
                time_ns=time_ns,
                size_bytes=len(data),
                src_ip=str(packet.ip.src),
                dst_ip=str(packet.ip.dst),
                src_port=packet.l4.src_port,
                dst_port=packet.l4.dst_port,
            )
        return TracedPacket(
            time_ns=time_ns,
            size_bytes=len(data),
            src_ip="0.0.0.0",
            dst_ip="0.0.0.0",
            src_port=0,
            dst_port=0,
        )

    def describe(self) -> dict:
        info = super().describe()
        info["frames"] = str(len(self.records))
        info["mean_frame_bytes"] = f"{self.mean_frame_bytes():.1f}"
        info["native_rate_gbps"] = f"{self.native_rate_gbps():.3f}"
        info["speedup"] = f"{self.speedup:g}"
        return info
