"""Closed-loop transport: TCP-style congestion-controlled senders.

Every other workload in this package is *open-loop*: a rate schedule or
arrival process decides when the next packet is offered, no matter what
the network did to the previous one.  That cannot exhibit the failure
modes the paper's §6 goodput/latency story is really about — what
happens to end-to-end transfers when payloads sit in switch SRAM.  A
parked payload delays the packet's round trip, which (for a real
transport) inflates the RTT estimate, stalls the ACK clock and can fire
spurious retransmissions; a drain-eviction *loses* the payload, which
costs a retransmission and a cwnd collapse.  Open-loop senders shrug;
closed-loop senders back off, and aggregate goodput moves.

:class:`ClosedLoopFlows` is the flow-model half: an immutable
description of a population of congestion-controlled flows (window
sizes, RTO bounds, transfer sizes, epoch synchronization).  It plugs
into the same :class:`~repro.workloads.flowmodels.FlowModel` slot the
open-loop models use, so ``repro workload describe`` and campaign grids
treat it like any other population.

:class:`ClosedLoopTransport` is the engine: per-flow connection state
driven by the simulated network itself.  The testbed loops every frame
``pktgen -> switch -> NF server -> switch -> pktgen``, so a frame
arriving back at the generator doubles as its acknowledgment — loss is
inferred exactly the way a real receiver infers it, from the holes.

The congestion control is NewReno-shaped:

* slow start (cwnd += 1 per new ACK) below ``ssthresh``, congestion
  avoidance (cwnd += 1/cwnd) above it;
* out-of-order deliveries count as duplicate ACKs; the third triggers a
  fast retransmit of the hole, halves cwnd and enters recovery (partial
  ACKs retransmit the next hole immediately, NewReno-style);
* an RTO (EWMA SRTT + 4·RTTVAR, Karn-ambiguity-safe sampling,
  exponential backoff) collapses cwnd to one segment and slow-starts;
* sequence numbers delivered twice (an original that was only *parked*,
  not lost, racing its retransmission) are classified as duplicates —
  throughput, never goodput.

:class:`ClosedLoopWorkload` wraps both into a registry-ready
:class:`~repro.workloads.base.WorkloadSpec`; ``incast-collapse`` and
``rpc-fanout`` in :mod:`repro.workloads.registry` are its two named
instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.errors import WorkloadSpecError
from repro.packet.flows import FiveTuple, FlowGenerator
from repro.traffic.distributions import FixedSizeDistribution
from repro.traffic.pktgen import build_udp_frame
from repro.traffic.workload import Workload
from repro.workloads.base import TrafficModel, WorkloadSpec, derived_rng
from repro.workloads.flowmodels import FlowModel, FlowSampler, _RoundRobinSampler
from repro.workloads.stats import TracedPacket

#: RNG salt for transport randomness (start jitter, think times), kept
#: distinct from packet-content and arrival-gap sampling.
_TRANSPORT_SALT = 2

#: Minimum wire bytes per segment (Ethernet+IPv4+UDP header).
_MIN_SEGMENT_BYTES = 64


# ---------------------------------------------------------------------- #
# The flow model (immutable description)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ClosedLoopFlows(FlowModel):
    """A population of TCP-style congestion-controlled flows.

    Attributes
    ----------
    flow_count:
        Concurrent connections (the incast fan-in).
    segments_per_transfer:
        Segments each flow sends per request/response epoch.
    mss_bytes:
        Wire bytes per segment (clamped to the 64-byte frame minimum).
    initial_cwnd_segments / initial_ssthresh_segments:
        Slow-start entry state of every fresh transfer.
    max_cwnd_segments:
        Hard cap on the congestion window.
    dupack_threshold:
        Out-of-order deliveries that trigger a fast retransmit.
    min_rto_ns / max_rto_ns:
        RTO clamp; the minimum is the knob that decides how expensive a
        timeout is relative to the (microsecond-scale) simulated RTT —
        the classic incast-collapse ingredient.
    sync_epochs:
        ``True`` barriers every flow: the next epoch starts only when
        *all* transfers completed (synchronized incast / RPC fan-out).
        ``False`` lets each flow restart independently.
    think_time_ns:
        Idle time between a flow's transfer completing and its next one
        starting (sampled uniformly in ``[0.5x, 1.5x]`` per epoch).
    start_jitter_ns:
        Per-flow uniform jitter on epoch start times, so "synchronized"
        means microseconds apart, not literally the same event tick.
    """

    flow_count: int = 32
    segments_per_transfer: int = 32
    mss_bytes: int = 1068
    initial_cwnd_segments: int = 2
    initial_ssthresh_segments: int = 64
    max_cwnd_segments: int = 256
    dupack_threshold: int = 3
    min_rto_ns: int = 1_000_000
    max_rto_ns: int = 64_000_000
    sync_epochs: bool = True
    think_time_ns: int = 0
    start_jitter_ns: int = 2_000

    def __post_init__(self) -> None:
        if self.flow_count < 1:
            raise WorkloadSpecError("flow_count must be >= 1")
        if self.segments_per_transfer < 1:
            raise WorkloadSpecError("segments_per_transfer must be >= 1")
        if self.mss_bytes < _MIN_SEGMENT_BYTES:
            raise WorkloadSpecError(
                f"mss_bytes must be >= {_MIN_SEGMENT_BYTES} (minimum frame)"
            )
        if self.initial_cwnd_segments < 1:
            raise WorkloadSpecError("initial_cwnd_segments must be >= 1")
        if self.initial_ssthresh_segments < 2:
            raise WorkloadSpecError("initial_ssthresh_segments must be >= 2")
        if self.max_cwnd_segments < self.initial_cwnd_segments:
            raise WorkloadSpecError("max_cwnd_segments must cover the initial cwnd")
        if self.dupack_threshold < 1:
            raise WorkloadSpecError("dupack_threshold must be >= 1")
        if self.min_rto_ns <= 0 or self.max_rto_ns < self.min_rto_ns:
            raise WorkloadSpecError("need 0 < min_rto_ns <= max_rto_ns")
        if self.think_time_ns < 0 or self.start_jitter_ns < 0:
            raise WorkloadSpecError("think/jitter times cannot be negative")

    # FlowModel interface — the static preview view cycles the same
    # 5-tuple population the live transport binds its connections to.

    def sampler(self, rng: random.Random) -> FlowSampler:
        return _RoundRobinSampler(FlowGenerator(flow_count=self.flow_count).flows())

    def nominal_flow_count(self) -> int:
        return self.flow_count

    def label(self) -> str:
        mode = "sync" if self.sync_epochs else "async"
        return (
            f"closed-loop({self.flow_count} flows, "
            f"{self.segments_per_transfer}x{self.mss_bytes}B/{mode})"
        )


# ---------------------------------------------------------------------- #
# Per-connection state
# ---------------------------------------------------------------------- #


class _Connection:
    """Mutable sender state of one closed-loop flow."""

    __slots__ = (
        "flow_id", "five_tuple", "cwnd", "ssthresh", "next_seq", "cum",
        "sacked", "outstanding", "retx_seqs", "dup_acks", "in_recovery",
        "recovery_point", "srtt_ns", "rttvar_ns", "rto_ns", "timer_gen",
        "timer_armed", "transfer_end", "epoch_done", "distinct_sent",
    )

    def __init__(self, flow_id: int, five_tuple: FiveTuple, model: ClosedLoopFlows) -> None:
        self.flow_id = flow_id
        self.five_tuple = five_tuple
        self.cwnd = float(model.initial_cwnd_segments)
        self.ssthresh = float(model.initial_ssthresh_segments)
        self.next_seq = 0            # next fresh sequence number
        self.cum = 0                 # every seq < cum has been delivered
        self.sacked: set = set()     # delivered seqs >= cum
        self.outstanding: Dict[int, int] = {}  # seq -> last transmit time (ns)
        self.retx_seqs: set = set()  # seqs ever retransmitted (Karn)
        self.dup_acks = 0
        self.in_recovery = False
        self.recovery_point = 0
        self.srtt_ns: Optional[float] = None
        self.rttvar_ns = 0.0
        self.rto_ns = float(model.min_rto_ns)
        self.timer_gen = 0
        self.timer_armed = False
        self.transfer_end = 0        # current transfer sends seqs < this
        self.epoch_done = True
        self.distinct_sent = 0

    def flight(self) -> int:
        return len(self.outstanding)


# ---------------------------------------------------------------------- #
# The engine
# ---------------------------------------------------------------------- #


class ClosedLoopTransport:
    """ACK-clocked sender bank driving one traffic-generator node.

    The node calls :meth:`start` / :meth:`stop` around the run and
    :meth:`on_delivery` for every frame that completes the round trip;
    the engine calls back into ``node.transmit_segment`` to put frames
    on the wire and schedules its RTO timers on ``node.env``.  After
    ``stop`` (or the node's stop horizon) no new transmission or timer
    is ever scheduled, so a post-horizon drain always terminates.
    """

    def __init__(self, model: ClosedLoopFlows, config, node) -> None:
        self.model = model
        self.config = config
        self.node = node
        self._rng = derived_rng(config.seed, _TRANSPORT_SALT)
        tuples = FlowGenerator(flow_count=model.flow_count).flows()
        self.flows: List[_Connection] = [
            _Connection(index, five_tuple, model)
            for index, five_tuple in enumerate(tuples)
        ]
        self._stop_at_ns: Optional[int] = None
        self._stopped = False
        self._remaining_in_epoch = 0
        # Engine counters (the validation engine's retransmitted-bytes
        # accounting cross-checks these against the node's view).
        self.segments_sent = 0           # every transmit, fresh + retx
        self.distinct_segments_sent = 0  # first transmissions only
        self.retx_segments = 0
        self.retx_bytes = 0
        self.unique_delivered_segments = 0
        self.unique_delivered_useful_bytes = 0
        self.duplicate_segments = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.epochs_completed = 0
        self.rtt_samples = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self, stop_at_ns: int) -> None:
        """Arm every flow's first transfer (jittered epoch start)."""
        self._stop_at_ns = stop_at_ns
        self._stopped = False
        self._start_epoch()

    def stop(self) -> None:
        """Stop launching segments and timers (in-flight frames drain)."""
        self._stopped = True

    def _active(self) -> bool:
        if self._stopped:
            return False
        if self._stop_at_ns is not None and self.node.env.now >= self._stop_at_ns:
            self._stopped = True
            return False
        return True

    # ------------------------------------------------------------------ #
    # Epochs
    # ------------------------------------------------------------------ #

    def _start_epoch(self) -> None:
        if not self._active():
            return
        self._remaining_in_epoch = len(self.flows)
        for conn in self.flows:
            self._arm_transfer(conn)

    def _arm_transfer(self, conn: _Connection) -> None:
        """Reset *conn* for a fresh request/response and schedule its start."""
        conn.transfer_end = conn.next_seq + self.model.segments_per_transfer
        conn.cwnd = float(self.model.initial_cwnd_segments)
        conn.ssthresh = float(self.model.initial_ssthresh_segments)
        conn.dup_acks = 0
        conn.in_recovery = False
        conn.epoch_done = False
        jitter = self._rng.randrange(self.model.start_jitter_ns + 1)
        self.node.env.schedule_in(max(1, jitter), lambda: self._open_window(conn))

    def _open_window(self, conn: _Connection) -> None:
        if not self._active():
            return
        self._send_allowed(conn)

    def _transfer_completed(self, conn: _Connection) -> None:
        conn.epoch_done = True
        if self.model.sync_epochs:
            self._remaining_in_epoch -= 1
            if self._remaining_in_epoch == 0:
                self.epochs_completed += 1
                self.node.env.schedule_in(
                    max(1, self._think_time()), self._start_epoch
                )
        else:
            self.epochs_completed += 1
            delay = max(1, self._think_time())
            self.node.env.schedule_in(delay, lambda: self._restart_flow(conn))

    def _restart_flow(self, conn: _Connection) -> None:
        if not self._active():
            return
        self._arm_transfer(conn)

    def _think_time(self) -> int:
        think = self.model.think_time_ns
        if think <= 0:
            return 1
        return int(think * (0.5 + self._rng.random()))

    # ------------------------------------------------------------------ #
    # Transmission
    # ------------------------------------------------------------------ #

    def _send_allowed(self, conn: _Connection) -> None:
        """Send as many fresh segments as the window currently allows."""
        if not self._active():
            return
        window = min(int(conn.cwnd), self.model.max_cwnd_segments)
        while conn.flight() < window and conn.next_seq < conn.transfer_end:
            seq = conn.next_seq
            conn.next_seq += 1
            conn.distinct_sent += 1
            self.distinct_segments_sent += 1
            self._put_on_wire(conn, seq, retransmission=False)

    def _retransmit(self, conn: _Connection, seq: int) -> None:
        conn.retx_seqs.add(seq)
        self.retx_segments += 1
        self.retx_bytes += self._segment_bytes()
        self._put_on_wire(conn, seq, retransmission=True)

    def _segment_bytes(self) -> int:
        return max(self.model.mss_bytes, _MIN_SEGMENT_BYTES)

    def _put_on_wire(self, conn: _Connection, seq: int, retransmission: bool) -> None:
        packet = build_udp_frame(
            self._segment_bytes(),
            conn.five_tuple,
            src_mac=self.config.src_mac,
            dst_mac=self.config.dst_mac,
        )
        packet.meta["cl_flow"] = conn.flow_id
        packet.meta["cl_seq"] = seq
        if retransmission:
            packet.meta["cl_retx"] = True
        conn.outstanding[seq] = self.node.env.now
        self.segments_sent += 1
        self.node.transmit_segment(packet, retransmission)
        self._arm_timer(conn)

    # ------------------------------------------------------------------ #
    # Delivery (the ACK path)
    # ------------------------------------------------------------------ #

    def on_delivery(self, packet) -> bool:
        """Process one frame back from the network.

        Returns ``True`` when the frame is a *duplicate* delivery of a
        sequence number already delivered once (throughput, not
        goodput) — the caller keeps its goodput counters on that
        verdict, so the split is decided in exactly one place.
        """
        conn = self.flows[packet.meta["cl_flow"]]
        seq = packet.meta["cl_seq"]
        now = self.node.env.now
        sent_ns = conn.outstanding.pop(seq, None)

        if seq < conn.cum or seq in conn.sacked:
            self.duplicate_segments += 1
            return True

        # First delivery of this sequence number.
        self.unique_delivered_segments += 1
        self.unique_delivered_useful_bytes += packet.useful_bytes
        if sent_ns is not None and seq not in conn.retx_seqs:
            self._sample_rtt(conn, now - sent_ns)

        advanced = 0
        if seq == conn.cum:
            conn.cum += 1
            advanced = 1
            while conn.cum in conn.sacked:
                conn.sacked.discard(conn.cum)
                conn.cum += 1
                advanced += 1
        else:
            conn.sacked.add(seq)

        if advanced:
            self._on_cumulative_advance(conn, advanced)
        else:
            self._on_out_of_order(conn)

        if not conn.epoch_done and conn.cum >= conn.transfer_end:
            self._transfer_completed(conn)
        else:
            self._send_allowed(conn)
        self._arm_timer(conn)
        return False

    def _on_cumulative_advance(self, conn: _Connection, acked: int) -> None:
        conn.dup_acks = 0
        if conn.in_recovery:
            if conn.cum >= conn.recovery_point:
                conn.in_recovery = False
                conn.cwnd = max(conn.ssthresh, 1.0)
            elif conn.cum in conn.outstanding and self._active():
                # NewReno partial ACK: the next hole is lost too.
                self._retransmit(conn, conn.cum)
            return
        for _ in range(acked):
            if conn.cwnd < conn.ssthresh:
                conn.cwnd += 1.0
            else:
                conn.cwnd += 1.0 / conn.cwnd
        conn.cwnd = min(conn.cwnd, float(self.model.max_cwnd_segments))

    def _on_out_of_order(self, conn: _Connection) -> None:
        conn.dup_acks += 1
        if (
            conn.dup_acks >= self.model.dupack_threshold
            and not conn.in_recovery
            and conn.cum in conn.outstanding
            and self._active()
        ):
            conn.ssthresh = max(conn.flight() / 2.0, 2.0)
            conn.cwnd = conn.ssthresh + self.model.dupack_threshold
            conn.in_recovery = True
            conn.recovery_point = conn.next_seq
            self.fast_retransmits += 1
            self._retransmit(conn, conn.cum)

    def _sample_rtt(self, conn: _Connection, sample_ns: float) -> None:
        self.rtt_samples += 1
        if conn.srtt_ns is None:
            conn.srtt_ns = float(sample_ns)
            conn.rttvar_ns = sample_ns / 2.0
        else:
            conn.rttvar_ns = 0.75 * conn.rttvar_ns + 0.25 * abs(conn.srtt_ns - sample_ns)
            conn.srtt_ns = 0.875 * conn.srtt_ns + 0.125 * sample_ns
        conn.rto_ns = min(
            max(conn.srtt_ns + 4.0 * conn.rttvar_ns, float(self.model.min_rto_ns)),
            float(self.model.max_rto_ns),
        )

    # ------------------------------------------------------------------ #
    # Retransmission timer
    # ------------------------------------------------------------------ #

    def _arm_timer(self, conn: _Connection) -> None:
        if conn.timer_armed or not conn.outstanding or not self._active():
            return
        deadline = min(conn.outstanding.values()) + int(conn.rto_ns)
        conn.timer_armed = True
        conn.timer_gen += 1
        generation = conn.timer_gen
        now = self.node.env.now
        self.node.env.schedule_at(
            max(deadline, now + 1), lambda: self._on_timer(conn, generation)
        )

    def _on_timer(self, conn: _Connection, generation: int) -> None:
        if generation != conn.timer_gen:
            return
        conn.timer_armed = False
        if not conn.outstanding or not self._active():
            return
        now = self.node.env.now
        oldest = min(conn.outstanding.values())
        if now - oldest >= conn.rto_ns:
            self._timeout(conn)
        self._arm_timer(conn)

    def _timeout(self, conn: _Connection) -> None:
        seq = min(conn.outstanding)
        conn.ssthresh = max(conn.flight() / 2.0, 2.0)
        conn.cwnd = 1.0
        conn.dup_acks = 0
        conn.in_recovery = False
        conn.rto_ns = min(conn.rto_ns * 2.0, float(self.model.max_rto_ns))
        self.timeouts += 1
        self._retransmit(conn, seq)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def state_summary(self) -> Dict[str, Any]:
        """Connection-state snapshot for CLI rendering and debugging."""
        cwnds = [conn.cwnd for conn in self.flows]
        rtos = [conn.rto_ns for conn in self.flows]
        srtts = [conn.srtt_ns for conn in self.flows if conn.srtt_ns is not None]
        return {
            "flows": len(self.flows),
            "segments_sent": self.segments_sent,
            "distinct_segments_sent": self.distinct_segments_sent,
            "retransmitted_segments": self.retx_segments,
            "fast_retransmits": self.fast_retransmits,
            "timeouts": self.timeouts,
            "duplicate_deliveries": self.duplicate_segments,
            "epochs_completed": self.epochs_completed,
            "mean_cwnd_segments": sum(cwnds) / len(cwnds),
            "mean_rto_us": sum(rtos) / len(rtos) / 1_000.0,
            "mean_srtt_us": (sum(srtts) / len(srtts) / 1_000.0) if srtts else 0.0,
            "flows_in_flight": sum(1 for conn in self.flows if conn.outstanding),
        }


# ---------------------------------------------------------------------- #
# The workload spec
# ---------------------------------------------------------------------- #


@dataclass
class ClosedLoopWorkload(WorkloadSpec):
    """A named closed-loop workload: a :class:`ClosedLoopFlows` population.

    ``rate_gbps`` is only a *nominal* figure (used to seed PktGen config
    and reports); the actual offered load is emergent — that is the
    point of a closed loop.  Rescaling via ``traffic_model(rate)`` keeps
    the transport untouched for the same reason.
    """

    name: str = "closed-loop"
    description: str = ""
    flows: ClosedLoopFlows = field(default_factory=ClosedLoopFlows)
    rate_gbps: float = 6.0
    #: Assumed base round-trip for the idealized preview trace (the live
    #: RTT is measured, not assumed).
    preview_rtt_ns: int = 20_000
    burst_size: int = 4
    kind: str = "closed-loop"

    def __post_init__(self) -> None:
        if not isinstance(self.flows, ClosedLoopFlows):
            raise WorkloadSpecError("a closed-loop workload needs ClosedLoopFlows")
        if self.rate_gbps <= 0:
            raise WorkloadSpecError("rate_gbps must be positive")
        if self.preview_rtt_ns <= 0:
            raise WorkloadSpecError("preview_rtt_ns must be positive")

    # ------------------------------------------------------------------ #
    # WorkloadSpec interface
    # ------------------------------------------------------------------ #

    def nominal_rate_gbps(self) -> float:
        return self.rate_gbps

    def workload(self) -> Workload:
        return Workload(
            name=self.name,
            sizes=FixedSizeDistribution(self.flows.mss_bytes),
            flows=FlowGenerator(flow_count=min(self.flows.flow_count, 4096)),
        )

    def traffic_model(self, rate_gbps: Optional[float] = None) -> TrafficModel:
        model = self.flows

        def transport_factory(config, node) -> ClosedLoopTransport:
            return ClosedLoopTransport(model, config, node)

        return TrafficModel(
            transport_factory=transport_factory,
            rescale=self.traffic_model,
        )

    def trace(
        self,
        seed: int,
        max_packets: int,
        rate_gbps: Optional[float] = None,
    ) -> List[TracedPacket]:
        """Idealized (lossless, fixed-RTT) closed-loop emission trace.

        Previews cannot run the real network, so the trace models the
        ACK clock against an ideal path: every window round trip takes
        ``preview_rtt_ns``, windows grow by slow start / congestion
        avoidance, epochs barrier exactly like the live engine.  Seeded
        start jitter keeps distinct seeds distinguishable.
        """
        if max_packets <= 0:
            raise WorkloadSpecError("max_packets must be positive")
        model = self.flows
        rng = derived_rng(seed, _TRANSPORT_SALT)
        tuples = FlowGenerator(flow_count=model.flow_count).flows()
        size = max(model.mss_bytes, _MIN_SEGMENT_BYTES)
        # Per-flow idealized state: (start_offset_ns, cwnd, sent, acked).
        jitter = [rng.randrange(model.start_jitter_ns + 1) for _ in tuples]
        trace: List[TracedPacket] = []
        epoch_start = 0
        while len(trace) < max_packets:
            # One synchronized epoch: every flow ships its transfer in
            # slow-start rounds of one RTT each.
            cwnd = [float(model.initial_cwnd_segments)] * len(tuples)
            sent = [0] * len(tuples)
            round_index = 0
            while any(s < model.segments_per_transfer for s in sent):
                round_time = epoch_start + round_index * self.preview_rtt_ns
                for index, five_tuple in enumerate(tuples):
                    window = min(
                        int(cwnd[index]), model.max_cwnd_segments,
                        model.segments_per_transfer - sent[index],
                    )
                    for burst_pos in range(window):
                        when = round_time + jitter[index] + burst_pos * 500
                        trace.append(
                            TracedPacket(
                                time_ns=int(when),
                                size_bytes=size,
                                src_ip=str(five_tuple.src_ip),
                                dst_ip=str(five_tuple.dst_ip),
                                src_port=five_tuple.src_port,
                                dst_port=five_tuple.dst_port,
                            )
                        )
                        if len(trace) >= max_packets:
                            trace.sort(key=lambda p: p.as_tuple())
                            return trace
                    sent[index] += window
                    if cwnd[index] < model.initial_ssthresh_segments:
                        cwnd[index] = min(cwnd[index] * 2, float(model.max_cwnd_segments))
                    else:
                        cwnd[index] += 1.0
                round_index += 1
            epoch_start += round_index * self.preview_rtt_ns + max(
                model.think_time_ns, self.preview_rtt_ns
            )
        trace.sort(key=lambda p: p.as_tuple())
        return trace

    def transport_preview(self, seed: int, max_packets: int) -> Dict[str, Any]:
        """Modeled transport state after the preview trace (CLI rendering)."""
        model = self.flows
        trace = self.trace(seed, max_packets)
        span_ns = (trace[-1].time_ns - trace[0].time_ns) if len(trace) > 1 else 0
        rounds = max(1, span_ns // self.preview_rtt_ns)
        return {
            "flows": model.flow_count,
            "segments_per_transfer": model.segments_per_transfer,
            "mss_bytes": model.mss_bytes,
            "initial_cwnd_segments": model.initial_cwnd_segments,
            "min_rto_us": model.min_rto_ns / 1_000.0,
            "sync_epochs": model.sync_epochs,
            "modeled_rounds": int(rounds),
            "modeled_span_us": span_ns / 1_000.0,
        }

    def describe(self) -> dict:
        info = super().describe()
        info["flows"] = self.flows.label()
        info["transport"] = "closed-loop NewReno (dup-ACK fast retransmit, RTO)"
        info["mss_bytes"] = f"{self.flows.mss_bytes}"
        info["initial_cwnd"] = f"{self.flows.initial_cwnd_segments} segments"
        info["ssthresh"] = f"{self.flows.initial_ssthresh_segments} segments"
        info["min_rto_us"] = f"{self.flows.min_rto_ns / 1_000.0:g}"
        info["epochs"] = (
            "synchronized barrier" if self.flows.sync_epochs else "independent"
        )
        return info

    def with_flows(self, **changes) -> "ClosedLoopWorkload":
        """A copy with the flow model's fields replaced (sweep helper)."""
        return replace(self, flows=replace(self.flows, **changes))
