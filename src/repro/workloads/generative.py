"""Generative workloads: arrival process × flow model × size law × schedule.

A :class:`GenerativeWorkload` composes the four orthogonal ingredients
into one named traffic model.  The same composition serves three
consumers:

* ``repro workload preview`` materializes a deterministic per-packet
  :meth:`~GenerativeWorkload.trace` without touching the event loop;
* the simulator receives a :class:`~repro.workloads.base.TrafficModel`
  whose packet source and arrival sampler plug into
  :class:`~repro.netsim.trafficgen_node.TrafficGenNode`;
* campaigns sweep workloads by name through the scenario registry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import WorkloadSpecError
from repro.packet.packet import Packet
from repro.packet.pool import FramePool
from repro.traffic.distributions import PacketSizeDistribution
from repro.traffic.pktgen import blacklisted_source, build_udp_frame
from repro.traffic.workload import Workload
from repro.workloads.arrivals import ArrivalModel, UniformArrivals
from repro.workloads.base import TrafficModel, WorkloadSpec, derived_rng
from repro.workloads.flowmodels import FlowModel, FlowSampler, RoundRobinFlows
from repro.workloads.schedule import TraceSchedule
from repro.workloads.stats import TracedPacket

#: RNG salt separating arrival-gap sampling from packet-content sampling,
#: so adding an arrival model never perturbs the generated frames.
_ARRIVALS_SALT = 1


class GenerativePacketSource:
    """Builds frames from a size distribution and a flow sampler.

    The drop-in generalization of
    :class:`~repro.traffic.pktgen.PacketFactory`: same payload pattern,
    same blacklist steering, but the flow policy is pluggable.
    """

    def __init__(
        self,
        sizes: PacketSizeDistribution,
        flow_sampler: FlowSampler,
        rng: random.Random,
        src_mac: str = "02:00:00:00:00:01",
        dst_mac: str = "02:00:00:00:00:02",
        blacklisted_fraction: float = 0.0,
        pooled: bool = False,
    ) -> None:
        self.sizes = sizes
        self.flow_sampler = flow_sampler
        self._rng = rng
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.blacklisted_fraction = blacklisted_fraction
        #: Fast-path flag: clone frames from pooled per-flow templates.
        #: May be flipped until the first packet is built (the topology
        #: sets it together with the generator MACs).
        self.pooled = pooled
        self._pool: Optional[FramePool] = None
        self.packets_built = 0

    def next_packet(self) -> Packet:
        """Build the next frame deterministically from the bound RNG.

        Pooled and reference paths draw from the RNG identically and
        produce byte-identical frames, so ``pooled`` cannot change
        simulation results.
        """
        size = self.sizes.sample(self._rng)
        flow = self.flow_sampler.next_flow()
        blacklisted = (
            self.blacklisted_fraction > 0
            and self._rng.random() < self.blacklisted_fraction
        )
        if self.pooled:
            pool = self._pool
            if pool is None:
                pool = self._pool = FramePool(self.src_mac, self.dst_mac)
            packet = pool.frame(
                size,
                flow,
                src_ip=blacklisted_source(self.packets_built) if blacklisted else None,
            )
        else:
            packet = build_udp_frame(
                size,
                flow,
                src_mac=self.src_mac,
                dst_mac=self.dst_mac,
                src_ip=str(blacklisted_source(self.packets_built)) if blacklisted else None,
            )
        self.packets_built += 1
        return packet


@dataclass
class GenerativeWorkload(WorkloadSpec):
    """A named, fully generative traffic model."""

    name: str = "generative"
    description: str = ""
    sizes: PacketSizeDistribution = None  # type: ignore[assignment]
    flows: FlowModel = field(default_factory=RoundRobinFlows)
    arrivals: ArrivalModel = field(default_factory=UniformArrivals)
    schedule: Optional[TraceSchedule] = None
    rate_gbps: float = 8.0
    blacklisted_fraction: float = 0.0
    burst_size: int = 32
    kind: str = "generative"

    def __post_init__(self) -> None:
        if self.sizes is None:
            raise WorkloadSpecError("a generative workload needs a size distribution")
        if self.rate_gbps <= 0:
            raise WorkloadSpecError("rate_gbps must be positive")
        if not 0.0 <= self.blacklisted_fraction <= 1.0:
            raise WorkloadSpecError("blacklisted_fraction must lie in [0, 1]")

    # ------------------------------------------------------------------ #
    # WorkloadSpec interface
    # ------------------------------------------------------------------ #

    def nominal_rate_gbps(self) -> float:
        if self.schedule is not None:
            return self.schedule.mean_gbps()
        return self.rate_gbps

    def workload(self) -> Workload:
        # Static view for mean-size/pps arithmetic and reports; the live
        # flow policy comes from ``flows`` via the packet source, so the
        # population here is only nominal (and capped for memory).
        from repro.packet.flows import FlowGenerator

        return Workload(
            name=self.name,
            sizes=self.sizes,
            flows=FlowGenerator(flow_count=min(self.flows.nominal_flow_count(), 4096)),
            blacklisted_fraction=self.blacklisted_fraction,
        )

    def packet_source(self, seed: int) -> GenerativePacketSource:
        """A fresh deterministic packet source for *seed*."""
        rng = random.Random(seed)
        return GenerativePacketSource(
            sizes=self.sizes,
            flow_sampler=self.flows.sampler(rng),
            rng=rng,
            blacklisted_fraction=self.blacklisted_fraction,
        )

    def traffic_model(self, rate_gbps: Optional[float] = None) -> TrafficModel:
        schedule = self.schedule
        if schedule is not None and rate_gbps is not None:
            schedule = schedule.with_mean(rate_gbps)

        def source_factory(config) -> GenerativePacketSource:
            source = self.packet_source(config.seed)
            source.src_mac = config.src_mac
            source.dst_mac = config.dst_mac
            source.pooled = getattr(config, "pooled", False)
            return source

        return TrafficModel(
            schedule=schedule,
            arrivals=self.arrivals,
            source_factory=source_factory,
            rescale=self.traffic_model,
        )

    def trace(
        self,
        seed: int,
        max_packets: int,
        rate_gbps: Optional[float] = None,
    ) -> List[TracedPacket]:
        """First *max_packets* packets at per-packet pacing granularity."""
        if max_packets <= 0:
            raise WorkloadSpecError("max_packets must be positive")
        schedule = self.schedule
        if schedule is not None and rate_gbps is not None:
            schedule = schedule.with_mean(rate_gbps)
        flat_rate = rate_gbps if rate_gbps is not None else self.rate_gbps
        source = self.packet_source(seed)
        sampler = self.arrivals.sampler(derived_rng(seed, _ARRIVALS_SALT))
        trace: List[TracedPacket] = []
        t_ns = 0.0
        for _ in range(max_packets):
            if schedule is not None and schedule.rate_at(int(t_ns)) <= 0:
                active = schedule.next_active(int(t_ns))
                if active is None:
                    break
                t_ns = float(active)
            packet = source.next_packet()
            size = packet.wire_length
            trace.append(
                TracedPacket(
                    time_ns=int(t_ns),
                    size_bytes=size,
                    src_ip=str(packet.ip.src),
                    dst_ip=str(packet.ip.dst),
                    src_port=packet.l4.src_port,
                    dst_port=packet.l4.dst_port,
                )
            )
            # Integral pacing mirrors the live generator: a ramp rising
            # from ~zero must not quote its instantaneous rate across
            # the whole gap.
            if schedule is not None:
                target = schedule.gap_for_bits(t_ns, size * 8.0)
                if target is None:
                    break
            else:
                target = size * 8.0 / flat_rate
            t_ns += sampler.next_gap_ns(target)
        return trace

    def describe(self) -> dict:
        info = super().describe()
        info["sizes"] = type(self.sizes).__name__
        info["mean_frame_bytes"] = f"{self.sizes.mean():.1f}"
        info["flows"] = self.flows.label()
        info["arrivals"] = self.arrivals.label()
        if self.blacklisted_fraction:
            info["blacklisted_fraction"] = f"{self.blacklisted_fraction:g}"
        if self.schedule is not None:
            info["schedule"] = "; ".join(self.schedule.describe())
        else:
            info["schedule"] = "constant"
        return info
