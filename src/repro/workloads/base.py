"""Common workload abstractions shared by generative models and replay.

A *workload* is anything that can (a) materialize its first N packets as
a deterministic trace for previews and determinism tests, and (b) hand
the simulator a :class:`TrafficModel` — the bundle of schedule, arrival
process, packet source and/or timed replay stream the traffic generator
node consumes.  The two concrete families are
:class:`~repro.workloads.generative.GenerativeWorkload` and
:class:`~repro.workloads.replay.PcapReplayWorkload`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.traffic.workload import Workload
from repro.workloads.arrivals import ArrivalModel
from repro.workloads.schedule import TraceSchedule
from repro.workloads.stats import TracedPacket, WorkloadSummary, summarize

#: A replay stream yields ``(relative_time_ns, frame_bytes)`` pairs; the
#: traffic generator rebuilds a fresh Packet per frame so loop iterations
#: never share mutable packet state.
TimedFrame = Tuple[int, bytes]
StreamFactory = Callable[[int], Iterator[TimedFrame]]


def derived_rng(seed: int, salt: int) -> random.Random:
    """A deterministic RNG for (*seed*, *salt*) independent of hash salting."""
    return random.Random((seed * 1_000_003 + salt) & 0xFFFFFFFFFFFFFFFF)


@dataclass
class TrafficModel:
    """Everything a traffic generator needs beyond the legacy constant path.

    Attributes
    ----------
    schedule:
        Time-varying offered load; ``None`` keeps the config's constant
        rate.
    arrivals:
        Arrival-process description; ``None`` keeps deterministic pacing.
    source_factory:
        Builds a packet source (``next_packet() -> Packet``) from the
        generator's :class:`~repro.traffic.pktgen.PktGenConfig`; ``None``
        keeps the legacy :class:`~repro.traffic.pktgen.PacketFactory`.
    stream_factory:
        Builds a timed replay stream from a seed.  When set, the
        generator plays the stream verbatim instead of pacing bursts.
    loop_stream:
        Restart the replay stream when it runs dry (until the run ends).
    transport_factory:
        Builds a closed-loop transport engine
        (:class:`~repro.workloads.transport.ClosedLoopTransport`) from
        the generator's config and the node itself.  When set, the node
        does not pace from the schedule at all — the transport's ACK
        clock decides every transmission — so ``schedule``, ``arrivals``
        and ``stream_factory`` are ignored.
    rescale:
        Rebuilds this model at a different mean offered rate (Gbps).
        Rate-probing callers (:meth:`ScenarioConfig.with_rate`, the peak
        goodput search) use it so schedules and replay speedups follow
        the probed rate instead of staying frozen at the nominal one.
        Closed-loop models return themselves unchanged: their offered
        load is emergent, not configured.
    """

    schedule: Optional[TraceSchedule] = None
    arrivals: Optional[ArrivalModel] = None
    source_factory: Optional[Callable[[Any], Any]] = None
    stream_factory: Optional[StreamFactory] = None
    loop_stream: bool = True
    transport_factory: Optional[Callable[[Any, Any], Any]] = None
    rescale: Optional[Callable[[float], "TrafficModel"]] = None


class WorkloadSpec:
    """Base class for named workloads.

    Subclasses set ``name``/``description``/``kind`` and implement
    :meth:`trace`, :meth:`traffic_model`, :meth:`workload` and
    :meth:`nominal_rate_gbps`.
    """

    name: str = ""
    description: str = ""
    kind: str = "generative"
    #: Packets per generation event; fine-grained workloads (incast)
    #: lower this so epoch structure survives burst aggregation.
    burst_size: int = 32

    def nominal_rate_gbps(self) -> float:
        """Default offered rate when a scenario does not override it."""
        raise NotImplementedError

    def workload(self) -> Workload:
        """The classic static workload view (sizes + a nominal flow population)."""
        raise NotImplementedError

    def traffic_model(self, rate_gbps: Optional[float] = None) -> TrafficModel:
        """The dynamic traffic bundle, rescaled to a mean of *rate_gbps*."""
        raise NotImplementedError

    def trace(
        self,
        seed: int,
        max_packets: int,
        rate_gbps: Optional[float] = None,
    ) -> List[TracedPacket]:
        """Materialize the first *max_packets* packets deterministically.

        ``rate_gbps`` rescales the workload's mean offered rate for this
        trace (the CLI's ``--rate`` flag); ``None`` keeps the nominal rate.
        """
        raise NotImplementedError

    def summary(self, seed: int = 42, max_packets: int = 2000) -> WorkloadSummary:
        """Summary statistics of the first *max_packets* packets."""
        return summarize(self.trace(seed, max_packets))

    def describe(self) -> Dict[str, str]:
        """Key → human-readable value pairs for ``repro workload describe``."""
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "nominal_rate_gbps": f"{self.nominal_rate_gbps():g}",
        }
