"""Trace materialization and summary statistics for workloads.

``repro workload preview`` needs to characterize a workload without
running the full simulator: every workload can materialize its first N
packets as a list of :class:`TracedPacket` rows (timestamp, size and
5-tuple), and :func:`summarize` condenses such a trace into the headline
numbers — mean offered rate, burstiness, small-packet fraction — that
predict how hard the workload will push PayloadPark's parking slots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.errors import WorkloadSpecError
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES

#: Frames whose payload is below the paper's 160-byte minimum split
#: payload are never parked; their fraction is the key small-packet metric.
SMALL_FRAME_THRESHOLD_BYTES = ETHERNET_UDP_HEADER_BYTES + 160


@dataclass(frozen=True)
class TracedPacket:
    """One packet of a materialized workload trace."""

    time_ns: int
    size_bytes: int
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int

    def flow_key(self) -> tuple:
        """Hashable flow identity for distinct-flow counting."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port)

    def as_tuple(self) -> tuple:
        """Canonical comparable form (used by determinism tests)."""
        return (
            self.time_ns,
            self.size_bytes,
            self.src_ip,
            self.dst_ip,
            self.src_port,
            self.dst_port,
        )


@dataclass(frozen=True)
class WorkloadSummary:
    """Headline statistics of one workload trace."""

    packets: int
    duration_us: float
    mean_rate_gbps: float
    mean_frame_bytes: float
    small_packet_fraction: float
    distinct_flows: int
    burstiness_cv: float
    peak_to_mean: float

    def as_row(self) -> Dict[str, Any]:
        """Flat dict for table rendering / JSON output."""
        return {
            "packets": self.packets,
            "duration_us": round(self.duration_us, 2),
            "mean_rate_gbps": round(self.mean_rate_gbps, 3),
            "mean_frame_bytes": round(self.mean_frame_bytes, 1),
            "small_packet_fraction": round(self.small_packet_fraction, 3),
            "distinct_flows": self.distinct_flows,
            "burstiness_cv": round(self.burstiness_cv, 3),
            "peak_to_mean": round(self.peak_to_mean, 3),
        }


def summarize(trace: Sequence[TracedPacket], buckets: int = 50) -> WorkloadSummary:
    """Condense *trace* into a :class:`WorkloadSummary`.

    Burstiness is reported two ways: the coefficient of variation of the
    inter-arrival gaps (1.0 for Poisson, 0.0 for deterministic pacing,
    larger for on/off bursts), and the peak-to-mean ratio of the rate
    across *buckets* equal time bins (sensitive to ramps and incast).
    """
    if not trace:
        raise WorkloadSpecError("cannot summarize an empty trace")
    total_bytes = sum(packet.size_bytes for packet in trace)
    duration_ns = max(trace[-1].time_ns - trace[0].time_ns, 1)
    gaps = [
        later.time_ns - earlier.time_ns
        for earlier, later in zip(trace, trace[1:])
    ]
    if gaps:
        mean_gap = sum(gaps) / len(gaps)
        if mean_gap > 0:
            variance = sum((gap - mean_gap) ** 2 for gap in gaps) / len(gaps)
            cv = math.sqrt(variance) / mean_gap
        else:
            cv = 0.0
    else:
        cv = 0.0

    bucket_bytes = [0] * buckets
    for packet in trace:
        index = min(
            (packet.time_ns - trace[0].time_ns) * buckets // duration_ns,
            buckets - 1,
        )
        bucket_bytes[index] += packet.size_bytes
    mean_bucket = total_bytes / buckets
    peak_to_mean = max(bucket_bytes) / mean_bucket if mean_bucket > 0 else 0.0

    small = sum(1 for packet in trace if packet.size_bytes < SMALL_FRAME_THRESHOLD_BYTES)
    return WorkloadSummary(
        packets=len(trace),
        duration_us=duration_ns / 1_000.0,
        mean_rate_gbps=total_bytes * 8.0 / duration_ns,
        mean_frame_bytes=total_bytes / len(trace),
        small_packet_fraction=small / len(trace),
        distinct_flows=len({packet.flow_key() for packet in trace}),
        burstiness_cv=cv,
        peak_to_mean=peak_to_mean,
    )
