"""Flow-population models: which 5-tuple each generated packet belongs to.

The legacy :class:`~repro.traffic.pktgen.PacketFactory` cycles a fixed
flow population round-robin.  The models here generalize that into a
pluggable policy; heavy-tailed mixes concentrate traffic on a few
elephant flows, while churn models synthesize a fresh 5-tuple for
(almost) every packet — the adversarial case for PayloadPark, whose
parking slots are keyed per packet and recycled as flows come and go.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadSpecError
from repro.packet.flows import FiveTuple, FlowGenerator
from repro.packet.ipv4 import PROTO_UDP, IPv4Address


class FlowSampler:
    """Stateful per-generator flow chooser."""

    def next_flow(self) -> FiveTuple:
        """The 5-tuple of the next generated packet."""
        raise NotImplementedError


@dataclass(frozen=True)
class FlowModel:
    """Immutable flow-population description."""

    def sampler(self, rng: random.Random) -> FlowSampler:
        """Bind this model to *rng* and return a fresh sampler."""
        raise NotImplementedError

    def nominal_flow_count(self) -> int:
        """Population size reported by ``describe`` (approximate for churn)."""
        raise NotImplementedError

    def label(self) -> str:
        """Short name used in ``repro workload describe`` output."""
        return type(self).__name__


# ---------------------------------------------------------------------- #
# Round-robin over a fixed population (the legacy behavior)
# ---------------------------------------------------------------------- #


class _RoundRobinSampler(FlowSampler):
    def __init__(self, flows) -> None:
        self._flows = flows
        self._cursor = 0

    def next_flow(self) -> FiveTuple:
        flow = self._flows[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._flows)
        return flow


@dataclass(frozen=True)
class RoundRobinFlows(FlowModel):
    """Cycle a fixed deterministic population, one packet per flow per turn."""

    flow_count: int = 1024

    def __post_init__(self) -> None:
        if self.flow_count <= 0:
            raise WorkloadSpecError("flow_count must be positive")

    def sampler(self, rng: random.Random) -> FlowSampler:
        return _RoundRobinSampler(FlowGenerator(flow_count=self.flow_count).flows())

    def nominal_flow_count(self) -> int:
        return self.flow_count

    def label(self) -> str:
        return f"round-robin({self.flow_count} flows)"


# ---------------------------------------------------------------------- #
# Elephant/mice heavy-tailed mixes
# ---------------------------------------------------------------------- #


class _HeavyTailSampler(FlowSampler):
    def __init__(self, model: "HeavyTailFlows", rng: random.Random) -> None:
        flows = FlowGenerator(flow_count=model.flow_count).flows()
        elephants = max(1, int(round(model.flow_count * model.elephant_fraction)))
        self._elephants = flows[:elephants]
        self._mice = flows[elephants:] or flows
        self._weight = model.elephant_weight
        self._rng = rng

    def next_flow(self) -> FiveTuple:
        if self._rng.random() < self._weight:
            return self._rng.choice(self._elephants)
        return self._rng.choice(self._mice)


@dataclass(frozen=True)
class HeavyTailFlows(FlowModel):
    """A few elephant flows carry most packets; the mice share the rest."""

    flow_count: int = 4096
    elephant_fraction: float = 0.05
    elephant_weight: float = 0.80

    def __post_init__(self) -> None:
        if self.flow_count <= 0:
            raise WorkloadSpecError("flow_count must be positive")
        if not 0.0 < self.elephant_fraction < 1.0:
            raise WorkloadSpecError("elephant_fraction must lie in (0, 1)")
        if not 0.0 < self.elephant_weight < 1.0:
            raise WorkloadSpecError("elephant_weight must lie in (0, 1)")

    def sampler(self, rng: random.Random) -> FlowSampler:
        return _HeavyTailSampler(self, rng)

    def nominal_flow_count(self) -> int:
        return self.flow_count

    def label(self) -> str:
        return (
            f"heavy-tail({self.flow_count} flows, "
            f"{self.elephant_fraction:.0%} elephants carry {self.elephant_weight:.0%})"
        )


# ---------------------------------------------------------------------- #
# Flow churn (SYN-flood style)
# ---------------------------------------------------------------------- #


class _ChurnSampler(FlowSampler):
    def __init__(self, model: "ChurnFlows", rng: random.Random) -> None:
        self._model = model
        self._rng = rng
        self._index = 0
        self._emitted = model.packets_per_flow  # force a fresh flow first
        self._src_base = IPv4Address.from_string(model.src_subnet).value
        self._dst_base = IPv4Address.from_string(model.dst_subnet).value
        self._current: FiveTuple = None  # type: ignore[assignment]

    def _fresh_flow(self) -> FiveTuple:
        # A counter guarantees distinctness; the RNG scatters ports so the
        # sequence does not look like a linear scan to hash-based NFs.
        index = self._index
        self._index += 1
        src_ip = IPv4Address((self._src_base + index % 16_000_000 + 1) & 0xFFFFFFFF)
        dst_ip = IPv4Address((self._dst_base + index % 250 + 1) & 0xFFFFFFFF)
        return FiveTuple(
            src_ip=src_ip,
            dst_ip=dst_ip,
            protocol=PROTO_UDP,
            src_port=1024 + self._rng.randrange(60_000),
            dst_port=80,
        )

    def next_flow(self) -> FiveTuple:
        if self._emitted >= self._model.packets_per_flow:
            self._current = self._fresh_flow()
            self._emitted = 0
        self._emitted += 1
        return self._current


@dataclass(frozen=True)
class ChurnFlows(FlowModel):
    """Every packet (or tiny flowlet) is a brand-new flow.

    This is the SYN-flood-shaped workload that maximizes parking-slot
    turnover: no 5-tuple ever repeats within the source subnet's period,
    so caches and flow tables never get a hit.
    """

    packets_per_flow: int = 1
    src_subnet: str = "10.9.0.0"
    dst_subnet: str = "10.2.0.0"

    def __post_init__(self) -> None:
        if self.packets_per_flow < 1:
            raise WorkloadSpecError("packets_per_flow must be >= 1")

    def sampler(self, rng: random.Random) -> FlowSampler:
        return _ChurnSampler(self, rng)

    def nominal_flow_count(self) -> int:
        return 16_000_000

    def label(self) -> str:
        return f"churn({self.packets_per_flow} pkt/flow)"
