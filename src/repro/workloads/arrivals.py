"""Packet arrival processes.

The legacy traffic generator paces bursts deterministically: every gap
equals exactly the bytes-per-burst over the offered rate.  Real traffic
is rougher.  Each :class:`ArrivalModel` here is an immutable description
of an arrival process; :meth:`ArrivalModel.sampler` binds it to an RNG
and returns a stateful :class:`ArrivalSampler` whose ``next_gap_ns``
perturbs the deterministic target gap while preserving the long-run
mean, so the offered rate still matches the schedule.

Models
------
* :class:`UniformArrivals` — deterministic pacing (the legacy behavior).
* :class:`PoissonArrivals` — memoryless gaps (exponential).
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process:
  an ON state emits at ``burst_factor`` times the mean rate, an OFF
  state at the complementary rate, with geometric state residence.
* :class:`IncastArrivals` — fan-in synchronization: ``fan_in`` arrivals
  clustered at the start of every epoch, then silence, as when many
  servers answer one aggregation query at once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadSpecError


class ArrivalSampler:
    """Stateful gap generator bound to one RNG (one per traffic source)."""

    def next_gap_ns(self, target_gap_ns: float) -> float:
        """Draw the next inter-burst gap given the mean *target_gap_ns*."""
        raise NotImplementedError


@dataclass(frozen=True)
class ArrivalModel:
    """Immutable arrival-process description; shareable across generators."""

    def sampler(self, rng: random.Random) -> ArrivalSampler:
        """Bind this model to *rng* and return a fresh sampler."""
        raise NotImplementedError

    def label(self) -> str:
        """Short name used in ``repro workload describe`` output."""
        return type(self).__name__


# ---------------------------------------------------------------------- #
# Uniform (deterministic) pacing
# ---------------------------------------------------------------------- #


class _UniformSampler(ArrivalSampler):
    def next_gap_ns(self, target_gap_ns: float) -> float:
        return target_gap_ns


@dataclass(frozen=True)
class UniformArrivals(ArrivalModel):
    """Deterministic pacing: every gap equals the target gap."""

    def sampler(self, rng: random.Random) -> ArrivalSampler:
        return _UniformSampler()

    def label(self) -> str:
        return "uniform"


# ---------------------------------------------------------------------- #
# Poisson
# ---------------------------------------------------------------------- #


class _PoissonSampler(ArrivalSampler):
    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def next_gap_ns(self, target_gap_ns: float) -> float:
        return self._rng.expovariate(1.0 / target_gap_ns)


@dataclass(frozen=True)
class PoissonArrivals(ArrivalModel):
    """Memoryless arrivals: exponential gaps with the target mean."""

    def sampler(self, rng: random.Random) -> ArrivalSampler:
        return _PoissonSampler(rng)

    def label(self) -> str:
        return "poisson"


# ---------------------------------------------------------------------- #
# Two-state MMPP (on/off bursts)
# ---------------------------------------------------------------------- #


class _MMPPSampler(ArrivalSampler):
    def __init__(self, model: "MMPPArrivals", rng: random.Random) -> None:
        self._model = model
        self._rng = rng
        # Rate multipliers per state, chosen so the long-run *time*
        # fraction spent ON is on_fraction and the mean rate is 1:
        # on_fraction * burst_factor + (1 - on_fraction) * off_factor == 1.
        self._on_factor = model.burst_factor
        self._off_factor = (1.0 - model.on_fraction * model.burst_factor) / (
            1.0 - model.on_fraction
        )
        # State flips are decided per event, so the stationary *event*
        # fraction in ON must be on_fraction * burst_factor (the ON state
        # emits burst_factor times faster); asymmetric switch
        # probabilities put the chain in exactly that balance.
        self._event_fraction_on = min(model.on_fraction * model.burst_factor, 1.0)
        self._on = rng.random() < self._event_fraction_on

    def next_gap_ns(self, target_gap_ns: float) -> float:
        model = self._model
        if self._off_factor <= 0:
            # Pure on/off (on_fraction * burst_factor == 1): the OFF state
            # emits nothing, so it cannot host per-event switching; model
            # it as an explicit silent dwell appended to ~1/residence of
            # the ON gaps, sized so the long-run mean gap stays on target.
            gap = self._rng.expovariate(self._on_factor / target_gap_ns)
            if self._rng.random() < 1.0 / model.mean_residence_events:
                dwell_on_ns = model.mean_residence_events * target_gap_ns / self._on_factor
                mean_silence_ns = (
                    dwell_on_ns * (1.0 - model.on_fraction) / model.on_fraction
                )
                gap += self._rng.expovariate(1.0 / mean_silence_ns)
            return gap
        if self._on:
            switch_probability = (1.0 - self._event_fraction_on) / model.mean_residence_events
        else:
            switch_probability = self._event_fraction_on / model.mean_residence_events
        if self._rng.random() < switch_probability:
            self._on = not self._on
        factor = self._on_factor if self._on else self._off_factor
        return self._rng.expovariate(factor / target_gap_ns)


@dataclass(frozen=True)
class MMPPArrivals(ArrivalModel):
    """Two-state Markov-modulated Poisson process (on/off bursty traffic).

    Attributes
    ----------
    on_fraction:
        Long-run fraction of time spent in the ON (bursty) state.
    burst_factor:
        Rate multiplier of the ON state; the OFF state's multiplier is
        derived so the long-run mean rate is preserved, which requires
        ``burst_factor <= 1 / on_fraction``.
    mean_residence_events:
        Mean number of arrivals between state flips (burst length).
    """

    on_fraction: float = 0.25
    burst_factor: float = 3.0
    mean_residence_events: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.on_fraction < 1.0:
            raise WorkloadSpecError("on_fraction must lie in (0, 1)")
        if self.burst_factor < 1.0:
            raise WorkloadSpecError("burst_factor must be >= 1")
        if self.on_fraction * self.burst_factor > 1.0:
            raise WorkloadSpecError(
                "on_fraction * burst_factor must be <= 1 so the OFF-state "
                "rate stays non-negative"
            )
        if self.mean_residence_events < 1:
            raise WorkloadSpecError("mean_residence_events must be >= 1")

    def sampler(self, rng: random.Random) -> ArrivalSampler:
        return _MMPPSampler(self, rng)

    def label(self) -> str:
        return (
            f"mmpp(on={self.on_fraction:g}, burst×{self.burst_factor:g}, "
            f"residence={self.mean_residence_events})"
        )


# ---------------------------------------------------------------------- #
# Incast synchronization
# ---------------------------------------------------------------------- #


class _IncastSampler(ArrivalSampler):
    def __init__(self, model: "IncastArrivals") -> None:
        self._model = model
        self._position = 0

    def next_gap_ns(self, target_gap_ns: float) -> float:
        model = self._model
        small = target_gap_ns * model.duty
        if self._position < model.fan_in - 1:
            self._position += 1
            return small
        # Close the epoch: pad so the epoch's mean gap equals the target.
        self._position = 0
        return target_gap_ns * model.fan_in - (model.fan_in - 1) * small


@dataclass(frozen=True)
class IncastArrivals(ArrivalModel):
    """Synchronized fan-in: ``fan_in`` arrivals bunched at each epoch start.

    ``duty`` compresses the intra-burst gaps (a fraction of the mean
    gap); the closing silent gap stretches so the long-run rate matches
    the schedule exactly.  ``fan_in=1`` is the degenerate edge — a
    "burst" of one arrival per epoch — and collapses to exact uniform
    pacing (every gap is a closing gap of one target).
    """

    fan_in: int = 32
    duty: float = 0.05

    def __post_init__(self) -> None:
        if self.fan_in < 1:
            raise WorkloadSpecError("fan_in must be >= 1")
        if not 0.0 < self.duty < 1.0:
            raise WorkloadSpecError("duty must lie in (0, 1)")

    def sampler(self, rng: random.Random) -> ArrivalSampler:
        return _IncastSampler(self)

    def label(self) -> str:
        return f"incast(fan_in={self.fan_in}, duty={self.duty:g})"
