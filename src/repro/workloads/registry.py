"""The named-workload registry.

Every workload here is runnable three ways with zero setup: previewed
with ``repro workload preview <name>``, run standalone through the
``workload`` scenario (``repro.experiments.scenarios.workload_scenario``),
and swept by campaigns (``grid: {workload: [...]}``).

Builders, not instances, are registered: each lookup constructs a fresh
spec so stateful pieces (replay streams, flow samplers) never leak
between runs, and construction cost is only paid for workloads actually
used.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import WorkloadSpecError
from repro.traffic.distributions import (
    EmpiricalDistribution,
    FixedSizeDistribution,
    ParetoSizeDistribution,
    enterprise_datacenter_distribution,
)
from repro.workloads.arrivals import IncastArrivals, MMPPArrivals, PoissonArrivals
from repro.workloads.base import WorkloadSpec
from repro.workloads.flowmodels import ChurnFlows, HeavyTailFlows, RoundRobinFlows
from repro.workloads.generative import GenerativeWorkload
from repro.workloads.replay import PcapReplayWorkload
from repro.workloads.schedule import TraceSchedule
from repro.workloads.transport import ClosedLoopFlows, ClosedLoopWorkload

#: Workload name → zero-argument builder returning a fresh spec.
WORKLOAD_REGISTRY: Dict[str, Callable[[], WorkloadSpec]] = {}


def register_workload(name: str, builder: Callable[[], WorkloadSpec]) -> None:
    """Add *builder* under *name*; duplicate names are an error."""
    if name in WORKLOAD_REGISTRY:
        raise WorkloadSpecError(f"workload {name!r} is already registered")
    WORKLOAD_REGISTRY[name] = builder


def workload_names() -> List[str]:
    """Sorted registered workload names."""
    return sorted(WORKLOAD_REGISTRY)


def get_workload(name: str) -> WorkloadSpec:
    """Build a fresh spec for *name* (``ValueError`` on unknown names)."""
    builder = WORKLOAD_REGISTRY.get(name)
    if builder is None:
        raise WorkloadSpecError(
            f"unknown workload {name!r}; expected one of {workload_names()}"
        )
    return builder()


# ---------------------------------------------------------------------- #
# Built-in workloads
# ---------------------------------------------------------------------- #


def _enterprise_poisson() -> WorkloadSpec:
    return GenerativeWorkload(
        name="enterprise-poisson",
        description="Benson enterprise size mix, Poisson arrivals, 4096 flows",
        sizes=enterprise_datacenter_distribution(),
        flows=RoundRobinFlows(flow_count=4096),
        arrivals=PoissonArrivals(),
        rate_gbps=8.0,
    )


def _bursty_mmpp() -> WorkloadSpec:
    return GenerativeWorkload(
        name="bursty-mmpp",
        description="on/off MMPP bursts (3x rate in bursts) over the enterprise mix",
        sizes=enterprise_datacenter_distribution(),
        flows=RoundRobinFlows(flow_count=4096),
        arrivals=MMPPArrivals(on_fraction=0.25, burst_factor=3.0, mean_residence_events=64),
        rate_gbps=8.0,
    )


def _incast_sync() -> WorkloadSpec:
    # Small response frames bunched by fan-in synchronization: the worst
    # case for switch egress buffers and a torture test for parking-slot
    # occupancy spikes.
    sizes = EmpiricalDistribution([(64, 0.20), (128, 0.25), (256, 0.35), (512, 0.20)])
    return GenerativeWorkload(
        name="incast-sync",
        description="32-way fan-in bursts of small response frames",
        sizes=sizes,
        flows=RoundRobinFlows(flow_count=32 * 16),
        arrivals=IncastArrivals(fan_in=32, duty=0.05),
        rate_gbps=6.0,
        burst_size=4,
    )


def _heavy_tail() -> WorkloadSpec:
    return GenerativeWorkload(
        name="heavy-tail",
        description="Pareto frame sizes; 5% elephant flows carry 80% of packets",
        sizes=ParetoSizeDistribution(shape=1.3, scale=120.0),
        flows=HeavyTailFlows(flow_count=4096, elephant_fraction=0.05, elephant_weight=0.80),
        arrivals=PoissonArrivals(),
        rate_gbps=8.0,
    )


def _flood_churn() -> WorkloadSpec:
    # SYN-flood shape: minimum-size frames, every packet a fresh 5-tuple.
    # No payload is ever parkable (64B frames), and flow churn maximizes
    # parking-slot turnover pressure on the switch tables.
    return GenerativeWorkload(
        name="flood-churn",
        description="64B-frame flood, fresh 5-tuple per packet (max slot churn)",
        sizes=FixedSizeDistribution(64),
        flows=ChurnFlows(packets_per_flow=1),
        arrivals=PoissonArrivals(),
        rate_gbps=4.0,
    )


def _rate_ramp() -> WorkloadSpec:
    return GenerativeWorkload(
        name="rate-ramp",
        description="enterprise mix ramping 2 -> 12 Gbps over 4 ms",
        sizes=enterprise_datacenter_distribution(),
        flows=RoundRobinFlows(flow_count=4096),
        schedule=TraceSchedule.ramp(2.0, 12.0, duration_ns=4_000_000),
    )


def _diurnal_steps() -> WorkloadSpec:
    return GenerativeWorkload(
        name="diurnal",
        description="repeating day/night cycle between 3 and 11 Gbps (1 ms period)",
        sizes=enterprise_datacenter_distribution(),
        flows=RoundRobinFlows(flow_count=4096),
        arrivals=PoissonArrivals(),
        schedule=TraceSchedule.diurnal(3.0, 11.0, period_ns=1_000_000, segments=8),
    )


def _pcap_replay() -> WorkloadSpec:
    return PcapReplayWorkload.synthetic(packet_count=512, seed=20, rate_gbps=8.0)


def _incast_collapse() -> WorkloadSpec:
    # The TCP-incast pathology: many synchronized senders slow-start
    # into one egress buffer at once.  The 1 ms minimum RTO is enormous
    # against the microsecond base RTT, so each synchronized loss epoch
    # stalls its flows for ~1000 RTTs — the goodput collapse that only a
    # closed loop can exhibit (the open-loop `incast-sync` twin keeps
    # blasting through the same drops).
    return ClosedLoopWorkload(
        name="incast-collapse",
        description="64-way synchronized TCP incast into one egress buffer",
        flows=ClosedLoopFlows(
            flow_count=64,
            segments_per_transfer=24,
            mss_bytes=1068,
            initial_cwnd_segments=2,
            initial_ssthresh_segments=64,
            min_rto_ns=1_000_000,
            sync_epochs=True,
            start_jitter_ns=2_000,
        ),
        rate_gbps=6.0,
    )


def _rpc_fanout() -> WorkloadSpec:
    # Request/response RPC shape: modest fan-out, short responses,
    # independent (unsynchronized) flow restarts with think time — the
    # regime where parking-induced RTT inflation shows up as spurious
    # RTOs rather than buffer collapse.
    return ClosedLoopWorkload(
        name="rpc-fanout",
        description="16-way RPC fan-out, short responses, independent restarts",
        flows=ClosedLoopFlows(
            flow_count=16,
            segments_per_transfer=8,
            mss_bytes=512,
            initial_cwnd_segments=4,
            initial_ssthresh_segments=32,
            min_rto_ns=500_000,
            sync_epochs=False,
            think_time_ns=50_000,
            start_jitter_ns=4_000,
        ),
        rate_gbps=4.0,
    )


register_workload("enterprise-poisson", _enterprise_poisson)
register_workload("bursty-mmpp", _bursty_mmpp)
register_workload("incast-sync", _incast_sync)
register_workload("heavy-tail", _heavy_tail)
register_workload("flood-churn", _flood_churn)
register_workload("rate-ramp", _rate_ramp)
register_workload("diurnal", _diurnal_steps)
register_workload("pcap-replay", _pcap_replay)
register_workload("incast-collapse", _incast_collapse)
register_workload("rpc-fanout", _rpc_fanout)
