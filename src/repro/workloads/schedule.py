"""Time-varying offered-load schedules.

A :class:`TraceSchedule` describes how the offered rate evolves over the
lifetime of a run as a sequence of :class:`RatePhase` segments, each
holding (or linearly interpolating between) rates in Gbps of L2 frame
bytes.  The traffic generator consults the schedule on every burst, so
rate ramps, diurnal cycles, step changes and silent (zero-rate) phases
all flow through the same constant-rate pacing code path.

Schedules are immutable plain data; :meth:`TraceSchedule.scaled` rescales
every phase so campaign sweeps over ``send_rate_gbps`` reshape the mean
offered load while preserving the schedule's *shape*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import WorkloadSpecError


@dataclass(frozen=True)
class RatePhase:
    """One segment of a schedule: rate over a fixed span of time.

    The rate interpolates linearly from ``start_gbps`` to ``end_gbps``
    over the phase's duration; equal endpoints give a flat phase.
    """

    duration_ns: int
    start_gbps: float
    end_gbps: float

    def __post_init__(self) -> None:
        if self.duration_ns <= 0:
            raise WorkloadSpecError("phase duration_ns must be positive")
        if self.start_gbps < 0 or self.end_gbps < 0:
            raise WorkloadSpecError("phase rates cannot be negative")
        if not (math.isfinite(self.start_gbps) and math.isfinite(self.end_gbps)):
            raise WorkloadSpecError("phase rates must be finite")

    def rate_at(self, offset_ns: int) -> float:
        """Rate at *offset_ns* from the start of this phase."""
        if self.start_gbps == self.end_gbps:
            return self.start_gbps
        fraction = min(max(offset_ns / self.duration_ns, 0.0), 1.0)
        return self.start_gbps + (self.end_gbps - self.start_gbps) * fraction

    def mean_gbps(self) -> float:
        """Time-averaged rate of the phase."""
        return (self.start_gbps + self.end_gbps) / 2.0


class TraceSchedule:
    """A piecewise-linear offered-load profile.

    Parameters
    ----------
    phases:
        Ordered :class:`RatePhase` segments.
    repeat:
        When true the profile wraps around after the last phase (diurnal
        cycles); otherwise the final phase's end rate holds forever.
    """

    def __init__(self, phases: Sequence[RatePhase], repeat: bool = False) -> None:
        if not phases:
            raise WorkloadSpecError("a schedule needs at least one phase")
        self.phases: Tuple[RatePhase, ...] = tuple(phases)
        self.repeat = repeat
        boundaries: List[int] = []
        elapsed = 0
        for phase in self.phases:
            elapsed += phase.duration_ns
            boundaries.append(elapsed)
        self._boundaries = boundaries
        self.total_duration_ns = elapsed
        if all(phase.mean_gbps() == 0 for phase in self.phases):
            raise WorkloadSpecError("a schedule cannot be silent in every phase")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _locate(self, t_ns: int) -> Tuple[RatePhase, int]:
        """The phase covering *t_ns* and the offset into it."""
        if t_ns >= self.total_duration_ns:
            if not self.repeat:
                last = self.phases[-1]
                return last, last.duration_ns
            t_ns %= self.total_duration_ns
        start = 0
        for phase, boundary in zip(self.phases, self._boundaries):
            if t_ns < boundary:
                return phase, t_ns - start
            start = boundary
        last = self.phases[-1]
        return last, last.duration_ns

    def rate_at(self, t_ns: int) -> float:
        """Offered rate (Gbps) at elapsed time *t_ns* since traffic start."""
        phase, offset = self._locate(t_ns)
        return phase.rate_at(offset)

    def next_transition(self, t_ns: int) -> Optional[int]:
        """The first phase boundary strictly after *t_ns* (None when past the end)."""
        if t_ns >= self.total_duration_ns:
            if not self.repeat:
                return None
            cycles = t_ns // self.total_duration_ns
            base = cycles * self.total_duration_ns
            return self.next_transition(t_ns - base) + base  # type: ignore[operator]
        for boundary in self._boundaries:
            if boundary > t_ns:
                return boundary
        return None

    def next_active(self, t_ns: int) -> Optional[int]:
        """Earliest time ≥ *t_ns* at which the rate is positive.

        Returns ``None`` when the schedule stays silent forever after
        *t_ns* (a non-repeating schedule ending in a zero-rate phase).
        """
        probe = t_ns
        for _ in range(2 * len(self.phases) + 2):
            if self.rate_at(probe) > 0:
                return probe
            if self.rate_at(probe + 1) > 0:
                # A ramp rising from exactly zero: positive immediately after.
                return probe + 1
            boundary = self.next_transition(probe)
            if boundary is None:
                return None
            probe = boundary
        return None

    def mean_gbps(self) -> float:
        """Time-averaged rate over one full pass of the profile."""
        weighted = sum(phase.mean_gbps() * phase.duration_ns for phase in self.phases)
        return weighted / self.total_duration_ns

    def gap_for_bits(self, t_ns: float, bits: float) -> Optional[float]:
        """Time from *t_ns* until the schedule has offered *bits* more bits.

        This is the exact pacing primitive: the returned gap ``g``
        satisfies ``∫ rate dt == bits`` over ``[t_ns, t_ns + g]`` (rate
        in Gbps is bits per nanosecond).  Quoting the *instantaneous*
        rate instead — ``bits / rate_at(t_ns)`` — freezes the pacer for
        nearly the whole phase when a ramp rises from (almost) zero, and
        sleeps blindly across phase boundaries; integrating is immune to
        both.  Returns ``None`` when the schedule goes silent forever
        before *bits* are offered (a non-repeating profile ending at
        rate zero).
        """
        if bits <= 0:
            return 0.0
        remaining = float(bits)
        cursor = float(t_ns)
        if self.repeat:
            # Fast-forward whole cycles so huge requests stay O(phases).
            cycle_bits = self.mean_gbps() * self.total_duration_ns
            local = cursor % self.total_duration_ns
            head = self._segment_bits(local, self.total_duration_ns - local)
            if remaining > head:
                cycles = int((remaining - head) // cycle_bits)
                remaining -= cycles * cycle_bits
                cursor += cycles * self.total_duration_ns
        for _ in range(2 * len(self.phases) + 2):
            if not self.repeat and cursor >= self.total_duration_ns:
                hold = self.phases[-1].end_gbps  # final rate holds forever
                if hold <= 0:
                    return None
                return cursor + remaining / hold - t_ns
            local = cursor % self.total_duration_ns if self.repeat else cursor
            phase, offset = self._locate(int(local))
            offset += local - int(local)  # keep the fractional part
            span = phase.duration_ns - offset
            r0 = phase.rate_at(offset)
            r1 = phase.rate_at(phase.duration_ns)
            slope = (phase.end_gbps - phase.start_gbps) / phase.duration_ns
            capacity = (r0 + r1) * span / 2.0
            if capacity >= remaining:
                if slope == 0:
                    gap = remaining / r0
                else:
                    # Solve r0*g + slope*g^2/2 == remaining (first root).
                    gap = (
                        math.sqrt(max(r0 * r0 + 2.0 * slope * remaining, 0.0)) - r0
                    ) / slope
                return cursor + gap - t_ns
            remaining -= capacity
            cursor += span
        return None

    def _segment_bits(self, t_ns: float, span_ns: float) -> float:
        """Bits offered over ``[t_ns, t_ns + span_ns]`` within one cycle."""
        total = 0.0
        cursor = t_ns
        end = t_ns + span_ns
        while cursor < end:
            phase, offset = self._locate(int(cursor))
            offset += cursor - int(cursor)
            piece = min(phase.duration_ns - offset, end - cursor)
            if piece <= 0:
                break
            total += (phase.rate_at(offset) + phase.rate_at(offset + piece)) / 2.0 * piece
            cursor += piece
        return total

    def peak_gbps(self) -> float:
        """Highest instantaneous rate anywhere in the profile."""
        return max(max(phase.start_gbps, phase.end_gbps) for phase in self.phases)

    def scaled(self, factor: float) -> "TraceSchedule":
        """A copy with every rate multiplied by *factor* (shape preserved)."""
        if factor <= 0:
            raise WorkloadSpecError("scale factor must be positive")
        return TraceSchedule(
            [
                RatePhase(
                    duration_ns=phase.duration_ns,
                    start_gbps=phase.start_gbps * factor,
                    end_gbps=phase.end_gbps * factor,
                )
                for phase in self.phases
            ],
            repeat=self.repeat,
        )

    def with_mean(self, mean_gbps: float) -> "TraceSchedule":
        """A copy rescaled so the time-averaged rate equals *mean_gbps*."""
        current = self.mean_gbps()
        if current <= 0:
            raise WorkloadSpecError("cannot rescale an all-silent schedule")
        return self.scaled(mean_gbps / current)

    def describe(self) -> List[str]:
        """Human-readable phase summary (used by ``repro workload describe``)."""
        lines = []
        for index, phase in enumerate(self.phases):
            span_us = phase.duration_ns / 1_000.0
            if phase.start_gbps == phase.end_gbps:
                shape = f"{phase.start_gbps:g} Gbps"
            else:
                shape = f"{phase.start_gbps:g} -> {phase.end_gbps:g} Gbps"
            lines.append(f"phase {index}: {shape} for {span_us:g} us")
        if self.repeat:
            lines.append("(repeats)")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceSchedule({len(self.phases)} phases, "
            f"mean={self.mean_gbps():.2f} Gbps, repeat={self.repeat})"
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def constant(cls, rate_gbps: float, duration_ns: int = 1_000_000_000) -> "TraceSchedule":
        """A flat profile (equivalent to the legacy constant-rate path)."""
        return cls([RatePhase(duration_ns, rate_gbps, rate_gbps)])

    @classmethod
    def ramp(cls, start_gbps: float, end_gbps: float, duration_ns: int) -> "TraceSchedule":
        """Linear ramp from *start_gbps* to *end_gbps*; holds the end rate after."""
        return cls([RatePhase(duration_ns, start_gbps, end_gbps)])

    @classmethod
    def steps(cls, steps: Sequence[Tuple[int, float]], repeat: bool = False) -> "TraceSchedule":
        """Piecewise-constant profile from ``(duration_ns, rate_gbps)`` pairs."""
        return cls(
            [RatePhase(duration_ns, rate, rate) for duration_ns, rate in steps],
            repeat=repeat,
        )

    @classmethod
    def diurnal(
        cls,
        low_gbps: float,
        high_gbps: float,
        period_ns: int,
        segments: int = 8,
    ) -> "TraceSchedule":
        """A repeating sinusoid-like day/night cycle discretized into ramps."""
        if segments < 2:
            raise WorkloadSpecError("diurnal schedules need at least 2 segments")
        if low_gbps > high_gbps:
            raise WorkloadSpecError("low_gbps must not exceed high_gbps")
        mid = (low_gbps + high_gbps) / 2.0
        amplitude = (high_gbps - low_gbps) / 2.0
        span = period_ns // segments
        if span <= 0:
            raise WorkloadSpecError("period_ns too short for the segment count")
        phases = []
        for index in range(segments):
            theta0 = 2.0 * math.pi * index / segments
            theta1 = 2.0 * math.pi * (index + 1) / segments
            phases.append(
                RatePhase(
                    duration_ns=span,
                    start_gbps=mid - amplitude * math.cos(theta0),
                    end_gbps=mid - amplitude * math.cos(theta1),
                )
            )
        return cls(phases, repeat=True)
