"""Generative traffic models, time-varying schedules and PCAP replay.

This package is the layer between the traffic primitives
(:mod:`repro.traffic`) and the experiments: it composes arrival
processes, flow-population models, frame-size laws and offered-load
schedules into named workloads that the simulator, the campaign
orchestrator and the ``repro workload`` CLI all consume.
"""

from repro.errors import WorkloadSpecError
from repro.workloads.arrivals import (
    ArrivalModel,
    IncastArrivals,
    MMPPArrivals,
    PoissonArrivals,
    UniformArrivals,
)
from repro.workloads.base import TrafficModel, WorkloadSpec, derived_rng
from repro.workloads.flowmodels import (
    ChurnFlows,
    FlowModel,
    HeavyTailFlows,
    RoundRobinFlows,
)
from repro.workloads.generative import GenerativePacketSource, GenerativeWorkload
from repro.workloads.registry import (
    WORKLOAD_REGISTRY,
    get_workload,
    register_workload,
    workload_names,
)
from repro.workloads.replay import PcapReplayWorkload, synthetic_enterprise_capture
from repro.workloads.schedule import RatePhase, TraceSchedule
from repro.workloads.transport import (
    ClosedLoopFlows,
    ClosedLoopTransport,
    ClosedLoopWorkload,
)
from repro.workloads.stats import (
    SMALL_FRAME_THRESHOLD_BYTES,
    TracedPacket,
    WorkloadSummary,
    summarize,
)

__all__ = [
    "ArrivalModel",
    "ChurnFlows",
    "ClosedLoopFlows",
    "ClosedLoopTransport",
    "ClosedLoopWorkload",
    "FlowModel",
    "GenerativePacketSource",
    "GenerativeWorkload",
    "HeavyTailFlows",
    "IncastArrivals",
    "MMPPArrivals",
    "PcapReplayWorkload",
    "PoissonArrivals",
    "RatePhase",
    "RoundRobinFlows",
    "SMALL_FRAME_THRESHOLD_BYTES",
    "TraceSchedule",
    "TracedPacket",
    "TrafficModel",
    "UniformArrivals",
    "WORKLOAD_REGISTRY",
    "WorkloadSpec",
    "WorkloadSpecError",
    "WorkloadSummary",
    "derived_rng",
    "get_workload",
    "register_workload",
    "summarize",
    "synthetic_enterprise_capture",
    "workload_names",
]
