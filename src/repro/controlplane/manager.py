"""Runtime controller for a PayloadPark deployment.

The controller is the control-plane counterpart of
:class:`~repro.core.program.PayloadParkProgram`: it reads the dataplane
counters and lookup-table occupancy, installs L2 forwarding entries, and
implements the adaptive eviction policy the paper leaves as future work
(§7): start with an aggressive expiry threshold for memory efficiency
and back off to a conservative one when premature evictions appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.program import PayloadParkProgram


class PayloadParkController:
    """Reads state from, and pushes configuration to, a running program."""

    def __init__(self, program: PayloadParkProgram) -> None:
        self.program = program

    # ------------------------------------------------------------------ #
    # Monitoring
    # ------------------------------------------------------------------ #

    def counters(self, binding: Optional[str] = None) -> Dict[str, int]:
        """The eight monitoring counters (§5) for one binding or the aggregate."""
        return self.program.counters_for(binding).as_dict()

    def occupancy(self) -> Dict[str, float]:
        """Occupied fraction of every binding's lookup table."""
        return {
            name: table.occupancy_fraction()
            for name, table in self.program.lookup_tables.items()
        }

    def memory_report(self) -> Dict[str, int]:
        """SRAM bytes consumed by every binding's lookup table."""
        return {
            name: table.sram_bytes() for name, table in self.program.lookup_tables.items()
        }

    def health(self) -> Dict[str, bool]:
        """Per-binding functional-equivalence health: zero premature evictions."""
        return {
            name: self.program.counters_for(name).premature_evictions == 0
            for name in self.program.lookup_tables
        }

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #

    def install_l2_route(self, mac: str, port: int) -> None:
        """Install a destination-MAC forwarding entry."""
        self.program.add_l2_entry(mac, port)

    def set_expiry_threshold(self, threshold: int) -> None:
        """Change the eviction expiry threshold for subsequent Splits."""
        if threshold < 1:
            raise ValueError("expiry threshold must be at least 1")
        self.program.config.expiry_threshold = threshold

    @property
    def expiry_threshold(self) -> int:
        """The currently configured expiry threshold."""
        return self.program.config.expiry_threshold

    def reset(self) -> None:
        """Clear dataplane state (tables, taggers, counters)."""
        self.program.reset_state()


@dataclass
class AdaptiveEvictionPolicy:
    """The adaptive eviction policy sketched in §7.

    The policy starts aggressive (low threshold, best memory efficiency)
    and becomes more conservative whenever new premature evictions are
    observed during a control interval; after enough clean intervals it
    steps back toward the aggressive setting.

    Attributes
    ----------
    controller:
        The deployment to manage.
    aggressive_threshold / conservative_threshold:
        Bounds of the expiry threshold.
    eviction_tolerance:
        Premature evictions tolerated per interval before backing off.
    recovery_intervals:
        Consecutive clean intervals required before stepping back down.
    """

    controller: PayloadParkController
    aggressive_threshold: int = 1
    conservative_threshold: int = 10
    eviction_tolerance: int = 0
    recovery_intervals: int = 3
    _last_premature: int = field(default=0, init=False)
    _clean_streak: int = field(default=0, init=False)
    history: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.aggressive_threshold < 1:
            raise ValueError("aggressive_threshold must be at least 1")
        if self.conservative_threshold < self.aggressive_threshold:
            raise ValueError("conservative_threshold must be >= aggressive_threshold")
        self.controller.set_expiry_threshold(self.aggressive_threshold)

    def observe(self) -> int:
        """Run one control interval; return the threshold now in effect.

        Call periodically (e.g. once per polling interval).  New premature
        evictions since the last call push the threshold up one step;
        ``recovery_intervals`` consecutive clean calls pull it down one.
        """
        premature = self.controller.counters()["premature_evictions"]
        new_evictions = premature - self._last_premature
        self._last_premature = premature
        threshold = self.controller.expiry_threshold

        if new_evictions > self.eviction_tolerance:
            threshold = min(threshold + 1, self.conservative_threshold)
            self._clean_streak = 0
        else:
            self._clean_streak += 1
            if self._clean_streak >= self.recovery_intervals:
                threshold = max(threshold - 1, self.aggressive_threshold)
                self._clean_streak = 0

        self.controller.set_expiry_threshold(threshold)
        self.history.append(threshold)
        return threshold
