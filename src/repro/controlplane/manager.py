"""Runtime controller for a PayloadPark deployment.

The controller is the control-plane counterpart of
:class:`~repro.core.program.PayloadParkProgram`: it reads the dataplane
counters and lookup-table occupancy, installs L2 forwarding entries, and
implements the adaptive eviction policy the paper leaves as future work
(§7): start with an aggressive expiry threshold for memory efficiency
and back off to a conservative one when premature evictions appear.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.program import PayloadParkProgram


class PayloadParkController:
    """Reads state from, and pushes configuration to, a running program."""

    def __init__(self, program: PayloadParkProgram) -> None:
        self.program = program

    # ------------------------------------------------------------------ #
    # Monitoring
    # ------------------------------------------------------------------ #

    def counters(self, binding: Optional[str] = None) -> Dict[str, int]:
        """The eight monitoring counters (§5) for one binding or the aggregate."""
        return self.program.counters_for(binding).as_dict()

    def occupancy(self) -> Dict[str, float]:
        """Occupied fraction of every binding's lookup table."""
        return {
            name: table.occupancy_fraction()
            for name, table in self.program.lookup_tables.items()
        }

    def memory_report(self) -> Dict[str, int]:
        """SRAM bytes consumed by every binding's lookup table."""
        return {
            name: table.sram_bytes() for name, table in self.program.lookup_tables.items()
        }

    def health(self) -> Dict[str, bool]:
        """Per-binding functional-equivalence health: zero premature evictions."""
        return {
            name: self.program.counters_for(name).premature_evictions == 0
            for name in self.program.lookup_tables
        }

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #

    def install_l2_route(self, mac: str, port: int) -> None:
        """Install a destination-MAC forwarding entry."""
        self.program.add_l2_entry(mac, port)

    def set_expiry_threshold(self, threshold: int) -> None:
        """Change the eviction expiry threshold for subsequent Splits."""
        if threshold < 1:
            raise ValueError("expiry threshold must be at least 1")
        self.program.config.expiry_threshold = threshold

    @property
    def expiry_threshold(self) -> int:
        """The currently configured expiry threshold."""
        return self.program.config.expiry_threshold

    def reset(self) -> None:
        """Clear dataplane state (tables, taggers, counters)."""
        self.program.reset_state()


class ControlPlaneManager:
    """Operator-level manager for one *running* deployment.

    Where :class:`PayloadParkController` manages the switch program
    alone, the manager spans the whole testbed — program *and* topology
    — which is what mid-run reconfiguration needs: draining parked
    payloads must invalidate fast-path caches, and resetting between
    back-to-back runs on a shared topology must clear the link counters
    too, not just the program state.  The fault-injection subsystem
    (:mod:`repro.faults`) drives every reconfiguration through this
    class, and works against the baseline program as well (PayloadPark-
    only operations degrade to no-ops there).
    """

    def __init__(self, program: Any, topology: Any = None) -> None:
        self.program = program
        self.topology = topology
        self.controller: Optional[PayloadParkController] = (
            PayloadParkController(program)
            if isinstance(program, PayloadParkProgram)
            else None
        )
        #: Flight-recorder hook (repro.obs): drain operations close the
        #: affected park spans with the ``drained`` outcome.
        self.obs_recorder = None

    @property
    def is_payloadpark(self) -> bool:
        """True when the managed program parks payloads."""
        return self.controller is not None

    # ------------------------------------------------------------------ #
    # Topology access
    # ------------------------------------------------------------------ #

    def links(self) -> List[Any]:
        """Every link in the managed topology (empty without a topology)."""
        if self.topology is None:
            return []
        found = []
        for attachment in self.topology.attachments:
            found.extend(attachment.gen_links)
            found.append(attachment.server_link)
        return found

    # ------------------------------------------------------------------ #
    # Reconfiguration
    # ------------------------------------------------------------------ #

    def set_expiry_threshold(self, threshold: int) -> bool:
        """Change the eviction expiry threshold mid-run.

        Returns False (no-op) for the baseline program, which has no
        eviction machinery.
        """
        if self.controller is None:
            return False
        self.controller.set_expiry_threshold(threshold)
        return True

    def drain_parked(
        self, binding: Optional[str] = None, fraction: float = 1.0
    ) -> Dict[str, int]:
        """Reclaim occupied parking slots, accounting each as an eviction.

        Drains the first ``ceil(occupied * fraction)`` occupied slots of
        every targeted binding (deterministic order — index order — so
        runs reproduce exactly).  Each drained payload increments the
        binding's ``evictions`` counter, exactly as the expiry policy
        would: the dataplane identity *outstanding == occupied* keeps
        holding, and the packet whose payload was drained registers a
        premature eviction when its header returns for the Merge.
        Returns drained-slot counts per binding; empty for the baseline.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"drain fraction must lie in (0, 1], got {fraction}")
        if self.controller is None:
            return {}
        program = self.program
        drained: Dict[str, int] = {}
        for name, table in program.lookup_tables.items():
            if binding is not None and name != binding:
                continue
            occupied = table.occupied_indices()
            take = math.ceil(len(occupied) * fraction)
            count = 0
            recorder = self.obs_recorder
            for index in occupied[:take]:
                if table.drain_slot(index):
                    program.counters_for(name).evictions += 1
                    count += 1
                    if recorder is not None:
                        recorder.slot_drained(name, index)
            drained[name] = count
        program.invalidate_fast_path()
        return drained

    def reset(self) -> None:
        """Reset the deployment between runs: program state *and* testbed counters.

        Clears the program's tables/taggers/counters (PayloadPark) or
        memoized decisions (baseline), and zeroes every link's counters —
        drop/occupancy statistics must not leak into the next run on a
        shared topology.
        """
        if self.controller is not None:
            self.controller.reset()
        else:
            self.program.invalidate_fast_path()
            self.program.asic.reset_counters()
        for link in self.links():
            link.reset_stats()


@dataclass
class AdaptiveEvictionPolicy:
    """The adaptive eviction policy sketched in §7.

    The policy starts aggressive (low threshold, best memory efficiency)
    and becomes more conservative whenever new premature evictions are
    observed during a control interval; after enough clean intervals it
    steps back toward the aggressive setting.

    Attributes
    ----------
    controller:
        The deployment to manage.
    aggressive_threshold / conservative_threshold:
        Bounds of the expiry threshold.
    eviction_tolerance:
        Premature evictions tolerated per interval before backing off.
    recovery_intervals:
        Consecutive clean intervals required before stepping back down.
    """

    controller: PayloadParkController
    aggressive_threshold: int = 1
    conservative_threshold: int = 10
    eviction_tolerance: int = 0
    recovery_intervals: int = 3
    _last_premature: int = field(default=0, init=False)
    _clean_streak: int = field(default=0, init=False)
    history: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.aggressive_threshold < 1:
            raise ValueError("aggressive_threshold must be at least 1")
        if self.conservative_threshold < self.aggressive_threshold:
            raise ValueError("conservative_threshold must be >= aggressive_threshold")
        self.controller.set_expiry_threshold(self.aggressive_threshold)

    def observe(self) -> int:
        """Run one control interval; return the threshold now in effect.

        Call periodically (e.g. once per polling interval).  New premature
        evictions since the last call push the threshold up one step;
        ``recovery_intervals`` consecutive clean calls pull it down one.
        """
        premature = self.controller.counters()["premature_evictions"]
        new_evictions = premature - self._last_premature
        self._last_premature = premature
        threshold = self.controller.expiry_threshold

        if new_evictions > self.eviction_tolerance:
            threshold = min(threshold + 1, self.conservative_threshold)
            self._clean_streak = 0
        else:
            self._clean_streak += 1
            if self._clean_streak >= self.recovery_intervals:
                threshold = max(threshold - 1, self.aggressive_threshold)
                self._clean_streak = 0

        self.controller.set_expiry_threshold(threshold)
        self.history.append(threshold)
        return threshold
