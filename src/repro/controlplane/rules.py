"""Deployment specifications: declarative NF chain and rule-set descriptions.

Cloud providers describe an NF deployment (which NFs, in what order,
with which rule sets) in configuration rather than code; this module
turns such a description into the concrete NF objects of
:mod:`repro.nf`, so experiments and examples can be driven from plain
dictionaries (or JSON/YAML parsed into them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.nf.chain import NfChain
from repro.nf.firewall import Firewall, FirewallRule
from repro.nf.loadbalancer import Backend, MaglevLoadBalancer
from repro.nf.macswap import MacSwapper
from repro.nf.nat import Nat
from repro.nf.synthetic import SyntheticNf


@dataclass
class DeploymentSpec:
    """A declarative description of one NF-server deployment.

    Attributes
    ----------
    name:
        Deployment name.
    chain:
        A list of NF descriptions.  Each entry is a dict with a ``type``
        key (``firewall``, ``nat``, ``loadbalancer``, ``macswap`` or
        ``synthetic``) and type-specific parameters, e.g.::

            {"type": "firewall", "blacklist": ["192.168.0.0/16"]}
            {"type": "nat", "external_ip": "203.0.113.1"}
            {"type": "loadbalancer", "backends": {"web-1": "10.100.0.1"}}
            {"type": "synthetic", "cycles": 300}
    """

    name: str
    chain: List[Dict[str, Any]] = field(default_factory=list)

    def build(self) -> NfChain:
        """Materialize the NF chain described by this spec."""
        return build_chain(self.chain, name=self.name)


def build_chain(descriptions: List[Dict[str, Any]], name: str = "chain") -> NfChain:
    """Build an :class:`NfChain` from a list of NF descriptions."""
    if not descriptions:
        raise ValueError("a deployment needs at least one NF")
    nfs = [_build_nf(description) for description in descriptions]
    return NfChain(nfs, name=name)


def _build_nf(description: Dict[str, Any]):
    kind = description.get("type")
    if kind == "firewall":
        rules = [FirewallRule.blacklist(cidr) for cidr in description.get("blacklist", [])]
        if "rule_count" in description:
            return Firewall.with_rule_count(int(description["rule_count"]))
        return Firewall(rules=rules)
    if kind == "nat":
        return Nat(external_ip=description.get("external_ip", "203.0.113.1"))
    if kind == "loadbalancer":
        backends_spec = description.get("backends", {})
        if isinstance(backends_spec, int):
            return MaglevLoadBalancer.with_backend_count(backends_spec)
        backends = [Backend.from_string(name, ip) for name, ip in backends_spec.items()]
        return MaglevLoadBalancer(backends=backends)
    if kind == "macswap":
        return MacSwapper()
    if kind == "synthetic":
        return SyntheticNf(int(description["cycles"]))
    raise ValueError(f"unknown NF type {kind!r}")
