"""Control plane: runtime management of a PayloadPark deployment.

The paper's prototype is managed through switch configuration (which
ports are PayloadPark-enabled, how much memory is reserved and how it is
sliced) and monitored through its eight dataplane counters; §7 sketches
an *adaptive payload eviction policy* driven by the premature-eviction
counter as future work.  This subpackage provides that management layer:
a controller that reads runtime state off a running program, installs
forwarding entries and NF rule sets, and an implementation of the
adaptive eviction-policy controller the paper proposes.
"""

from repro.controlplane.manager import (
    AdaptiveEvictionPolicy,
    ControlPlaneManager,
    PayloadParkController,
)
from repro.controlplane.rules import DeploymentSpec, build_chain

__all__ = [
    "ControlPlaneManager",
    "PayloadParkController",
    "AdaptiveEvictionPolicy",
    "DeploymentSpec",
    "build_chain",
]
