"""Programmable parser and deparser.

The parser turns the wire frame into PHV containers according to the
program's header definitions; the deparser reassembles the frame from the
(possibly modified) containers.  In the simulator packets already travel
in parsed form (:class:`~repro.packet.packet.Packet`), so the default
parser simply wraps the packet in a :class:`PipelinePacket` and the
default deparser is a no-op; programs supply hooks to do protocol-
specific work, e.g. PayloadPark's parser recognizes its custom header on
packets coming back from the NF server.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.packet.packet import Packet
from repro.switchsim.context import PipelinePacket

ParseHook = Callable[[PipelinePacket], None]
DeparseHook = Callable[[PipelinePacket], None]


class Parser:
    """Builds the per-packet pipeline context, then runs the program hook."""

    def __init__(self, hook: Optional[ParseHook] = None) -> None:
        self.hook = hook
        self.parsed_packets = 0

    def parse(self, packet: Packet, ingress_port: int) -> PipelinePacket:
        """Create a :class:`PipelinePacket` for *packet* and apply the hook."""
        ctx = PipelinePacket(packet=packet, ingress_port=ingress_port)
        self.parsed_packets += 1
        if self.hook is not None:
            self.hook(ctx)
        return ctx

    def reparse(self, ctx: PipelinePacket) -> PipelinePacket:
        """Re-run the parse hook for a recirculated packet."""
        ctx.reset_pass_state()
        self.parsed_packets += 1
        if self.hook is not None:
            self.hook(ctx)
        return ctx


class Deparser:
    """Finalizes the packet after the last stage of a pass."""

    def __init__(self, hook: Optional[DeparseHook] = None) -> None:
        self.hook = hook
        self.deparsed_packets = 0

    def deparse(self, ctx: PipelinePacket) -> PipelinePacket:
        """Apply the program's deparse hook (header reassembly)."""
        self.deparsed_packets += 1
        if self.hook is not None:
            self.hook(ctx)
        return ctx
