"""The match-action pipeline: an ordered list of stages."""

from __future__ import annotations

from typing import List, Optional

from repro.switchsim.context import PipelinePacket
from repro.switchsim.resources import ResourceBudget
from repro.switchsim.stage import Stage


class Pipeline:
    """An ordered sequence of match-action stages.

    The number of stages is fixed at construction, mirroring hardware
    (Tofino-class chips have 12 per pipe).  Programs ask for a stage by
    index and install tables / register arrays into it; requesting a
    stage beyond the last one is an error — exactly the constraint that
    forces PayloadPark to recirculate when it wants to park more than
    160 bytes.
    """

    def __init__(self, stage_count: int = 12, budget: Optional[ResourceBudget] = None) -> None:
        if stage_count <= 0:
            raise ValueError("a pipeline needs at least one stage")
        self.stage_count = stage_count
        self.budget = budget or ResourceBudget()
        self.stages: List[Stage] = [Stage(i, budget=self.budget) for i in range(stage_count)]

    def stage(self, index: int) -> Stage:
        """Return stage *index* (0-based)."""
        if not 0 <= index < self.stage_count:
            raise IndexError(
                f"stage {index} does not exist; this pipeline has {self.stage_count} stages"
            )
        return self.stages[index]

    def process(self, ctx: PipelinePacket) -> PipelinePacket:
        """Run the packet through every stage in order (a single pass)."""
        for stage in self.stages:
            if ctx.dropped:
                break
            stage.apply(ctx)
        return ctx

    def sram_bytes_used(self) -> int:
        """Total SRAM bytes allocated across all stages."""
        return sum(stage.resources.sram_bytes_used for stage in self.stages)

    def sram_bytes_capacity(self) -> int:
        """Total SRAM byte capacity across all stages."""
        return sum(stage.resources.budget.sram_bytes for stage in self.stages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pipeline(stages={self.stage_count})"
