"""The match-action pipeline: an ordered list of stages."""

from __future__ import annotations

from typing import List, Optional

from repro.switchsim.context import PipelinePacket
from repro.switchsim.resources import ResourceBudget
from repro.switchsim.stage import Stage


class Pipeline:
    """An ordered sequence of match-action stages.

    The number of stages is fixed at construction, mirroring hardware
    (Tofino-class chips have 12 per pipe).  Programs ask for a stage by
    index and install tables / register arrays into it; requesting a
    stage beyond the last one is an error — exactly the constraint that
    forces PayloadPark to recirculate when it wants to park more than
    160 bytes.
    """

    def __init__(self, stage_count: int = 12, budget: Optional[ResourceBudget] = None) -> None:
        if stage_count <= 0:
            raise ValueError("a pipeline needs at least one stage")
        self.stage_count = stage_count
        self.budget = budget or ResourceBudget()
        self.stages: List[Stage] = [Stage(i, budget=self.budget) for i in range(stage_count)]
        #: Bumped whenever a stage gains a table; decision caches compare
        #: it so control-plane table installs invalidate stale entries.
        self.version = 0
        self._compiled = None
        self._compiled_by_port = {}
        for stage in self.stages:
            stage.on_change = self._invalidate_compiled

    def _invalidate_compiled(self) -> None:
        self.version += 1
        self._compiled = None
        self._compiled_by_port = {}

    def stage(self, index: int) -> Stage:
        """Return stage *index* (0-based)."""
        if not 0 <= index < self.stage_count:
            raise IndexError(
                f"stage {index} does not exist; this pipeline has {self.stage_count} stages"
            )
        return self.stages[index]

    def process(self, ctx: PipelinePacket) -> PipelinePacket:
        """Run the packet through every stage in order (a single pass)."""
        for stage in self.stages:
            if ctx.dropped:
                break
            stage.apply(ctx)
        return ctx

    # ------------------------------------------------------------------ #
    # Fast path
    # ------------------------------------------------------------------ #

    def compiled_tables(self):
        """Tables of every stage flattened into one ordered walk list.

        Each entry is ``(table, ingress_ports, match, action)``.  The
        list is rebuilt lazily whenever a table is installed (see
        ``version``); empty stages disappear from the walk entirely.
        """
        compiled = self._compiled
        if compiled is None:
            compiled = [
                (table, table.ingress_ports, table.match, table.action)
                for stage in self.stages
                for table in stage.tables
            ]
            self._compiled = compiled
            self._compiled_by_port = {}
        return compiled

    def _compile_for_port(self, port: int):
        """Specialize the walk for one ingress port.

        Entries are ``(mode, table, match, action)`` in stage order:
        ``mode`` 0 = gated off by ``ingress_ports`` (record a miss, skip
        the predicate — the result the predicate would produce, per the
        MatchActionTable contract); 1 = evaluate the predicate; 2 = the
        port gate alone implies a hit, run the action directly.
        """
        entries = []
        for table, ports, match, action in self.compiled_tables():
            if ports is not None and port not in ports:
                entries.append((0, table, match, action))
            elif match is None or (ports is not None and table.port_implies_match):
                entries.append((2, table, match, action))
            else:
                entries.append((1, table, match, action))
        self._compiled_by_port[port] = entries
        return entries

    def process_fast(self, ctx: PipelinePacket) -> PipelinePacket:
        """One pass over the port-specialized table list (fast path).

        Semantically identical to :meth:`process`: the same tables run
        in the same order with the same hit/miss accounting, but the
        per-stage loop, the port gates and port-implied matches are
        resolved at compile time instead of per packet.
        """
        self.compiled_tables()  # ensures the port cache is current
        entries = self._compiled_by_port.get(ctx.ingress_port)
        if entries is None:
            entries = self._compile_for_port(ctx.ingress_port)
        for mode, table, match, action in entries:
            if ctx.dropped:
                break
            if mode == 0:
                table.miss_count += 1
            elif mode == 2 or match(ctx):
                action(ctx)
                table.hit_count += 1
            else:
                table.miss_count += 1
        return ctx

    def sram_bytes_used(self) -> int:
        """Total SRAM bytes allocated across all stages."""
        return sum(stage.resources.sram_bytes_used for stage in self.stages)

    def sram_bytes_capacity(self) -> int:
        """Total SRAM byte capacity across all stages."""
        return sum(stage.resources.budget.sram_bytes for stage in self.stages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pipeline(stages={self.stage_count})"
