"""Per-packet pipeline context (the simulator's PHV + intrinsic metadata).

On an RMT switch, the parser turns the packet into a Packet Header Vector
(PHV) whose fields and user-defined metadata flow through the
match-action stages.  In the simulator the parsed :class:`~repro.packet.packet.Packet`
object plays the role of the header portion of the PHV, and
:class:`PipelinePacket` carries it together with the user metadata struct
(``meta``), intrinsic metadata (ingress port, egress decision, drop flag)
and per-pass bookkeeping such as the register-access guard.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.packet.packet import Packet

#: ``slots=True`` trims per-packet context allocation, but only exists
#: from Python 3.10; older interpreters fall back to normal dataclasses.
_DATACLASS_OPTIONS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(**_DATACLASS_OPTIONS)
class PipelinePacket:
    """A packet travelling through one pass of a switch pipe.

    Attributes
    ----------
    packet:
        The parsed packet (headers + payload).
    ingress_port:
        Chip-level port the packet arrived on.
    meta:
        User-defined metadata fields, equivalent to the ``meta`` struct
        in the paper's pseudo-code (e.g. ``meta.tbl_idx``, ``meta.clk``).
    egress_port:
        Egress decision, or ``None`` if no table has routed the packet yet.
    dropped / drop_reason:
        Set when an action drops the packet.
    recirculations:
        Number of times the packet has been sent back through the parser.
    recirculate_requested:
        Set by an action to request another pass; cleared by the pipe.
    register_reads / register_writes:
        Per-pass access counts keyed by register-array name, used to
        enforce the one-stateful-access-per-array-per-pass restriction.
        Allocated lazily by the access guard (``None`` until the first
        guarded access), since the fast path disables the guard and a
        context is created per packet per pass.
    """

    packet: Packet
    ingress_port: int
    meta: Dict[str, int] = field(default_factory=dict)
    egress_port: Optional[int] = None
    dropped: bool = False
    drop_reason: str = ""
    recirculations: int = 0
    recirculate_requested: bool = False
    register_reads: Optional[Dict[str, int]] = None
    register_writes: Optional[Dict[str, int]] = None

    def drop(self, reason: str) -> None:
        """Mark the packet as dropped with a reason for the counters."""
        self.dropped = True
        self.drop_reason = reason

    def forward_to(self, port: int) -> None:
        """Set the egress port decision."""
        self.egress_port = port

    def request_recirculation(self) -> None:
        """Ask the pipe to run the packet through the pipeline again."""
        self.recirculate_requested = True

    def reset_pass_state(self) -> None:
        """Clear per-pass bookkeeping before a recirculation pass."""
        if self.register_reads is not None:
            self.register_reads.clear()
        if self.register_writes is not None:
            self.register_writes.clear()
        self.recirculate_requested = False
