"""Match-action tables.

A MAT pairs a match predicate (gate) with an action.  In P4 the match is
expressed over PHV fields through an exact or ternary crossbar; here the
predicate is a Python callable over the :class:`PipelinePacket`, and the
table declares how many crossbar bits, VLIW slots and match entries it
would consume so resource accounting stays faithful.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.switchsim.context import PipelinePacket

MatchFn = Callable[[PipelinePacket], bool]
ActionFn = Callable[[PipelinePacket], None]


class MatchActionTable:
    """One match-action table.

    Parameters
    ----------
    name:
        Table name (unique within a program, used in reports).
    match:
        Predicate deciding whether the action runs for a packet.  ``None``
        means "always run" (an unconditional table).
    action:
        Callable applied to matching packets.
    match_bits:
        Width of the match key in bits (consumes crossbar input bits).
    ternary:
        Whether the match uses the ternary (TCAM) crossbar.
    entries:
        Number of match entries the table is provisioned for; exact-match
        entries consume stage SRAM, ternary entries consume TCAM.
    entry_bytes:
        SRAM bytes per exact-match entry (key + action data + overhead).
    vliw_slots:
        VLIW action slots the action consumes.
    ingress_ports:
        Optional fast-path gate: the set of ingress ports on which this
        table can possibly match.  The contract is ``match(ctx) is True
        implies ctx.ingress_port in ingress_ports`` — the compiled
        pipeline walk then skips the (potentially expensive) match
        predicate for packets from other ports and records a miss, which
        is exactly what the predicate would have returned.  ``None``
        disables the gate.
    port_implies_match:
        Declares that the match predicate tests *only* membership of the
        ingress port in ``ingress_ports``, so a packet that passes the
        port gate is guaranteed to match.  The compiled walk then runs
        the action directly.
    stateful:
        Whether the table's match/action read or write per-packet
        mutable switch state (register arrays, lookup tables, metadata
        carried between packets).  Only programs composed entirely of
        stateless tables are eligible for the program-level decision
        cache (see :class:`~repro.core.program.SwitchProgram`).
    """

    def __init__(
        self,
        name: str,
        action: ActionFn,
        match: Optional[MatchFn] = None,
        match_bits: int = 16,
        ternary: bool = False,
        entries: int = 1,
        entry_bytes: int = 16,
        vliw_slots: int = 1,
        ingress_ports: Optional[frozenset] = None,
        stateful: bool = True,
        port_implies_match: bool = False,
    ) -> None:
        self.name = name
        self.match = match
        self.action = action
        self.match_bits = match_bits
        self.ternary = ternary
        self.entries = entries
        self.entry_bytes = entry_bytes
        self.vliw_slots = vliw_slots
        self.ingress_ports = ingress_ports
        self.stateful = stateful
        self.port_implies_match = port_implies_match
        self.hit_count = 0
        self.miss_count = 0

    def apply(self, ctx: PipelinePacket) -> bool:
        """Run the table on *ctx*; return True if the action executed."""
        if ctx.dropped:
            return False
        if self.match is None or self.match(ctx):
            self.action(ctx)
            self.hit_count += 1
            return True
        self.miss_count += 1
        return False

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (control plane)."""
        self.hit_count = 0
        self.miss_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatchActionTable(name={self.name!r}, entries={self.entries})"
