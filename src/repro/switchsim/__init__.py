"""RMT switch simulator substrate.

The paper's prototype runs on a Barefoot Tofino: a Reconfigurable
Match-Action Table (RMT) ASIC whose pipeline is a fixed sequence of
stages, each with local SRAM (register arrays for stateful memory), TCAM,
VLIW action slots, and match crossbars, fed by a programmable parser and
drained by a deparser.  This subpackage models that architecture closely
enough that the PayloadPark program in :mod:`repro.core` can be expressed
as match-action tables and register arrays subject to the same
restrictions as the hardware:

* one stateful (register) access per register array per packet pass,
* a bounded number of stages per pipe,
* per-stage SRAM / TCAM / VLIW / crossbar budgets,
* per-pipe isolation of stateful memory (ports only see their pipe), and
* recirculation as the only way to get more stages per packet.
"""

from repro.switchsim.asic import AsicConfig, TofinoAsic
from repro.switchsim.context import PipelinePacket
from repro.switchsim.mat import MatchActionTable
from repro.switchsim.parser import Deparser, Parser
from repro.switchsim.pipe import Pipe
from repro.switchsim.pipeline import Pipeline
from repro.switchsim.registers import RegisterAccessError, RegisterArray
from repro.switchsim.resources import ResourceBudget, ResourceReport, StageResources
from repro.switchsim.stage import Stage

__all__ = [
    "TofinoAsic",
    "AsicConfig",
    "PipelinePacket",
    "MatchActionTable",
    "Parser",
    "Deparser",
    "Pipe",
    "Pipeline",
    "RegisterArray",
    "RegisterAccessError",
    "ResourceBudget",
    "ResourceReport",
    "StageResources",
    "Stage",
]
