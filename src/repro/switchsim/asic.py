"""The switch ASIC: pipes, ports and program installation.

Models a 6.4 Tbps Tofino-class chip: 64 front-panel ports at 100 Gbps,
divided into 4 groups of 16, each group served by its own pipe with
private compute and stateful-memory resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.packet.packet import Packet
from repro.switchsim.context import PipelinePacket
from repro.switchsim.pipe import Pipe
from repro.switchsim.resources import ResourceBudget


@dataclass(frozen=True)
class AsicConfig:
    """Dimensions of the simulated ASIC."""

    pipe_count: int = 4
    ports_per_pipe: int = 16
    stages_per_pipe: int = 12
    port_speed_gbps: float = 100.0
    recirculation_limit: int = 1
    budget: ResourceBudget = ResourceBudget()

    @property
    def port_count(self) -> int:
        """Total number of front-panel ports."""
        return self.pipe_count * self.ports_per_pipe


class TofinoAsic:
    """A programmable switch ASIC made of independent pipes."""

    def __init__(self, config: Optional[AsicConfig] = None) -> None:
        self.config = config or AsicConfig()
        self.pipes: List[Pipe] = [
            Pipe(
                index=i,
                stage_count=self.config.stages_per_pipe,
                budget=self.config.budget,
                recirculation_limit=self.config.recirculation_limit,
            )
            for i in range(self.config.pipe_count)
        ]
        self.processed_packets = 0
        self.dropped_packets = 0
        self.drop_reasons: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Port topology
    # ------------------------------------------------------------------ #

    def pipe_for_port(self, port: int) -> Pipe:
        """Return the pipe that owns front-panel *port*."""
        if not 0 <= port < self.config.port_count:
            raise ValueError(
                f"port {port} out of range; this ASIC has {self.config.port_count} ports"
            )
        return self.pipes[port // self.config.ports_per_pipe]

    def ports_of_pipe(self, pipe_index: int) -> List[int]:
        """Front-panel port numbers served by pipe *pipe_index*."""
        if not 0 <= pipe_index < self.config.pipe_count:
            raise ValueError(f"pipe {pipe_index} out of range")
        first = pipe_index * self.config.ports_per_pipe
        return list(range(first, first + self.config.ports_per_pipe))

    def same_pipe(self, port_a: int, port_b: int) -> bool:
        """True when both ports share a pipe (and hence stateful memory)."""
        return self.pipe_for_port(port_a) is self.pipe_for_port(port_b)

    # ------------------------------------------------------------------ #
    # Packet processing
    # ------------------------------------------------------------------ #

    def process(self, packet: Packet, ingress_port: int) -> PipelinePacket:
        """Run *packet* through the pipe owning *ingress_port*."""
        pipe = self.pipe_for_port(ingress_port)
        ctx = pipe.process(packet, ingress_port)
        self.processed_packets += 1
        if ctx.dropped:
            self.dropped_packets += 1
            self.drop_reasons[ctx.drop_reason] = self.drop_reasons.get(ctx.drop_reason, 0) + 1
        return ctx

    def reset_counters(self) -> None:
        """Zero the chip-level packet counters (control plane)."""
        self.processed_packets = 0
        self.dropped_packets = 0
        self.drop_reasons.clear()
