"""A pipe: parser + match-action pipeline + deparser + recirculation.

On the Tofino each pipe serves 16 of the 64 front-panel ports and owns
its stateful memory exclusively — pipes do not share register state,
which is why the paper requires the traffic ports and the NF-server port
to sit on the same pipe, and why the multi-server experiment slices
memory per pipe.
"""

from __future__ import annotations

from typing import Optional

from repro.packet.packet import Packet
from repro.switchsim.context import PipelinePacket
from repro.switchsim.parser import Deparser, Parser
from repro.switchsim.phv import PhvLayout
from repro.switchsim.pipeline import Pipeline
from repro.switchsim.resources import ResourceBudget, ResourceReport


class Pipe:
    """One of the ASIC's packet-processing pipes."""

    #: Latency added per recirculation pass, in nanoseconds.  The paper
    #: cites "10s of ns" per recirculation (§6.2.5); 50 ns is mid-range.
    RECIRCULATION_LATENCY_NS = 50

    def __init__(
        self,
        index: int,
        stage_count: int = 12,
        budget: Optional[ResourceBudget] = None,
        recirculation_limit: int = 1,
    ) -> None:
        self.index = index
        self.budget = budget or ResourceBudget()
        self.pipeline = Pipeline(stage_count=stage_count, budget=self.budget)
        self.parser = Parser()
        self.deparser = Deparser()
        self.phv = PhvLayout(capacity_bits=self.budget.phv_bits)
        self.recirculation_limit = recirculation_limit
        self.recirculated_packets = 0
        #: When True, passes use the pipeline's compiled table walk
        #: (identical semantics, lower interpreter overhead).  Flipped by
        #: :meth:`~repro.core.program.SwitchProgram.enable_fast_path`.
        self.fast_path = False

    def process(self, packet: Packet, ingress_port: int) -> PipelinePacket:
        """Run *packet* through the pipe, honouring recirculation requests.

        Returns the finished :class:`PipelinePacket`; the caller reads the
        egress decision, the drop flag and ``recirculations`` (to charge
        the recirculation latency/bandwidth penalty).
        """
        run_pass = self.pipeline.process_fast if self.fast_path else self.pipeline.process
        ctx = self.parser.parse(packet, ingress_port)
        run_pass(ctx)
        self.deparser.deparse(ctx)
        while ctx.recirculate_requested and not ctx.dropped:
            if ctx.recirculations >= self.recirculation_limit:
                ctx.recirculate_requested = False
                break
            ctx.recirculations += 1
            self.recirculated_packets += 1
            self.parser.reparse(ctx)
            run_pass(ctx)
            self.deparser.deparse(ctx)
        return ctx

    def recirculation_latency_ns(self, ctx: PipelinePacket) -> int:
        """Extra latency the packet accrued from recirculation passes."""
        return ctx.recirculations * self.RECIRCULATION_LATENCY_NS

    def resource_report(self) -> ResourceReport:
        """Summarize this pipe's resource utilization (Table 1 shape)."""
        return ResourceReport.from_stages(
            [stage.resources for stage in self.pipeline.stages],
            phv_bits_used=self.phv.used_bits,
            phv_bits_budget=self.phv.capacity_bits,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pipe(index={self.index}, stages={self.pipeline.stage_count})"
