"""Register arrays: the stateful SRAM exposed to P4 programs.

RMT switches view stateful memory as fixed-width bit-vector register
arrays, accessed through a read/write API from match-action table
actions.  Hardware guarantees line rate by allowing only a single
stateful ALU operation per register array per packet pass; the simulator
enforces the same rule through the access guard in
:class:`~repro.switchsim.context.PipelinePacket`, so a P4-impossible
program fails loudly here too.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.switchsim.context import PipelinePacket
from repro.switchsim.resources import StageResources


class RegisterAccessError(RuntimeError):
    """A program performed more than one access to a register array in a pass."""


class RegisterArray:
    """A fixed-size array of fixed-width registers living in one stage.

    Parameters
    ----------
    name:
        Unique name, used in error messages and the access guard.
    size:
        Number of entries.
    width_bits:
        Width of each entry; determines the SRAM the array consumes.
    stage_resources:
        When given, the array allocates ``size * width_bits / 8`` bytes
        from the owning stage's SRAM budget at construction time.
    initial:
        Initial value for every entry (0 by default).
    enforce_single_access:
        Enforce the one-access-per-packet-pass restriction (on by
        default; tests may relax it to model hypothetical hardware).

    The guard's per-access bookkeeping is skipped entirely when
    ``guard_enabled`` is False — the program fast path flips it off once
    a program has been exercised with the guard on, since the guard is a
    development-time assertion (it can only raise on P4-impossible
    programs) rather than observable simulation state.
    """

    guard_enabled = True

    def __init__(
        self,
        name: str,
        size: int,
        width_bits: int,
        stage_resources: Optional[StageResources] = None,
        initial: Any = 0,
        enforce_single_access: bool = True,
    ) -> None:
        if size <= 0:
            raise ValueError(f"register array {name!r} needs a positive size")
        if width_bits <= 0:
            raise ValueError(f"register array {name!r} needs a positive width")
        self.name = name
        self.size = size
        self.width_bits = width_bits
        self.enforce_single_access = enforce_single_access
        self._values: List[Any] = [initial] * size
        self._initial = initial
        if stage_resources is not None:
            stage_resources.allocate_sram(self.sram_bytes, what=name)

    @property
    def sram_bytes(self) -> int:
        """SRAM footprint of the whole array, rounded up to whole bytes."""
        return self.size * ((self.width_bits + 7) // 8)

    # ------------------------------------------------------------------ #
    # Dataplane access (guarded)
    # ------------------------------------------------------------------ #

    def read(self, ctx: PipelinePacket, index: int) -> Any:
        """Read entry *index* on behalf of the packet in *ctx*."""
        self._check_index(index)
        if self.guard_enabled:
            self._note_access(ctx, is_write=False)
        return self._values[index]

    def write(self, ctx: PipelinePacket, index: int, value: Any) -> None:
        """Write entry *index* on behalf of the packet in *ctx*."""
        self._check_index(index)
        if self.guard_enabled:
            self._note_access(ctx, is_write=True)
        self._values[index] = value

    def read_modify_write(self, ctx: PipelinePacket, index: int, func) -> Any:
        """Atomically apply ``func(old) -> new`` to entry *index*.

        This models the stateful ALU: a single access that both reads and
        writes, as used by the paper's tagger counters and the expiry
        decrement.  Returns the *new* value.
        """
        self._check_index(index)
        if self.guard_enabled:
            self._note_access(ctx, is_write=True)
        new_value = func(self._values[index])
        self._values[index] = new_value
        return new_value

    def exchange(self, ctx: PipelinePacket, index: int, new_value: Any) -> Any:
        """Atomically replace entry *index* with *new_value*; return the old value.

        Stateful ALUs can emit the pre-update value while writing a new
        one in the same operation; the Merge stages use this to read a
        payload block and clear it with a single access (Alg. 2,
        lines 21–23).
        """
        self._check_index(index)
        if self.guard_enabled:
            self._note_access(ctx, is_write=True)
        old_value = self._values[index]
        self._values[index] = new_value
        return old_value

    # ------------------------------------------------------------------ #
    # Control-plane access (unrestricted)
    # ------------------------------------------------------------------ #

    def peek(self, index: int) -> Any:
        """Control-plane read that bypasses the access guard."""
        self._check_index(index)
        return self._values[index]

    def poke(self, index: int, value: Any) -> None:
        """Control-plane write that bypasses the access guard."""
        self._check_index(index)
        self._values[index] = value

    def clear(self) -> None:
        """Reset every entry to the initial value (control-plane only)."""
        self._values = [self._initial] * self.size

    def occupancy(self, is_occupied=lambda value: bool(value)) -> int:
        """Count entries considered occupied by *is_occupied* (control plane)."""
        return sum(1 for value in self._values if is_occupied(value))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"register array {self.name!r}: index {index} out of range")

    def _note_access(self, ctx: PipelinePacket, is_write: bool) -> None:
        if ctx.register_reads is None:
            ctx.register_reads = {}
        if ctx.register_writes is None:
            ctx.register_writes = {}
        reads = ctx.register_reads.get(self.name, 0)
        writes = ctx.register_writes.get(self.name, 0)
        if self.enforce_single_access and (reads + writes) >= 1:
            raise RegisterAccessError(
                f"register array {self.name!r} accessed more than once for packet "
                f"{ctx.packet.packet_id} in a single pipeline pass; RMT hardware "
                f"permits a single stateful access per array per pass"
            )
        if is_write:
            ctx.register_writes[self.name] = writes + 1
        else:
            ctx.register_reads[self.name] = reads + 1
