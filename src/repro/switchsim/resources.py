"""Per-stage and per-pipe hardware resource accounting.

Table 1 of the paper reports the PayloadPark prototype's utilization of
SRAM, TCAM, VLIW action slots, exact/ternary match crossbars and the
Packet Header Vector.  The simulator tracks the same resources: register
arrays and match tables *allocate* from a :class:`StageResources` budget,
and :class:`ResourceReport` summarizes utilization the way Table 1 does
(average and peak per-stage SRAM, plus chip-wide percentages).

The default budget numbers below are calibrated, not copied from a data
sheet (precise Tofino figures are confidential, as the paper itself notes
in §5): 12 match-action stages per pipe, 32 KiB of *register-capable*
(stateful) SRAM per stage usable by a single program's register arrays,
and a 4 Kb PHV.  With these values a 26 % reservation yields a lookup
table of ≈ 530 entries per binding, which matches the operating points
the paper reports in §6.3.1: with ≈ 30 µs between Split and Merge,
premature evictions appear at send rates around 10–13 Mpps of 384-byte
packets, exactly where Fig. 14's peak-goodput curve bends.  Absolute
sizes are configurable, and EXPERIMENTS.md records the values used for
the Table 1 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class ResourceBudget:
    """Capacity of one match-action stage (and shared per-pipe resources)."""

    sram_bytes: int = 32_768  # 32 KiB of register-capable SRAM per stage
    tcam_entries: int = 2_048
    vliw_slots: int = 32
    exact_crossbar_bits: int = 1_024
    ternary_crossbar_bits: int = 512
    #: PHV capacity is a per-pipe resource but is reported alongside the
    #: per-stage ones in Table 1; 4 Kb matches Tofino-class documentation.
    phv_bits: int = 4_096


@dataclass
class StageResources:
    """Mutable allocation state of a single stage."""

    budget: ResourceBudget = field(default_factory=ResourceBudget)
    sram_bytes_used: int = 0
    tcam_entries_used: int = 0
    vliw_slots_used: int = 0
    exact_crossbar_bits_used: int = 0
    ternary_crossbar_bits_used: int = 0

    def allocate_sram(self, nbytes: int, what: str = "") -> None:
        """Reserve *nbytes* of stage SRAM or raise ``ResourceExhausted``."""
        if nbytes < 0:
            raise ValueError("cannot allocate a negative number of bytes")
        if self.sram_bytes_used + nbytes > self.budget.sram_bytes:
            raise ResourceExhausted(
                f"stage SRAM exhausted allocating {nbytes} bytes for {what!r}: "
                f"{self.sram_bytes_used}/{self.budget.sram_bytes} bytes already in use"
            )
        self.sram_bytes_used += nbytes

    def allocate_tcam(self, entries: int, what: str = "") -> None:
        """Reserve TCAM entries."""
        if self.tcam_entries_used + entries > self.budget.tcam_entries:
            raise ResourceExhausted(f"stage TCAM exhausted for {what!r}")
        self.tcam_entries_used += entries

    def allocate_vliw(self, slots: int, what: str = "") -> None:
        """Reserve VLIW action slots."""
        if self.vliw_slots_used + slots > self.budget.vliw_slots:
            raise ResourceExhausted(f"stage VLIW slots exhausted for {what!r}")
        self.vliw_slots_used += slots

    def allocate_crossbar(self, bits: int, ternary: bool = False, what: str = "") -> None:
        """Reserve match crossbar input bits (exact or ternary)."""
        if ternary:
            if self.ternary_crossbar_bits_used + bits > self.budget.ternary_crossbar_bits:
                raise ResourceExhausted(f"ternary crossbar exhausted for {what!r}")
            self.ternary_crossbar_bits_used += bits
        else:
            if self.exact_crossbar_bits_used + bits > self.budget.exact_crossbar_bits:
                raise ResourceExhausted(f"exact crossbar exhausted for {what!r}")
            self.exact_crossbar_bits_used += bits

    # Percentages -------------------------------------------------------- #

    @property
    def sram_percent(self) -> float:
        """SRAM utilization of this stage in percent."""
        return 100.0 * self.sram_bytes_used / self.budget.sram_bytes

    @property
    def tcam_percent(self) -> float:
        """TCAM utilization of this stage in percent."""
        return 100.0 * self.tcam_entries_used / self.budget.tcam_entries

    @property
    def vliw_percent(self) -> float:
        """VLIW slot utilization of this stage in percent."""
        return 100.0 * self.vliw_slots_used / self.budget.vliw_slots

    @property
    def exact_crossbar_percent(self) -> float:
        """Exact-match crossbar utilization in percent."""
        return 100.0 * self.exact_crossbar_bits_used / self.budget.exact_crossbar_bits

    @property
    def ternary_crossbar_percent(self) -> float:
        """Ternary-match crossbar utilization in percent."""
        return 100.0 * self.ternary_crossbar_bits_used / self.budget.ternary_crossbar_bits


class ResourceExhausted(RuntimeError):
    """Raised when a program requests more of a resource than the stage has."""


@dataclass
class ResourceReport:
    """Chip-level utilization summary in the shape of the paper's Table 1."""

    sram_avg_percent: float
    sram_peak_percent: float
    tcam_percent: float
    vliw_percent: float
    exact_crossbar_percent: float
    ternary_crossbar_percent: float
    phv_percent: float
    per_stage_sram_percent: List[float] = field(default_factory=list)

    @classmethod
    def from_stages(cls, stages: List[StageResources], phv_bits_used: int,
                    phv_bits_budget: int) -> "ResourceReport":
        """Aggregate per-stage allocations into a chip-level report.

        Stages that use no resources at all still count toward the
        averages, matching how the paper reports average per-stage SRAM
        across the match-action unit.
        """
        if not stages:
            raise ValueError("need at least one stage to report on")
        sram = [stage.sram_percent for stage in stages]
        used_stages = [s for s in stages if s.sram_bytes_used > 0] or stages
        sram_used = [stage.sram_percent for stage in used_stages]
        return cls(
            sram_avg_percent=sum(sram_used) / len(sram_used),
            sram_peak_percent=max(sram),
            tcam_percent=sum(s.tcam_percent for s in stages) / len(stages),
            vliw_percent=sum(s.vliw_percent for s in stages) / len(stages),
            exact_crossbar_percent=sum(s.exact_crossbar_percent for s in stages) / len(stages),
            ternary_crossbar_percent=sum(s.ternary_crossbar_percent for s in stages) / len(stages),
            phv_percent=100.0 * phv_bits_used / phv_bits_budget,
            per_stage_sram_percent=sram,
        )

    def as_table_rows(self) -> List[Dict[str, str]]:
        """Render the report as rows matching Table 1's layout."""
        return [
            {"resource": "SRAM (avg per stage)", "utilization": f"{self.sram_avg_percent:.2f}%"},
            {"resource": "SRAM (peak per stage)", "utilization": f"{self.sram_peak_percent:.2f}%"},
            {"resource": "TCAM", "utilization": f"{self.tcam_percent:.2f}%"},
            {"resource": "VLIW", "utilization": f"{self.vliw_percent:.2f}%"},
            {
                "resource": "Exact Match Crossbar",
                "utilization": f"{self.exact_crossbar_percent:.2f}%",
            },
            {
                "resource": "Ternary Match Crossbar",
                "utilization": f"{self.ternary_crossbar_percent:.2f}%",
            },
            {"resource": "Packet Header Vector", "utilization": f"{self.phv_percent:.2f}%"},
        ]
