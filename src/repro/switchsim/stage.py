"""A single match-action stage: local MATs, register arrays and resources."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.switchsim.context import PipelinePacket
from repro.switchsim.mat import MatchActionTable
from repro.switchsim.registers import RegisterArray
from repro.switchsim.resources import ResourceBudget, StageResources


class Stage:
    """One stage of the match-action pipeline.

    Independent MATs placed in the same stage execute "in parallel" on
    hardware; in the simulator they execute sequentially in insertion
    order, which is equivalent as long as they touch disjoint state —
    the placement logic in :class:`~repro.switchsim.pipeline.Pipeline`
    treats tables placed in one stage as unordered.
    """

    def __init__(self, index: int, budget: Optional[ResourceBudget] = None) -> None:
        self.index = index
        self.resources = StageResources(budget=budget or ResourceBudget())
        self.tables: List[MatchActionTable] = []
        self.register_arrays: List[RegisterArray] = []
        #: Invalidation callback installed by the owning pipeline so its
        #: compiled table walk (and any program-level decision cache
        #: keyed on the pipeline version) notices late table additions.
        self.on_change: Optional[Any] = None

    def add_table(self, table: MatchActionTable) -> MatchActionTable:
        """Place *table* in this stage, charging its resource usage."""
        self.resources.allocate_vliw(table.vliw_slots, what=table.name)
        self.resources.allocate_crossbar(table.match_bits, ternary=table.ternary, what=table.name)
        if table.ternary:
            self.resources.allocate_tcam(table.entries, what=table.name)
        else:
            self.resources.allocate_sram(table.entries * table.entry_bytes, what=table.name)
        self.tables.append(table)
        if self.on_change is not None:
            self.on_change()
        return table

    def add_register_array(
        self,
        name: str,
        size: int,
        width_bits: int,
        initial: Any = 0,
        enforce_single_access: bool = True,
    ) -> RegisterArray:
        """Create a register array backed by this stage's SRAM."""
        array = RegisterArray(
            name=name,
            size=size,
            width_bits=width_bits,
            stage_resources=self.resources,
            initial=initial,
            enforce_single_access=enforce_single_access,
        )
        self.register_arrays.append(array)
        return array

    def apply(self, ctx: PipelinePacket) -> None:
        """Run every table in this stage on the packet."""
        for table in self.tables:
            if ctx.dropped:
                return
            table.apply(ctx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stage(index={self.index}, tables={len(self.tables)}, "
            f"registers={len(self.register_arrays)})"
        )
