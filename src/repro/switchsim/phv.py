"""Packet Header Vector (PHV) capacity accounting.

The PHV is the bus of header and metadata containers that the parser
fills and the match-action stages read and write.  Its capacity limits
how many header bytes a program can operate on — in PayloadPark's case it
bounds how many payload bytes can be carried as "header" fields so that
the payload-table MATs can read and write them.  Table 1 reports 37.65 %
PHV utilization; :class:`PhvLayout` lets the program declare its
containers and produces the same percentage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PhvLayout:
    """Declared PHV containers for one program."""

    capacity_bits: int = 4_096
    fields: Dict[str, int] = field(default_factory=dict)

    def declare(self, name: str, bits: int) -> None:
        """Declare a header or metadata container of *bits* bits.

        Re-declaring an existing name with the same width is a no-op;
        with a different width it is an error (the parser and the MATs
        must agree on field layout).
        """
        if bits <= 0:
            raise ValueError(f"PHV field {name!r} must have a positive width")
        existing = self.fields.get(name)
        if existing is not None:
            if existing != bits:
                raise ValueError(
                    f"PHV field {name!r} redeclared with width {bits}, was {existing}"
                )
            return
        if self.used_bits + bits > self.capacity_bits:
            raise PhvOverflow(
                f"declaring PHV field {name!r} ({bits} bits) exceeds capacity: "
                f"{self.used_bits}/{self.capacity_bits} bits already used"
            )
        self.fields[name] = bits

    @property
    def used_bits(self) -> int:
        """Total declared bits."""
        return sum(self.fields.values())

    @property
    def percent_used(self) -> float:
        """Utilization percentage, as reported in Table 1."""
        return 100.0 * self.used_bits / self.capacity_bits


class PhvOverflow(RuntimeError):
    """Raised when a program declares more PHV bits than the chip provides."""
