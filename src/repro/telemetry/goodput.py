"""Goodput arithmetic helpers."""

from __future__ import annotations


def gbps(byte_count: float, window_ns: float) -> float:
    """Convert *byte_count* bytes over *window_ns* nanoseconds to Gb/s."""
    if window_ns <= 0:
        return 0.0
    return byte_count * 8.0 / window_ns


def goodput_gain_percent(payloadpark_gbps: float, baseline_gbps: float) -> float:
    """Relative goodput gain of PayloadPark over the baseline, in percent."""
    if baseline_gbps <= 0:
        return 0.0
    return (payloadpark_gbps - baseline_gbps) / baseline_gbps * 100.0


def savings_percent(baseline_value: float, payloadpark_value: float) -> float:
    """Relative reduction (e.g. PCIe bytes) achieved by PayloadPark, in percent."""
    if baseline_value <= 0:
        return 0.0
    return (baseline_value - payloadpark_value) / baseline_value * 100.0
