"""Goodput arithmetic helpers.

Degenerate inputs are split into two cases throughout this module:
*zero* denominators are well-defined measurement edges (an empty
window, a baseline that delivered nothing) and return an explicit
``0.0``; *negative* denominators can only come from a caller bug — a
measurement window whose ends were swapped, a rate computed from
inverted counters — and raise :class:`ValueError` instead of silently
masquerading as "no goodput".
"""

from __future__ import annotations


def gbps(byte_count: float, window_ns: float) -> float:
    """Convert *byte_count* bytes over *window_ns* nanoseconds to Gb/s.

    A zero-width window reports ``0.0`` (nothing can be delivered in no
    time); a *negative* window is a caller bug — swapped interval ends —
    and raises :class:`ValueError` rather than masking it as zero.
    """
    if window_ns < 0:
        raise ValueError(f"measurement window cannot be negative: {window_ns} ns")
    if window_ns == 0:
        return 0.0
    return byte_count * 8.0 / window_ns


def goodput_gain_percent(payloadpark_gbps: float, baseline_gbps: float) -> float:
    """Relative goodput gain of PayloadPark over the baseline, in percent.

    A zero baseline yields ``0.0`` (no reference to gain against); a
    *negative* baseline rate is impossible by construction and raises
    :class:`ValueError`.
    """
    if baseline_gbps < 0:
        raise ValueError(f"baseline goodput cannot be negative: {baseline_gbps} Gbps")
    if baseline_gbps == 0:
        return 0.0
    return (payloadpark_gbps - baseline_gbps) / baseline_gbps * 100.0


def savings_percent(baseline_value: float, payloadpark_value: float) -> float:
    """Relative reduction (e.g. PCIe bytes) achieved by PayloadPark, in percent.

    A zero baseline yields ``0.0`` (nothing to save from); a *negative*
    baseline is impossible for the byte/packet quantities this compares
    and raises :class:`ValueError`.
    """
    if baseline_value < 0:
        raise ValueError(f"baseline value cannot be negative: {baseline_value}")
    if baseline_value == 0:
        return 0.0
    return (baseline_value - payloadpark_value) / baseline_value * 100.0
