"""End-to-end latency recording."""

from __future__ import annotations

import math
from typing import Dict, List


class LatencyRecorder:
    """Collects per-packet latencies (in nanoseconds) and summarizes them."""

    def __init__(self) -> None:
        self._samples_ns: List[int] = []

    def record(self, latency_ns: int) -> None:
        """Add one sample."""
        if latency_ns < 0:
            raise ValueError("latency cannot be negative")
        self._samples_ns.append(latency_ns)

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self._samples_ns)

    def mean_us(self) -> float:
        """Average latency in microseconds (0 when empty)."""
        if not self._samples_ns:
            return 0.0
        return sum(self._samples_ns) / len(self._samples_ns) / 1_000.0

    def max_us(self) -> float:
        """Worst-case latency in microseconds (0 when empty)."""
        if not self._samples_ns:
            return 0.0
        return max(self._samples_ns) / 1_000.0

    def percentile_us(self, percentile: float) -> float:
        """Latency percentile in microseconds (nearest-rank method)."""
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if not self._samples_ns:
            return 0.0
        ordered = sorted(self._samples_ns)
        rank = math.ceil(percentile / 100.0 * len(ordered))
        return ordered[max(rank - 1, 0)] / 1_000.0

    def jitter_us(self) -> float:
        """Difference between peak and average latency (the paper's jitter metric)."""
        if not self._samples_ns:
            return 0.0
        return self.max_us() - self.mean_us()

    def since(self, sample_index: int) -> "LatencyRecorder":
        """A recorder view containing only samples recorded after *sample_index*.

        Used to exclude the warm-up window from reported statistics.
        """
        view = LatencyRecorder()
        view._samples_ns = self._samples_ns[sample_index:]
        return view

    def summary(self) -> Dict[str, float]:
        """Mean / p50 / p99 / max / jitter in microseconds."""
        return {
            "mean_us": self.mean_us(),
            "p50_us": self.percentile_us(50),
            "p99_us": self.percentile_us(99),
            "max_us": self.max_us(),
            "jitter_us": self.jitter_us(),
            "samples": float(self.count),
        }
