"""Telemetry: latency recording, goodput accounting and run reports.

The paper's evaluation metrics are goodput (useful header bytes per
second, measured from the switch's perspective), average end-to-end
latency, PCIe bandwidth on the NF server, and a health criterion of a
packet drop rate below 0.1 %.  This subpackage provides the recorders
and report dataclasses the experiment runner fills in.
"""

from repro.telemetry.goodput import gbps, goodput_gain_percent
from repro.telemetry.latency import LatencyRecorder
from repro.telemetry.report import ComparisonReport, DeploymentReport, HEALTHY_DROP_RATE

__all__ = [
    "LatencyRecorder",
    "gbps",
    "goodput_gain_percent",
    "DeploymentReport",
    "ComparisonReport",
    "HEALTHY_DROP_RATE",
]
