"""Run reports: per-deployment metrics and PayloadPark-vs-baseline comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.telemetry.goodput import goodput_gain_percent, savings_percent

#: The paper considers the system healthy while the drop rate stays below 0.1 %.
HEALTHY_DROP_RATE = 0.001


@dataclass
class DeploymentReport:
    """Metrics of one deployment (PayloadPark or baseline) at one operating point."""

    deployment: str
    send_rate_gbps: float
    duration_ns: int
    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    goodput_to_nf_gbps: float = 0.0
    delivered_goodput_gbps: float = 0.0
    offered_gbps: float = 0.0
    avg_latency_us: float = 0.0
    p99_latency_us: float = 0.0
    max_latency_us: float = 0.0
    jitter_us: float = 0.0
    pcie_gbps: float = 0.0
    nf_packets_processed: int = 0
    premature_evictions: int = 0
    evictions: int = 0
    splits: int = 0
    merges: int = 0
    explicit_drops: int = 0
    split_disabled: int = 0
    #: Highest egress-queue occupancy (bytes) seen on any of the run's
    #: links — the figure-level pressure peak the fluid-vs-packet
    #: metamorphic relation compares across fidelity tiers.
    peak_queue_bytes: int = 0
    #: Closed-loop transport accounting (all zero for open-loop runs):
    #: second-and-later copies on the wire, deliveries of already-seen
    #: sequence numbers, and the raw delivered-byte rate *including*
    #: duplicates.  ``delivered_goodput_gbps`` stays first-copy-only, so
    #: ``throughput - goodput`` is exactly the duplicated traffic.
    retransmitted_packets: int = 0
    retransmitted_bytes: int = 0
    duplicate_packets: int = 0
    throughput_gbps: float = 0.0
    drop_breakdown: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets that never made it back."""
        if self.packets_sent <= 0:
            return 0.0
        return self.packets_dropped / self.packets_sent

    @property
    def healthy(self) -> bool:
        """True while the drop rate stays under the paper's 0.1 % threshold."""
        return self.drop_rate < HEALTHY_DROP_RATE

    @property
    def functionally_equivalent(self) -> bool:
        """Zero premature evictions — the prerequisite of §6.2.6."""
        return self.premature_evictions == 0

    def as_row(self) -> Dict[str, float]:
        """Flat dict used by the benchmark harness to print result rows."""
        return {
            "deployment": self.deployment,
            "send_rate_gbps": round(self.send_rate_gbps, 3),
            "goodput_gbps": round(self.goodput_to_nf_gbps, 4),
            "delivered_goodput_gbps": round(self.delivered_goodput_gbps, 4),
            "avg_latency_us": round(self.avg_latency_us, 2),
            "p99_latency_us": round(self.p99_latency_us, 2),
            "drop_rate": round(self.drop_rate, 5),
            "pcie_gbps": round(self.pcie_gbps, 3),
            "premature_evictions": self.premature_evictions,
            "healthy": self.healthy,
        }


@dataclass
class ComparisonReport:
    """PayloadPark vs. baseline at the same operating point."""

    baseline: DeploymentReport
    payloadpark: DeploymentReport

    @property
    def goodput_gain_percent(self) -> float:
        """Goodput improvement of PayloadPark over the baseline."""
        return goodput_gain_percent(
            self.payloadpark.goodput_to_nf_gbps, self.baseline.goodput_to_nf_gbps
        )

    @property
    def delivered_goodput_gain_percent(self) -> float:
        """Gain measured on packets delivered back to the traffic generator."""
        return goodput_gain_percent(
            self.payloadpark.delivered_goodput_gbps, self.baseline.delivered_goodput_gbps
        )

    @property
    def pcie_savings_percent(self) -> float:
        """PCIe bandwidth saved by PayloadPark."""
        return savings_percent(self.baseline.pcie_gbps, self.payloadpark.pcie_gbps)

    @property
    def latency_delta_us(self) -> float:
        """PayloadPark latency minus baseline latency (negative = faster)."""
        return self.payloadpark.avg_latency_us - self.baseline.avg_latency_us

    @property
    def latency_win_percent(self) -> float:
        """Relative latency reduction of PayloadPark (positive = faster)."""
        if self.baseline.avg_latency_us <= 0:
            return 0.0
        return -self.latency_delta_us / self.baseline.avg_latency_us * 100.0

    def as_row(self) -> Dict[str, float]:
        """Flat comparison row for the benchmark harness."""
        return {
            "send_rate_gbps": round(self.baseline.send_rate_gbps, 3),
            "baseline_goodput_gbps": round(self.baseline.goodput_to_nf_gbps, 4),
            "payloadpark_goodput_gbps": round(self.payloadpark.goodput_to_nf_gbps, 4),
            "goodput_gain_percent": round(self.goodput_gain_percent, 2),
            "baseline_latency_us": round(self.baseline.avg_latency_us, 2),
            "payloadpark_latency_us": round(self.payloadpark.avg_latency_us, 2),
            "pcie_savings_percent": round(self.pcie_savings_percent, 2),
        }


def render_table(rows, columns=None) -> str:
    """Render a list of dict rows as an aligned text table.

    The benchmark harness prints these tables so each bench regenerates
    the corresponding figure/table of the paper in textual form.
    """
    rows = list(rows)
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
