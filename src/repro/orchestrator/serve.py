"""``repro campaign serve``: HTTP endpoints over live campaign state.

Stdlib-only (:mod:`http.server`), by design — the serve surface must
work in the same container as the campaign with zero extra deps.  A
:class:`CampaignServer` wraps a :class:`~repro.orchestrator.
telemetrybus.CampaignMonitor` and exposes:

``/status``
    Progress, ETA, per-dimension slice stats (``repro.campaign/v1``).
``/cells``
    One entry per known grid cell.
``/violations``
    The deduplicated invariant-violation ledger.
``/events?n=N``
    NDJSON tail of the most recent bus events.
``/metrics``
    Prometheus text exposition (``text/plain; version=0.0.4``).

The same server runs in two modes.  *Post-hoc*, the monitor is rebuilt
from the result store alone (:func:`monitor_from_store`).  *Live*, a
:class:`StoreFollower` thread tails the store and its telemetry-events
sidecar while another process appends to them — offsets guarantee each
line is folded exactly once, and store records whose cell is already
terminal in the monitor are skipped, so a cell seen through the events
file is not double-counted when its record lands in the store.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs.schema import (
    validate_campaign_cells,
    validate_campaign_status,
    validate_campaign_violations,
)
from repro.orchestrator.store import ResultStore, events_path_for
from repro.orchestrator.telemetrybus import (
    TERMINAL_STATUSES,
    CampaignMonitor,
    events_from_record,
)

logger = logging.getLogger("repro.orchestrator.serve")

#: Content type mandated by the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INDEX = {
    "endpoints": ["/status", "/cells", "/violations", "/events", "/metrics"],
    "schema": "repro.campaign/v1",
}


def monitor_from_store(
    campaign: Optional[Any] = None,
    store: Optional[ResultStore] = None,
    events_path: Optional[Path] = None,
) -> CampaignMonitor:
    """Rebuild a monitor post-hoc from a result store (and spec, if given).

    Replays the latest record per cell through the same
    :func:`events_from_record` translation the live bus uses, so the
    resulting state matches what a live monitor would have converged to.
    """
    monitor = CampaignMonitor(
        total=campaign.point_count if campaign is not None else None,
        campaign=getattr(campaign, "name", None),
        scenario=getattr(campaign, "scenario", None),
        mode=getattr(campaign, "mode", None),
    )
    if store is not None:
        for record in store.latest_by_hash().values():
            for event in events_from_record(record):
                monitor.handle(event)
    if events_path is not None and Path(events_path).exists():
        _replay_events_file(monitor, Path(events_path))
    # Only *terminal* cells count toward completion: a store replayed
    # mid-campaign holds running cells too, and marking the monitor
    # finished from their mere presence made `/status` claim a finished
    # campaign (with ``eta_s: 0.0``) at t=0.
    terminal = sum(
        1 for cell in monitor.cells.values()
        if cell["status"] in TERMINAL_STATUSES
    )
    if monitor.total is not None and terminal >= monitor.total:
        monitor.finished = True
    return monitor


def _replay_events_file(monitor: CampaignMonitor, events_path: Path) -> None:
    """Fold non-terminal context (timestamps, workers) from the sidecar."""
    with events_path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if event.get("type") in ("cell_finished", "violation", "obs_summary"):
                if monitor.has_terminal(event.get("spec_hash", "")):
                    continue
            monitor.handle(event)


class StoreFollower(threading.Thread):
    """Tails a store (all shards) and its events sidecar into a monitor.

    Byte offsets ensure every complete line is consumed exactly once;
    a torn trailing line (no newline yet) is left for the next poll.
    The set of store files is re-resolved on every poll, so shard files
    that appear after the follower starts are picked up live.
    """

    def __init__(
        self,
        monitor: CampaignMonitor,
        store_path: Path,
        events_path: Optional[Path] = None,
        poll_interval_s: float = 0.5,
    ) -> None:
        super().__init__(daemon=True, name="store-follower")
        self.monitor = monitor
        self.store_path = Path(store_path)
        self._store = ResultStore(store_path)
        self.events_path = (
            Path(events_path) if events_path is not None
            else events_path_for(store_path)
        )
        self.poll_interval_s = poll_interval_s
        self._offsets: Dict[Path, int] = {}
        self._stopped = threading.Event()

    def poll_once(self) -> int:
        """Consume new complete lines from every file; returns lines folded."""
        folded = 0
        folded += self._consume(self.events_path, from_store=False)
        for path in self._store.reader_paths():
            folded += self._consume(path, from_store=True)
        return folded

    def _consume(self, path: Path, from_store: bool) -> int:
        if not path.exists():
            return 0
        folded = 0
        offset = self._offsets.get(path, 0)
        with path.open("rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
        # Only complete lines count; a torn tail stays unconsumed.
        end = chunk.rfind(b"\n")
        if end < 0:
            return 0
        self._offsets[path] = offset + end + 1
        for raw in chunk[: end + 1].splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                data = json.loads(raw)
            except json.JSONDecodeError:
                continue
            if from_store:
                spec_hash = data.get("spec_hash", "")
                # The events sidecar already delivered this cell's
                # terminal events — folding the record again would
                # double-count violations.
                if self.monitor.has_terminal(spec_hash):
                    continue
                for event in events_from_record(data):
                    self.monitor.handle(event)
            else:
                self.monitor.handle(data)
            folded += 1
        return folded

    def run(self) -> None:
        while not self._stopped.is_set():
            try:
                self.poll_once()
            except OSError:
                logger.warning("store follower poll failed", exc_info=True)
            self._stopped.wait(self.poll_interval_s)
        self.poll_once()

    def stop(self) -> None:
        self._stopped.set()
        if self.is_alive():
            self.join()


def prometheus_text(status: Dict[str, Any]) -> str:
    """Render a `/status` payload in Prometheus text exposition format."""
    labels = []
    if status.get("campaign"):
        labels.append(f'campaign="{status["campaign"]}"')
    label_str = "{" + ",".join(labels) + "}" if labels else ""

    def metric(name: str, value: Any, help_text: str, kind: str = "gauge",
               extra_labels: str = "") -> str:
        if value is None:
            return ""
        if extra_labels:
            inner = ",".join(filter(None, [*labels, extra_labels]))
            target = f"{name}{{{inner}}}"
        else:
            target = f"{name}{label_str}"
        return (
            f"# HELP {name} {help_text}\n"
            f"# TYPE {name} {kind}\n"
            f"{target} {value}\n"
        )

    lines = [
        metric("repro_campaign_cells_total", status["cells_total"],
               "Grid cells in the campaign."),
        metric("repro_campaign_cells_done", status["cells_done"],
               "Cells with a terminal status."),
        "# HELP repro_campaign_cells Cells by state.\n"
        "# TYPE repro_campaign_cells gauge\n",
    ]
    for state in ("ok", "error", "violation", "exhausted", "running", "pending"):
        value = status.get(f"cells_{state}")
        if value is None:
            continue
        inner = ",".join(filter(None, [*labels, f'state="{state}"']))
        lines.append(f"repro_campaign_cells{{{inner}}} {value}\n")
    lines.extend([
        metric("repro_campaign_violations_total", status["violations_total"],
               "Distinct invariant violations observed.", kind="counter"),
        metric("repro_campaign_retries_total", status.get("retries_total"),
               "Cell dispatch retries after crashes or timeouts.",
               kind="counter"),
        metric("repro_campaign_workers_died_total", status.get("workers_died"),
               "Worker processes lost to crashes or timeout kills.",
               kind="counter"),
        metric("repro_campaign_progress", status["progress"],
               "Fraction of cells finished."),
        metric("repro_campaign_eta_seconds", status.get("eta_s"),
               "Estimated seconds until campaign completion."),
        metric("repro_campaign_mean_cell_wall_seconds",
               status.get("mean_cell_wall_s"),
               "Mean wall time of completed cells."),
        metric("repro_campaign_workers", status.get("workers"),
               "Worker processes executing cells."),
        metric("repro_campaign_events_seen", status.get("events_seen"),
               "Telemetry events folded into this monitor.", kind="counter"),
    ])
    return "".join(lines)


class CampaignRequestHandler(BaseHTTPRequestHandler):
    """Routes the five read-only endpoints; every JSON payload is
    schema-validated *before* it goes on the wire."""

    server_version = "ReproCampaignServe/1.0"

    @property
    def monitor(self) -> CampaignMonitor:
        return self.server.monitor  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/":
                self._send_json(200, _INDEX)
            elif route == "/status":
                self._send_json(200, validate_campaign_status(self.monitor.status()))
            elif route == "/cells":
                self._send_json(
                    200, validate_campaign_cells(self.monitor.cells_payload())
                )
            elif route == "/violations":
                self._send_json(
                    200, validate_campaign_violations(self.monitor.violations_payload())
                )
            elif route == "/events":
                query = parse_qs(parsed.query)
                try:
                    limit = int(query.get("n", ["100"])[0])
                except ValueError:
                    self._send_json(400, {"error": "n must be an integer"})
                    return
                body = "".join(
                    json.dumps(event, sort_keys=True) + "\n"
                    for event in self.monitor.events_tail(limit)
                )
                self._send_bytes(
                    200, body.encode("utf-8"), "application/x-ndjson"
                )
            elif route == "/metrics":
                status = validate_campaign_status(self.monitor.status())
                self._send_bytes(
                    200, prometheus_text(status).encode("utf-8"),
                    PROMETHEUS_CONTENT_TYPE,
                )
            else:
                self._send_json(404, {"error": f"no such endpoint {route!r}",
                                      **_INDEX})
        except Exception:  # noqa: BLE001 - a handler crash must not kill the server
            logger.exception("request handler failed for %s", self.path)
            try:
                self._send_json(500, {"error": "internal error"})
            except OSError:
                pass

    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        self._send_bytes(
            code,
            json.dumps(payload, sort_keys=True, indent=2).encode("utf-8"),
            "application/json",
        )

    def _send_bytes(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), fmt % args)


class CampaignServer:
    """A threaded HTTP server bound to one campaign monitor."""

    def __init__(
        self,
        monitor: CampaignMonitor,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.monitor = monitor
        self.httpd = ThreadingHTTPServer((host, port), CampaignRequestHandler)
        self.httpd.daemon_threads = True
        self.httpd.monitor = monitor  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port is concrete even when 0 was asked."""
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "CampaignServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                daemon=True,
                name="campaign-serve",
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Block serving requests (the CLI foreground path)."""
        self.httpd.serve_forever(poll_interval=0.1)

    def stop(self) -> None:
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.httpd.server_close()

    def __enter__(self) -> "CampaignServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
