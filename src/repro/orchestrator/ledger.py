"""Cross-run ledger: index campaign stores and the bench history.

One campaign run is observable through ``repro campaign serve``; this
module is the *memory across runs*.  A :class:`RunLedger` scans the
``results/`` directory for campaign stores (skipping the telemetry
``.events.jsonl`` sidecars) and reads ``benchmarks/bench_history.jsonl``
— the append-only record every ``repro bench`` run extends — so the CLI
can answer "what ran here, and is throughput drifting?".

:func:`detect_regression` is the ``repro bench trend`` core: a
sliding-window check that flags a *sustained* drop (every sample in the
trailing window below a threshold fraction of the pre-window median).
The median baseline and all-of-window rule make it robust to the noise
a single slow CI runner injects, while a genuine 2× regression trips it
after ``window`` consecutive bench runs.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.orchestrator.store import ResultStore, shard_stem


def _default_history_path() -> Path:
    return Path(__file__).resolve().parents[3] / "benchmarks" / "bench_history.jsonl"


def dotted_get(data: Any, path: str) -> Optional[Any]:
    """Resolve a dotted path like ``fast.packets_per_sec`` into *data*."""
    current = data
    for part in path.split("."):
        if not isinstance(current, dict) or part not in current:
            return None
        current = current[part]
    return current


class RunLedger:
    """Read-only index over campaign stores and the bench history."""

    def __init__(
        self,
        results_root: Optional[Path] = None,
        history_path: Optional[Path] = None,
    ) -> None:
        self.results_root = Path(results_root) if results_root is not None else Path("results")
        self.history_path = (
            Path(history_path) if history_path is not None else _default_history_path()
        )

    # ------------------------------------------------------------------ #
    # Campaign stores
    # ------------------------------------------------------------------ #

    def store_paths(self) -> List[Path]:
        """Campaign store base paths under the results root, sorted.

        Shard files (``<name>.shard-NN.jsonl``) collapse into their base
        store path, so a sharded campaign is one ledger entry — whether
        or not the legacy single file also exists on disk.
        """
        if not self.results_root.is_dir():
            return []
        bases = set()
        for path in self.results_root.glob("*.jsonl"):
            if path.name.endswith(".events.jsonl"):
                continue
            stem = shard_stem(path)
            if stem is not None:
                bases.add(path.with_name(f"{stem}.jsonl"))
            else:
                bases.add(path)
        return sorted(bases)

    def campaign_runs(self) -> List[Dict[str, Any]]:
        """One summary row per campaign store."""
        rows = []
        for path in self.store_paths():
            latest = ResultStore(path).latest_by_hash()
            statuses: Dict[str, int] = {}
            violations = 0
            for record in latest.values():
                status = record.get("status", "ok")
                statuses[status] = statuses.get(status, 0) + 1
                violations += len(record.get("violations", []))
            rows.append(
                {
                    "campaign": path.stem,
                    "store": str(path),
                    "cells": len(latest),
                    "ok": statuses.get("ok", 0),
                    "error": statuses.get("error", 0),
                    "violation": statuses.get("violation", 0),
                    "exhausted": statuses.get("exhausted", 0),
                    "violations_total": violations,
                }
            )
        return rows

    # ------------------------------------------------------------------ #
    # Bench history
    # ------------------------------------------------------------------ #

    def bench_entries(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Bench-history entries in append order, optionally one kind."""
        if not self.history_path.exists():
            return []
        entries = []
        with self.history_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(entry, dict):
                    continue
                if kind is not None and entry.get("kind") != kind:
                    continue
                entries.append(entry)
        return entries

    def bench_series(
        self,
        kind: str = "fastpath",
        metric: str = "fast.packets_per_sec",
    ) -> List[float]:
        """The *metric* values of every *kind* entry, in history order."""
        values = []
        for entry in self.bench_entries(kind=kind):
            value = dotted_get(entry, metric)
            if isinstance(value, (int, float)):
                values.append(float(value))
        return values


def detect_regression(
    values: Sequence[float],
    window: int = 3,
    threshold: float = 0.25,
) -> Dict[str, Any]:
    """Flag a sustained drop in the trailing *window* of *values*.

    Regressed iff *every* value in the trailing window sits below
    ``(1 - threshold) × median(values before the window)``.  Requires
    at least ``window + 1`` samples; with fewer, reports
    ``insufficient history`` and never flags.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    values = [float(v) for v in values]
    result: Dict[str, Any] = {
        "samples": len(values),
        "window": window,
        "threshold": threshold,
        "regressed": False,
    }
    if len(values) < window + 1:
        result["reason"] = (
            f"insufficient history ({len(values)} samples, need {window + 1})"
        )
        return result
    baseline_values = values[:-window]
    recent = values[-window:]
    baseline = statistics.median(baseline_values)
    floor = baseline * (1.0 - threshold)
    recent_mean = sum(recent) / len(recent)
    result.update(
        {
            "baseline": round(baseline, 4),
            "floor": round(floor, 4),
            "recent": [round(v, 4) for v in recent],
            "recent_mean": round(recent_mean, 4),
            "ratio": round(recent_mean / baseline, 4) if baseline else None,
            "regressed": bool(baseline > 0 and all(v < floor for v in recent)),
        }
    )
    if result["regressed"]:
        result["reason"] = (
            f"all {window} trailing samples below {floor:.4g} "
            f"({(1.0 - threshold) * 100:.0f}% of baseline {baseline:.4g})"
        )
    return result


def format_trend(result: Dict[str, Any], kind: str, metric: str) -> str:
    """Human-readable ``repro bench trend`` report."""
    lines = [f"bench trend: kind={kind} metric={metric}"]
    lines.append(
        f"  samples={result['samples']} window={result['window']} "
        f"threshold={result['threshold']:.0%}"
    )
    if "baseline" in result:
        lines.append(
            f"  baseline={result['baseline']:.4g} floor={result['floor']:.4g} "
            f"recent_mean={result['recent_mean']:.4g} ratio={result['ratio']}"
        )
    if result["regressed"]:
        lines.append(f"  REGRESSION: {result['reason']}")
    elif "reason" in result:
        lines.append(f"  ok ({result['reason']})")
    else:
        lines.append("  ok (no sustained regression)")
    return "\n".join(lines)
