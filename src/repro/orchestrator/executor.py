"""Parallel campaign execution over a multiprocessing pool.

Each run owns a private :class:`~repro.netsim.eventloop.EventLoop`, so
grid points are embarrassingly parallel: the executor fans pending
:class:`~repro.orchestrator.spec.RunSpec` descriptors out to worker
processes and streams completed records back into the result store as
they arrive.  ``workers=1`` (or a single pending run) falls back to
plain in-process execution — the debugging path, and the path the
experiment modules use so figure regeneration stays deterministic and
cheap to trace.

Run descriptors carry only plain data; workers rebuild the scenario
(chains, workload, topology) from the registry on their side of the
process boundary.
"""

from __future__ import annotations

import dataclasses
import dataclasses
import multiprocessing
import time
import traceback
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.runner import DeploymentKind, ExperimentRunner
from repro.orchestrator.spec import CampaignSpec, RunSpec, build_scenario, dedupe_specs
from repro.orchestrator.store import ResultStore
from repro.telemetry.report import ComparisonReport, DeploymentReport

#: Callback invoked with each finished record (progress reporting).
ProgressCallback = Callable[[Dict[str, Any]], None]


def flatten_report(report: DeploymentReport, prefix: str = "") -> Dict[str, Any]:
    """Flatten one deployment report into scalar ``prefix``-ed metrics."""
    metrics: Dict[str, Any] = {}
    for spec_field in dataclasses.fields(report):
        value = getattr(report, spec_field.name)
        if spec_field.name == "drop_breakdown":
            for key, count in value.items():
                metrics[f"{prefix}drop_{key}"] = count
        elif isinstance(value, (bool, int, float, str)):
            metrics[f"{prefix}{spec_field.name}"] = value
    metrics[f"{prefix}drop_rate"] = report.drop_rate
    metrics[f"{prefix}healthy"] = report.healthy
    return metrics


def flatten_comparison(comparison: ComparisonReport) -> Dict[str, Any]:
    """Flatten a baseline-vs-PayloadPark comparison into one metrics dict."""
    metrics = flatten_report(comparison.baseline, "baseline_")
    metrics.update(flatten_report(comparison.payloadpark, "payloadpark_"))
    metrics["goodput_gain_percent"] = comparison.goodput_gain_percent
    metrics["delivered_goodput_gain_percent"] = comparison.delivered_goodput_gain_percent
    metrics["pcie_savings_percent"] = comparison.pcie_savings_percent
    metrics["latency_delta_us"] = comparison.latency_delta_us
    return metrics


def execute_run(run: RunSpec) -> Dict[str, Any]:
    """Execute one run descriptor and return its result record.

    Top-level so it pickles into pool workers.  Failures are captured in
    the record (``status: "error"``) instead of tearing down the pool;
    failed hashes are retried on the next resume.
    """
    started = time.perf_counter()
    record: Dict[str, Any] = {
        "spec_hash": run.spec_hash,
        "scenario": run.scenario,
        "mode": run.mode,
        "params": dict(run.params),
        "options": dict(run.options),
        "time_scale": run.time_scale,
        "status": "ok",
    }
    observer = None
    obs_sink = None
    try:
        scenario = build_scenario(run)
        record["seed"] = scenario.seed
        runner = ExperimentRunner(time_scale=run.time_scale)
        stack = ExitStack()
        if run.options.get("validate"):
            # Inline invariant checking (the campaign `validate: true`
            # hook): every deployment run of this grid point executes
            # under the validation observer.  Imported lazily — the
            # validation package layers on top of the orchestrator.
            from repro.experiments.runner import run_observer
            from repro.validation.engine import ValidationObserver

            observer = ValidationObserver()
            stack.enter_context(run_observer(observer))
        observe_opt = run.options.get("observe")
        if observe_opt:
            # Campaign `observe:` hook: every deployment run of this grid
            # point executes with the observability plane armed; the
            # per-run summaries land in the record (the full exports stay
            # in the worker — they are too large to ship to the pool).
            from repro.obs.config import ObserveSpec
            from repro.obs.session import ObservationSink, observation_sink

            spec = ObserveSpec.from_spec(observe_opt)
            scenario = dataclasses.replace(scenario, observe=spec)
            obs_sink = ObservationSink()
            stack.enter_context(observation_sink(obs_sink))
        with stack:
            if run.mode == "compare":
                result = runner.compare(scenario)
                record["metrics"] = flatten_comparison(result.comparison)
            else:
                record["metrics"] = _execute_peak(runner, scenario, run.options)
        if obs_sink is not None:
            record["observability"] = [
                obs.summary() for obs in obs_sink.observations
            ]
        if observer is not None:
            record["violations"] = [v.as_dict() for v in observer.violations]
            record["runs_validated"] = observer.runs_checked
            if observer.violations:
                record["status"] = "violation"
                record["error"] = (
                    f"{len(observer.violations)} invariant violation(s); "
                    f"first: {observer.violations[0]}"
                )
    except Exception as exc:  # noqa: BLE001 - worker must not crash the pool
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["traceback"] = traceback.format_exc()
    record["wall_time_s"] = time.perf_counter() - started
    return record


def _execute_peak(
    runner: ExperimentRunner, scenario, options: Dict[str, Any]
) -> Dict[str, Any]:
    """Run the §6.3.1 peak-goodput search for one grid point."""
    deployment = DeploymentKind(options.get("deployment", "payloadpark"))
    bounds = options.get("rate_bounds_gbps", (1.0, 60.0))
    rate, report = runner.peak_goodput(
        scenario,
        deployment=deployment,
        require_zero_premature_evictions=options.get(
            "require_zero_premature_evictions", True
        ),
        rate_bounds_gbps=(float(bounds[0]), float(bounds[1])),
        tolerance_gbps=float(options.get("tolerance_gbps", 1.0)),
    )
    metrics = {"peak_send_rate_gbps": rate}
    metrics.update(flatten_report(report, "peak_"))
    return metrics


@dataclass
class CampaignSummary:
    """What one executor invocation did."""

    total: int = 0
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    wall_time_s: float = 0.0
    records: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Runs that finished successfully in this invocation."""
        return self.executed - self.failed

    def raise_on_failure(self) -> None:
        """Raise if any run failed — for callers that need every point.

        The figure experiments use this so a broken grid point surfaces
        as an exception (like the pre-orchestrator serial loops did)
        instead of a silently shorter table.
        """
        if not self.failed:
            return
        errors = [
            f"{record['scenario']}({record['params']}): {record.get('error')}"
            for record in self.records
            if record.get("status") != "ok"
        ]
        raise RuntimeError(
            f"{self.failed} of {self.executed} campaign runs failed:\n"
            + "\n".join(errors)
        )

    def as_row(self) -> Dict[str, Any]:
        """Flat dict for table rendering."""
        return {
            "total": self.total,
            "executed": self.executed,
            "skipped": self.skipped,
            "failed": self.failed,
            "wall_time_s": round(self.wall_time_s, 2),
        }


class CampaignExecutor:
    """Fans campaign runs out over worker processes.

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` executes serially in-process (the
        debugging path); ``None`` uses the machine's CPU count.
    progress:
        Optional callback receiving each finished record.
    """

    def __init__(
        self, workers: Optional[int] = 1, progress: Optional[ProgressCallback] = None
    ) -> None:
        if workers is None:
            workers = multiprocessing.cpu_count()
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.progress = progress

    def run_campaign(
        self,
        campaign: CampaignSpec,
        store: Optional[ResultStore] = None,
        resume: bool = True,
    ) -> CampaignSummary:
        """Expand *campaign* and execute every pending grid point."""
        return self.run_specs(campaign.expand(), store=store, resume=resume)

    def run_specs(
        self,
        specs: Sequence[RunSpec],
        store: Optional[ResultStore] = None,
        resume: bool = True,
    ) -> CampaignSummary:
        """Execute *specs*, skipping hashes the store already completed."""
        started = time.perf_counter()
        specs = dedupe_specs(specs)
        completed = store.completed_hashes() if (store is not None and resume) else set()
        pending = [spec for spec in specs if spec.spec_hash not in completed]
        summary = CampaignSummary(total=len(specs), skipped=len(specs) - len(pending))

        for record in self._execute(pending):
            summary.executed += 1
            if record.get("status") != "ok":
                summary.failed += 1
            if store is not None:
                store.append(record)
            if self.progress is not None:
                self.progress(record)
            summary.records.append(record)

        summary.wall_time_s = time.perf_counter() - started
        return summary

    def _execute(self, pending: Sequence[RunSpec]) -> Iterable[Dict[str, Any]]:
        if not pending:
            return
        if self.workers <= 1 or len(pending) == 1:
            for spec in pending:
                yield execute_run(spec)
            return
        processes = min(self.workers, len(pending))
        with multiprocessing.get_context().Pool(processes=processes) as pool:
            for record in pool.imap_unordered(execute_run, pending):
                yield record
