"""Parallel campaign execution over a fault-tolerant dispatch loop.

Each run owns a private :class:`~repro.netsim.eventloop.EventLoop`, so
grid points are embarrassingly parallel: the executor fans pending
:class:`~repro.orchestrator.spec.RunSpec` descriptors out to worker
processes via :class:`~repro.orchestrator.dispatcher.DispatchLoop` —
per-cell leases with optional timeouts, bounded retry with exponential
backoff, and crash recovery, so one wedged or OOM-killed worker can
delay a campaign but never stall it — and streams completed records
back into the result store as they arrive.  ``workers=1`` (or a single
pending run) falls back to plain in-process execution — the debugging
path, and the path the experiment modules use so figure regeneration
stays deterministic and cheap to trace.

Retry budgets span resumes: failed attempts recorded in the store
(``error``/``violation`` records) count against ``max_attempts``, and a
cell whose budget is spent is stamped with a terminal
``status: "exhausted"`` record instead of being silently re-run on
every resume forever.

Run descriptors carry only plain data; workers rebuild the scenario
(chains, workload, topology) from the registry on their side of the
process boundary.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
import traceback
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import FidelityError
from repro.experiments.runner import DeploymentKind, ExperimentRunner
from repro.orchestrator.spec import CampaignSpec, RunSpec, build_scenario, dedupe_specs
from repro.orchestrator.store import ResultStore
from repro.orchestrator import telemetrybus
from repro.orchestrator.telemetrybus import (
    DEFAULT_HEARTBEAT_INTERVAL_S,
    TelemetryBus,
    cell_context,
    start_heartbeat,
    worker_emit,
)
from repro.telemetry.report import ComparisonReport, DeploymentReport

#: Callback invoked with each finished record (progress reporting).
ProgressCallback = Callable[[Dict[str, Any]], None]

#: Default per-cell retry budget (attempts, not retries): a cell may
#: fail twice and be tried a third time before it is ``exhausted``.
DEFAULT_MAX_ATTEMPTS = 3

#: Default base of the exponential in-run retry backoff, in seconds.
DEFAULT_RETRY_BACKOFF_S = 0.5


def _campaign_worker_init(
    bus_queue: Optional[Any],
    log_level: Optional[str],
    heartbeat_interval_s: float,
) -> None:
    """Pool initializer: arm telemetry and logging in a fresh worker.

    Runs once per worker process.  The bus queue arrives through
    initargs (a ``multiprocessing.Queue`` is inheritable but not
    imap-picklable), and the CLI's ``--log-level`` follows the campaign
    into the pool so worker records are not silently stuck at the
    default config — tagged with the running cell's hash.
    """
    if log_level is not None:
        telemetrybus.configure_worker_logging(log_level)
    if bus_queue is not None:
        telemetrybus.install_worker_sink(bus_queue.put, heartbeat_interval_s)


def flatten_report(report: DeploymentReport, prefix: str = "") -> Dict[str, Any]:
    """Flatten one deployment report into scalar ``prefix``-ed metrics."""
    metrics: Dict[str, Any] = {}
    for spec_field in dataclasses.fields(report):
        value = getattr(report, spec_field.name)
        if spec_field.name == "drop_breakdown":
            for key, count in value.items():
                metrics[f"{prefix}drop_{key}"] = count
        elif isinstance(value, (bool, int, float, str)):
            metrics[f"{prefix}{spec_field.name}"] = value
    metrics[f"{prefix}drop_rate"] = report.drop_rate
    metrics[f"{prefix}healthy"] = report.healthy
    return metrics


def flatten_comparison(comparison: ComparisonReport) -> Dict[str, Any]:
    """Flatten a baseline-vs-PayloadPark comparison into one metrics dict."""
    metrics = flatten_report(comparison.baseline, "baseline_")
    metrics.update(flatten_report(comparison.payloadpark, "payloadpark_"))
    metrics["goodput_gain_percent"] = comparison.goodput_gain_percent
    metrics["delivered_goodput_gain_percent"] = comparison.delivered_goodput_gain_percent
    metrics["pcie_savings_percent"] = comparison.pcie_savings_percent
    metrics["latency_delta_us"] = comparison.latency_delta_us
    return metrics


def execute_run(run: RunSpec) -> Dict[str, Any]:
    """Execute one run descriptor and return its result record.

    Top-level so it pickles into pool workers.  Failures are captured in
    the record (``status: "error"``) instead of tearing down the pool;
    failed hashes are retried on the next resume.
    """
    started = time.perf_counter()
    record: Dict[str, Any] = {
        "spec_hash": run.spec_hash,
        "scenario": run.scenario,
        "mode": run.mode,
        "params": dict(run.params),
        "options": dict(run.options),
        "time_scale": run.time_scale,
        "status": "ok",
    }
    observer = None
    obs_sink = None
    obs_out_dir: Optional[Path] = None
    worker_emit(
        {
            "type": "cell_started",
            "spec_hash": run.spec_hash,
            "scenario": run.scenario,
            "params": dict(run.params),
            "pid": os.getpid(),
        }
    )
    heartbeat = start_heartbeat(run.spec_hash)
    try:
        with cell_context(run.spec_hash):
            scenario = build_scenario(run)
            record["seed"] = scenario.seed
            runner = ExperimentRunner(time_scale=run.time_scale)
            stack = ExitStack()
            if run.options.get("validate"):
                # Inline invariant checking (the campaign `validate: true`
                # hook): every deployment run of this grid point executes
                # under the validation observer.  Imported lazily — the
                # validation package layers on top of the orchestrator.
                from repro.experiments.runner import run_observer
                from repro.validation.engine import ValidationObserver

                observer = ValidationObserver()
                stack.enter_context(run_observer(observer))
            observe_opt = run.options.get("observe")
            if observe_opt:
                # Campaign `observe:` hook: every deployment run of this grid
                # point executes with the observability plane armed; the
                # per-run summaries land in the record (the full exports stay
                # in the worker — they are too large to ship to the pool,
                # but an `out_dir` key lands them on disk per cell).
                from repro.obs.config import ObserveSpec
                from repro.obs.session import ObservationSink, observation_sink

                if isinstance(observe_opt, Mapping) and "out_dir" in observe_opt:
                    observe_opt = dict(observe_opt)
                    # Cell subdirectory keyed by the spec hash: parallel
                    # workers can never collide on export paths.
                    obs_out_dir = Path(observe_opt.pop("out_dir")) / run.spec_hash
                spec = ObserveSpec.from_spec(observe_opt)
                scenario = dataclasses.replace(scenario, observe=spec)
                obs_sink = ObservationSink()
                stack.enter_context(observation_sink(obs_sink))
            with stack:
                if run.mode == "compare":
                    result = runner.compare(scenario)
                    record["metrics"] = flatten_comparison(result.comparison)
                else:
                    record["metrics"] = _execute_peak(runner, scenario, run.options)
            if obs_sink is not None:
                record["observability"] = [
                    obs.summary() for obs in obs_sink.observations
                ]
                if obs_out_dir is not None:
                    from repro.obs.export import observation_stem, write_observation

                    written: List[str] = []
                    for index, obs in enumerate(obs_sink.observations):
                        written.extend(
                            str(path)
                            for path in write_observation(
                                obs, obs_out_dir, observation_stem(obs, index)
                            )
                        )
                    record["observability_dir"] = str(obs_out_dir)
                    record["observability_files"] = written
            if observer is not None:
                record["violations"] = [v.as_dict() for v in observer.violations]
                record["runs_validated"] = observer.runs_checked
                if observer.violations:
                    record["status"] = "violation"
                    record["error"] = (
                        f"{len(observer.violations)} invariant violation(s); "
                        f"first: {observer.violations[0]}"
                    )
    except Exception as exc:  # noqa: BLE001 - worker must not crash the pool
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["traceback"] = traceback.format_exc()
    finally:
        if heartbeat is not None:
            heartbeat.stop()
    record["wall_time_s"] = time.perf_counter() - started
    return record


def _execute_peak(
    runner: ExperimentRunner, scenario, options: Dict[str, Any]
) -> Dict[str, Any]:
    """Run the §6.3.1 peak-goodput search for one grid point."""
    deployment = DeploymentKind(options.get("deployment", "payloadpark"))
    bounds = options.get("rate_bounds_gbps", (1.0, 60.0))
    rate, report = runner.peak_goodput(
        scenario,
        deployment=deployment,
        require_zero_premature_evictions=options.get(
            "require_zero_premature_evictions", True
        ),
        rate_bounds_gbps=(float(bounds[0]), float(bounds[1])),
        tolerance_gbps=float(options.get("tolerance_gbps", 1.0)),
    )
    metrics = {"peak_send_rate_gbps": rate}
    metrics.update(flatten_report(report, "peak_"))
    return metrics


@dataclass
class CampaignSummary:
    """What one executor invocation did."""

    total: int = 0
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    #: Cells whose retry budget ran out (subset of ``failed``) — either
    #: stamped at resume time from store history or mid-run by the
    #: dispatcher after repeated crashes/timeouts.
    exhausted: int = 0
    wall_time_s: float = 0.0
    records: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Runs that finished successfully in this invocation."""
        return self.executed - self.failed

    def raise_on_failure(self) -> None:
        """Raise if any run failed — for callers that need every point.

        The figure experiments use this so a broken grid point surfaces
        as an exception (like the pre-orchestrator serial loops did)
        instead of a silently shorter table.
        """
        if not self.failed:
            return
        failures = [
            record for record in self.records if record.get("status") != "ok"
        ]
        errors = [
            f"{record['scenario']}({record['params']}): {record.get('error')}"
            for record in failures
        ]
        # A fidelity misconfiguration (fidelity: fluid on a scenario with
        # no steady segment) fails every grid point identically; surface
        # it as the configuration error it is — a clean `error:` line and
        # exit 2 at the CLI — not a broken-grid RuntimeError traceback.
        fidelity_prefix = f"{FidelityError.__name__}: "
        if all(
            str(record.get("error", "")).startswith(fidelity_prefix)
            for record in failures
        ):
            raise FidelityError(
                str(failures[0]["error"])[len(fidelity_prefix):]
            )
        raise RuntimeError(
            f"{self.failed} of {self.executed} campaign runs failed:\n"
            + "\n".join(errors)
        )

    def as_row(self) -> Dict[str, Any]:
        """Flat dict for table rendering."""
        return {
            "total": self.total,
            "executed": self.executed,
            "skipped": self.skipped,
            "failed": self.failed,
            "exhausted": self.exhausted,
            "wall_time_s": round(self.wall_time_s, 2),
        }


class CampaignExecutor:
    """Fans campaign runs out over worker processes.

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` executes serially in-process (the
        debugging path); ``None`` uses the machine's CPU count.
    progress:
        Optional callback receiving each finished record.
    bus:
        Optional :class:`~repro.orchestrator.telemetrybus.TelemetryBus`.
        When set, workers stream cell-started events and heartbeats over
        its queue, and the executor emits finished/violation/obs events
        per record — live campaign state with zero per-event cost when
        absent (the default, and the path the bench overhead gate pins).
    log_level:
        CLI log level propagated into worker processes (workers
        otherwise inherit whatever logging config ``fork`` copied).
    heartbeat_interval_s:
        Seconds between per-cell worker heartbeats when a bus is set.
    cell_timeout_s:
        Per-cell wall-clock deadline under the parallel dispatcher; a
        cell past it loses its worker (SIGKILL) and is retried.  ``None``
        (the default) disables timeouts.  The serial path ignores this —
        there is no second process to take over.
    max_attempts:
        Retry budget per cell, counted across resumes via the store's
        ``error``/``violation`` history plus in-run crashes/timeouts.  A
        cell at the budget is stamped ``status: "exhausted"`` instead of
        being re-run.  ``None`` or ``0`` retries forever (the historical
        behavior).
    retry_backoff_s:
        Base of the exponential backoff between in-run retries.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        progress: Optional[ProgressCallback] = None,
        bus: Optional[TelemetryBus] = None,
        log_level: Optional[str] = None,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        cell_timeout_s: Optional[float] = None,
        max_attempts: Optional[int] = DEFAULT_MAX_ATTEMPTS,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    ) -> None:
        if workers is None:
            workers = multiprocessing.cpu_count()
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_attempts is not None and max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        self.workers = workers
        self.progress = progress
        self.bus = bus
        self.log_level = log_level
        self.heartbeat_interval_s = heartbeat_interval_s
        self.cell_timeout_s = cell_timeout_s
        self.max_attempts = max_attempts or None
        self.retry_backoff_s = retry_backoff_s

    def run_campaign(
        self,
        campaign: CampaignSpec,
        store: Optional[ResultStore] = None,
        resume: bool = True,
    ) -> CampaignSummary:
        """Expand *campaign* and execute every pending grid point."""
        self._campaign_meta = {
            "campaign": campaign.name,
            "scenario": campaign.scenario,
            "mode": campaign.mode,
        }
        try:
            return self.run_specs(campaign.expand(), store=store, resume=resume)
        finally:
            self._campaign_meta = {}

    def run_specs(
        self,
        specs: Sequence[RunSpec],
        store: Optional[ResultStore] = None,
        resume: bool = True,
    ) -> CampaignSummary:
        """Execute *specs*, skipping hashes the store already completed.

        Resume semantics: hashes with an ``ok`` record are skipped;
        hashes whose recorded failed attempts meet ``max_attempts`` are
        stamped with a terminal ``exhausted`` record (once) instead of
        being re-run; everything else is dispatched, with its store
        attempt count carried into the dispatcher's budget.
        """
        from repro.orchestrator.dispatcher import exhausted_record

        started = time.perf_counter()
        specs = dedupe_specs(specs)
        completed: set = set()
        attempts: Dict[str, int] = {}
        latest: Dict[str, Dict[str, Any]] = {}
        if store is not None and resume:
            completed = store.completed_hashes()
            attempts = store.attempt_counts()
            latest = store.latest_by_hash()
        pending: List[RunSpec] = []
        newly_exhausted: List[RunSpec] = []
        already_exhausted = 0
        for spec in specs:
            if spec.spec_hash in completed:
                continue
            if latest.get(spec.spec_hash, {}).get("status") == "exhausted":
                # Already stamped terminal (possibly by in-run crash
                # retries, which leave no error records to count);
                # only --no-resume re-runs it.
                already_exhausted += 1
                continue
            if (
                self.max_attempts is not None
                and attempts.get(spec.spec_hash, 0) >= self.max_attempts
            ):
                newly_exhausted.append(spec)
                continue
            pending.append(spec)
        # Cells exhausted on an *earlier* resume are skipped like
        # completed ones; newly exhausted cells flow through the record
        # stream below so their terminal marker is stored and reported.
        summary = CampaignSummary(
            total=len(specs),
            skipped=len(specs) - len(pending) - len(newly_exhausted),
        )

        if self.bus is not None:
            self.bus.emit(
                {
                    "type": "campaign_started",
                    "total": len(specs),
                    "pending": len(pending),
                    "skipped": summary.skipped,
                    "exhausted": already_exhausted + len(newly_exhausted),
                    "workers": min(self.workers, len(pending)) or 1,
                    **getattr(self, "_campaign_meta", {}),
                }
            )

        def stream() -> Iterable[Dict[str, Any]]:
            for spec in newly_exhausted:
                yield exhausted_record(
                    spec,
                    attempts.get(spec.spec_hash, 0),
                    "recorded failures from previous runs",
                )
            for record in self._execute(pending, attempts):
                yield record

        try:
            for record in stream():
                summary.executed += 1
                status = record.get("status")
                if status != "ok":
                    summary.failed += 1
                if status == "exhausted":
                    summary.exhausted += 1
                if store is not None:
                    store.append(record)
                if self.bus is not None:
                    # Finished/violation/obs events come from the record on
                    # the orchestrator side — the worker's copy of the bus
                    # cannot know the final status before it returns it.
                    self.bus.emit_record(record)
                if self.progress is not None:
                    self.progress(record)
                summary.records.append(record)
        finally:
            summary.wall_time_s = time.perf_counter() - started
            if self.bus is not None:
                self.bus.emit(
                    {
                        "type": "campaign_finished",
                        "executed": summary.executed,
                        "failed": summary.failed,
                        "skipped": summary.skipped,
                        "wall_time_s": round(summary.wall_time_s, 4),
                    }
                )
        return summary

    def _execute(
        self,
        pending: Sequence[RunSpec],
        base_attempts: Optional[Mapping[str, int]] = None,
    ) -> Iterable[Dict[str, Any]]:
        if not pending:
            return
        if self.workers <= 1 or len(pending) == 1:
            # Serial path: same telemetry contract as the dispatcher,
            # armed in-process (and restored afterwards — figure
            # experiments share this process).  No second process exists
            # to recover a crash or enforce a timeout here; failures are
            # captured as error records and budgeted at the next resume.
            with telemetrybus.worker_sink(
                self.bus.queue.put if self.bus is not None else None,
                self.heartbeat_interval_s,
            ):
                for spec in pending:
                    yield execute_run(spec)
            return
        # Imported lazily: the dispatcher's workers import this module.
        from repro.orchestrator.dispatcher import DispatchLoop

        loop = DispatchLoop(
            processes=min(self.workers, len(pending)),
            bus_queue=self.bus.queue if self.bus is not None else None,
            emit=self.bus.emit if self.bus is not None else None,
            log_level=self.log_level,
            heartbeat_interval_s=self.heartbeat_interval_s,
            cell_timeout_s=self.cell_timeout_s,
            max_attempts=self.max_attempts,
            retry_backoff_s=self.retry_backoff_s,
        )
        for record in loop.run(pending, base_attempts):
            yield record
