"""Declarative campaign specs: scenario registry, parameter grids, run descriptors.

A campaign names a base scenario from :data:`SCENARIO_REGISTRY` and a
parameter grid; :meth:`CampaignSpec.expand` takes the cartesian product
and yields one :class:`RunSpec` per grid point.  A ``RunSpec`` carries
only JSON-serializable data (scenario *name* plus parameter values), so
it can cross a process boundary and be hashed into a stable identity —
the key the result store uses to resume interrupted campaigns.

Campaigns load from YAML or JSON files (see ``examples/campaigns/``) or
are built programmatically by the experiment modules.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.experiments import scenarios
from repro.experiments.runner import ScenarioConfig
from repro.nf.framework import NETBRICKS, OPENNETVM
from repro.traffic.workload import Workload

#: Campaign run modes: a baseline-vs-PayloadPark comparison at a fixed
#: operating point, or the §6.3.1 peak-goodput binary search.
MODES = ("compare", "peak")

#: Scenario name → builder returning a fresh :class:`ScenarioConfig`.
SCENARIO_REGISTRY: Dict[str, Callable[..., ScenarioConfig]] = {
    "fw_nat_lb_10ge": scenarios.fw_nat_lb_10ge,
    "fw_nat_lb_10ge_recirculation": scenarios.fw_nat_lb_10ge_recirculation,
    "fw_nat_40ge_enterprise": scenarios.fw_nat_40ge_enterprise,
    "fixed_size_40ge": scenarios.fixed_size_40ge,
    "multi_server_384b": scenarios.multi_server_384b,
    "explicit_drop": scenarios.explicit_drop_scenario,
    "memory_sweep": scenarios.memory_sweep_scenario,
    "nf_cycles": scenarios.nf_cycles_scenario,
    "small_packet_40ge": scenarios.small_packet_40ge,
    "functional_equivalence": scenarios.functional_equivalence_scenario,
    "workload": scenarios.workload_scenario,
}

#: Parameters applied directly onto :class:`ScenarioConfig` fields.
SCENARIO_OVERRIDES = frozenset(
    {
        "send_rate_gbps",
        "seed",
        "burst_size",
        "server_count",
        "explicit_drop",
        "duration_us",
        "warmup_us",
        "service_jitter",
        "cpu_ghz",
        "gen_link_gbps",
        "switch_latency_ns",
        "fast_path",
        # Fault-injection spec: a registered profile name or an inline
        # schedule dict (see repro.faults); both are plain data, so grids
        # sweep fault profiles like any other axis.
        "faults",
        # Fidelity tier (packet | fluid | auto, see repro.fidelity) —
        # sweepable so campaigns can compare tiers cell by cell.
        "fidelity",
    }
)

#: Parameters applied onto the scenario's nested ``PayloadParkConfig``.
PAYLOADPARK_OVERRIDES = frozenset(
    {
        "sram_fraction",
        "expiry_threshold",
        "parked_bytes",
        "min_split_payload",
        "table_entries",
        "payload_block_bytes",
        "enable_recirculation",
        "enable_explicit_drops",
        "clock_max",
        "split_enabled",
    }
)

#: Framework name (as written in campaign files) → framework object.
FRAMEWORKS = {"opennetvm": OPENNETVM, "netbricks": NETBRICKS}


def register_scenario(name: str, builder: Callable[..., ScenarioConfig]) -> None:
    """Add *builder* to the registry so campaigns can reference it by *name*.

    For parallel execution on platforms whose multiprocessing start
    method is ``spawn`` (macOS, Windows), the registration must happen
    at import time of a module the workers also import — workers rebuild
    the registry from module state.  Registrations done at runtime only
    reach ``workers=1`` (serial) execution there; ``fork`` platforms
    (Linux) inherit them either way.
    """
    if name in SCENARIO_REGISTRY:
        raise ValueError(f"scenario {name!r} is already registered")
    SCENARIO_REGISTRY[name] = builder


def _jsonable(value: Any) -> Any:
    """Normalize *value* for canonical JSON (tuples become lists, recursively)."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"campaign parameters must be JSON-serializable, got {value!r}")


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding used for spec hashing."""
    return json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunSpec:
    """One concrete run of a campaign: scenario name + parameter values.

    Everything here is plain data, so a ``RunSpec`` pickles cheaply into
    worker processes and hashes into a stable identity.
    """

    scenario: str
    mode: str = "compare"
    params: Mapping[str, Any] = field(default_factory=dict)
    options: Mapping[str, Any] = field(default_factory=dict)
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIO_REGISTRY:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; "
                f"expected one of {sorted(SCENARIO_REGISTRY)}"
            )
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {MODES}")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")

    def canonical(self) -> Dict[str, Any]:
        """The hashed identity of this run."""
        return {
            "scenario": self.scenario,
            "mode": self.mode,
            "params": _jsonable(dict(self.params)),
            "options": _jsonable(dict(self.options)),
            "time_scale": self.time_scale,
        }

    @property
    def spec_hash(self) -> str:
        """Stable 16-hex-digit identity of this run (resume key)."""
        digest = hashlib.sha256(canonical_json(self.canonical()).encode("utf-8"))
        return digest.hexdigest()[:16]


def derived_seed(scenario: str, params: Mapping[str, Any]) -> int:
    """A deterministic per-run seed from the run's parameter point."""
    payload = canonical_json({"scenario": scenario, "params": dict(params)})
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return int(digest[:8], 16) % (2**31 - 1)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: base parameters × grid over a registry scenario.

    Attributes
    ----------
    name:
        Campaign identity; the default result store is
        ``results/<name>.jsonl``.
    scenario:
        Key into :data:`SCENARIO_REGISTRY`.
    mode:
        ``"compare"`` (baseline vs. PayloadPark at each point) or
        ``"peak"`` (peak-goodput binary search at each point).
    base:
        Parameters shared by every run.
    grid:
        Parameter name → list of values; runs are the cartesian product.
    options:
        Mode-specific knobs (peak mode: ``deployment``,
        ``rate_bounds_gbps``, ``tolerance_gbps``,
        ``require_zero_premature_evictions``).
    validate:
        When true, every grid point runs with the invariant engine
        attached (:mod:`repro.validation`): violations are recorded on
        the run's result record and the point is reported as failed.
    seed_policy:
        ``"fixed"`` leaves seeds to ``base``/scenario defaults;
        ``"per-run"`` derives a deterministic seed from each grid point.
    """

    name: str
    scenario: str
    mode: str = "compare"
    base: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, List[Any]] = field(default_factory=dict)
    options: Mapping[str, Any] = field(default_factory=dict)
    time_scale: float = 1.0
    seed_policy: str = "fixed"
    description: str = ""
    validate: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign needs a name")
        if self.scenario not in SCENARIO_REGISTRY:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; "
                f"expected one of {sorted(SCENARIO_REGISTRY)}"
            )
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {MODES}")
        if self.seed_policy not in ("fixed", "per-run"):
            raise ValueError("seed_policy must be 'fixed' or 'per-run'")
        for key, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"grid axis {key!r} must be a non-empty list")
            if key in self.base:
                raise ValueError(f"parameter {key!r} appears in both base and grid")

    @property
    def point_count(self) -> int:
        """Number of runs the grid expands into."""
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count

    def expand(self) -> List[RunSpec]:
        """Materialize the grid into concrete, ordered run descriptors."""
        axes = sorted(self.grid)
        runs: List[RunSpec] = []
        options = dict(self.options)
        if self.validate:
            options.setdefault("validate", True)
        for point in itertools.product(*(self.grid[axis] for axis in axes)):
            params = dict(self.base)
            params.update(dict(zip(axes, point)))
            if self.seed_policy == "per-run" and "seed" not in params:
                params["seed"] = derived_seed(self.scenario, params)
            runs.append(
                RunSpec(
                    scenario=self.scenario,
                    mode=self.mode,
                    params=params,
                    options=options,
                    time_scale=self.time_scale,
                )
            )
        return runs

    def with_time_scale(self, time_scale: float) -> "CampaignSpec":
        """A copy of this campaign at a different simulation fidelity."""
        return replace(self, time_scale=time_scale)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form, round-trippable through :meth:`from_dict`."""
        return {
            "name": self.name,
            "scenario": self.scenario,
            "mode": self.mode,
            "base": _jsonable(dict(self.base)),
            "grid": _jsonable(dict(self.grid)),
            "options": _jsonable(dict(self.options)),
            "time_scale": self.time_scale,
            "seed_policy": self.seed_policy,
            "description": self.description,
            "validate": self.validate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Build a campaign from a parsed YAML/JSON mapping."""
        known = {
            "name", "scenario", "mode", "base", "grid", "options",
            "time_scale", "seed_policy", "description", "validate",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown campaign keys: {sorted(unknown)}")
        for required in ("name", "scenario"):
            if required not in data:
                raise ValueError(f"campaign file is missing the {required!r} key")
        return cls(
            name=data["name"],
            scenario=data["scenario"],
            mode=data.get("mode", "compare"),
            base=dict(data.get("base", {})),
            grid={key: list(values) for key, values in data.get("grid", {}).items()},
            options=dict(data.get("options", {})),
            time_scale=float(data.get("time_scale", 1.0)),
            seed_policy=data.get("seed_policy", "fixed"),
            description=data.get("description", ""),
            validate=bool(data.get("validate", False)),
        )

    @classmethod
    def from_file(cls, path) -> "CampaignSpec":
        """Load a campaign from a ``.yaml``/``.yml`` or ``.json`` file."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - env without PyYAML
                raise RuntimeError(
                    f"PyYAML is not installed; convert {path.name} to JSON or "
                    "install the 'yaml' extra"
                ) from exc
            try:
                data = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise ValueError(f"campaign file {path} is not valid YAML: {exc}") from exc
        else:
            data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"campaign file {path} must contain a mapping")
        return cls.from_dict(data)


# ---------------------------------------------------------------------- #
# Scenario materialization
# ---------------------------------------------------------------------- #


def build_scenario(run: RunSpec) -> ScenarioConfig:
    """Materialize a run descriptor into a concrete :class:`ScenarioConfig`.

    Parameters the registered builder accepts by name are passed to it;
    the rest are applied as overrides on the returned config (scenario
    fields, PayloadPark fields, ``framework`` and ``packet_size``).
    """
    builder = SCENARIO_REGISTRY[run.scenario]
    signature = inspect.signature(builder)
    builder_kwargs = {}
    overrides = {}
    for key, value in run.params.items():
        if key in signature.parameters:
            builder_kwargs[key] = value
        else:
            overrides[key] = value

    try:
        scenario = builder(**builder_kwargs)
    except TypeError as exc:
        raise ValueError(
            f"scenario {run.scenario!r} could not be built from "
            f"{sorted(builder_kwargs)}: {exc}"
        ) from exc
    return apply_overrides(scenario, overrides)


def apply_overrides(scenario: ScenarioConfig, overrides: Mapping[str, Any]) -> ScenarioConfig:
    """Apply generic parameter overrides to an already-built scenario."""
    scenario_fields = {}
    payloadpark_fields = {}
    for key, value in overrides.items():
        if key in SCENARIO_OVERRIDES:
            scenario_fields[key] = value
        elif key in PAYLOADPARK_OVERRIDES:
            payloadpark_fields[key] = value
        elif key == "framework":
            framework = FRAMEWORKS.get(str(value).lower())
            if framework is None:
                raise ValueError(
                    f"unknown framework {value!r}; expected one of {sorted(FRAMEWORKS)}"
                )
            scenario_fields["framework"] = framework
        elif key == "packet_size":
            scenario_fields["workload"] = Workload.fixed_size(int(value))
        else:
            known = sorted(
                SCENARIO_OVERRIDES | PAYLOADPARK_OVERRIDES | {"framework", "packet_size"}
            )
            raise ValueError(f"unknown campaign parameter {key!r}; known: {known}")
    if payloadpark_fields:
        scenario_fields["payloadpark"] = replace(scenario.payloadpark, **payloadpark_fields)
    if scenario_fields:
        scenario = replace(scenario, **scenario_fields)
    return scenario


def dedupe_specs(specs: Iterable[RunSpec]) -> List[RunSpec]:
    """Drop duplicate run descriptors (same spec hash), preserving order."""
    seen: Dict[str, None] = {}
    result = []
    for spec in specs:
        key = spec.spec_hash
        if key not in seen:
            seen[key] = None
            result.append(spec)
    return result
