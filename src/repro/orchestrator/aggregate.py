"""Aggregation: group stored run records back into per-figure tables.

The store holds one flat record per run in completion order; this module
re-aligns them with a campaign's grid (via spec hashes) and produces the
row dicts that :func:`repro.telemetry.report.render_table` prints.  The
``fig07``/``fig14`` helpers rebuild those experiments' historical table
shapes so routing them through the orchestrator is output-identical.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.orchestrator.spec import CampaignSpec, RunSpec

Record = Dict[str, Any]


def latest_ok_by_hash(records: Iterable[Record]) -> Dict[str, Record]:
    """Most recent successful record per spec hash (**ok-wins**).

    A later *failed* retry never shadows an earlier ``ok`` record — the
    same rule :meth:`repro.orchestrator.store.ResultStore.latest_by_hash`
    applies — so ``campaign report`` and ``campaign status`` agree about
    every cell.
    """
    latest: Dict[str, Record] = {}
    for record in records:
        if record.get("status") == "ok" and record.get("spec_hash"):
            latest[record["spec_hash"]] = record
    return latest


def latest_status_by_hash(records: Iterable[Record]) -> Dict[str, str]:
    """Authoritative status per spec hash, ok-wins (see above)."""
    status: Dict[str, str] = {}
    for record in records:
        spec_hash = record.get("spec_hash")
        if not spec_hash:
            continue
        if status.get(spec_hash) != "ok":
            status[spec_hash] = record.get("status", "ok")
    return status


def align(specs: Sequence[RunSpec], records: Iterable[Record]) -> List[Optional[Record]]:
    """Records in grid order: one entry per spec, ``None`` where unfinished."""
    by_hash = latest_ok_by_hash(records)
    return [by_hash.get(spec.spec_hash) for spec in specs]


def campaign_rows(
    campaign: CampaignSpec,
    records: Iterable[Record],
    metric_columns: Optional[Sequence[str]] = None,
    include_missing: bool = False,
) -> List[Dict[str, Any]]:
    """One table row per grid point: swept parameters + selected metrics.

    Without *metric_columns* every metric of the first finished run is
    included — useful interactively; pass an explicit list for stable
    reports.
    """
    specs = campaign.expand()
    records = list(records)
    aligned = align(specs, records)
    statuses = latest_status_by_hash(records)
    swept = sorted(campaign.grid)
    rows: List[Dict[str, Any]] = []
    for spec, record in zip(specs, aligned):
        if record is None and not include_missing:
            continue
        row: Dict[str, Any] = {axis: spec.params.get(axis) for axis in swept}
        if record is None:
            # Cells with no ok record report their real latest status
            # (error/exhausted), not a misleading "pending".
            row["status"] = statuses.get(spec.spec_hash, "pending")
            rows.append(row)
            continue
        metrics = record.get("metrics", {})
        columns = metric_columns if metric_columns is not None else sorted(metrics)
        for column in columns:
            row[column] = _round(metrics.get(column))
        rows.append(row)
    return rows


def group_rows(
    rows: Iterable[Mapping[str, Any]],
    by: Sequence[str],
    reductions: Mapping[str, str],
) -> List[Dict[str, Any]]:
    """Group rows on the *by* columns and reduce the named metric columns.

    ``reductions`` maps column → one of ``mean``, ``sum``, ``min``,
    ``max`` or ``count``.  Group order follows first appearance.
    """
    reducers = {
        "mean": lambda values: sum(values) / len(values),
        "sum": sum,
        "min": min,
        "max": max,
        "count": len,
    }
    for column, how in reductions.items():
        if how not in reducers:
            raise ValueError(f"unknown reduction {how!r} for column {column!r}")

    groups: Dict[tuple, List[Mapping[str, Any]]] = {}
    for row in rows:
        key = tuple(row.get(column) for column in by)
        groups.setdefault(key, []).append(row)

    result = []
    for key, members in groups.items():
        out: Dict[str, Any] = dict(zip(by, key))
        for column, how in reductions.items():
            values = [row[column] for row in members if row.get(column) is not None]
            out[column] = reducers[how](values) if values else None
        result.append(out)
    return result


def _round(value: Any, digits: int = 4) -> Any:
    if isinstance(value, float):
        return round(value, digits)
    return value


# ---------------------------------------------------------------------- #
# Figure-shaped tables
# ---------------------------------------------------------------------- #


def fig07_rows(specs: Sequence[RunSpec], records: Iterable[Record]) -> List[Dict[str, Any]]:
    """Rebuild the historical Fig. 7 table from orchestrator records."""
    rows = []
    for spec, record in zip(specs, align(specs, records)):
        if record is None:
            continue
        metrics = record["metrics"]
        rows.append(
            {
                "send_rate_gbps": spec.params["send_rate_gbps"],
                "baseline_goodput_gbps": round(metrics["baseline_goodput_to_nf_gbps"], 4),
                "payloadpark_goodput_gbps": round(
                    metrics["payloadpark_goodput_to_nf_gbps"], 4
                ),
                "goodput_gain_percent": round(metrics["goodput_gain_percent"], 2),
                "baseline_latency_us": round(metrics["baseline_avg_latency_us"], 2),
                "payloadpark_latency_us": round(metrics["payloadpark_avg_latency_us"], 2),
                "baseline_healthy": metrics["baseline_healthy"],
                "payloadpark_healthy": metrics["payloadpark_healthy"],
            }
        )
    return rows


def fig14_rows(
    sweep_specs: Sequence[RunSpec],
    records: Iterable[Record],
    baseline_spec: Optional[RunSpec] = None,
) -> List[Dict[str, Any]]:
    """Rebuild the historical Fig. 14 table from orchestrator records."""
    records = list(records)
    baseline_peak_goodput = None
    if baseline_spec is not None:
        aligned = align([baseline_spec], records)[0]
        if aligned is not None:
            baseline_peak_goodput = aligned["metrics"]["peak_goodput_to_nf_gbps"]
    rows = []
    for spec, record in zip(sweep_specs, align(sweep_specs, records)):
        if record is None:
            continue
        metrics = record["metrics"]
        row = {
            "sram_fraction_percent": round(spec.params["sram_fraction"] * 100, 2),
            "peak_send_rate_gbps": round(metrics["peak_send_rate_gbps"], 2),
            "peak_goodput_gbps": round(metrics["peak_goodput_to_nf_gbps"], 4),
            "premature_evictions": metrics["peak_premature_evictions"],
            "drop_rate": round(metrics["peak_drop_rate"], 5),
        }
        if baseline_peak_goodput is not None:
            row["baseline_peak_goodput_gbps"] = round(baseline_peak_goodput, 4)
        rows.append(row)
    return rows
