"""Sharded append-only JSONL result store with incremental aggregation.

Every completed run becomes one JSON line: the run's spec hash, its
parameters, the seed actually used and the flattened metrics.  The store
is the campaign's durable state — :meth:`ResultStore.completed_hashes`
tells the executor which grid points already finished so a re-run of the
same campaign only executes what is missing, and
:meth:`ResultStore.attempt_counts` bounds how often a failing point is
retried before it is declared ``exhausted``.

Two layouts share one class:

- **single-shard** (the default, and the historical layout): all records
  in one file, ``results/<name>.jsonl``;
- **sharded** (``shards=N``): records split across
  ``results/<name>.shard-NN.jsonl`` by spec hash, so a 10k-cell campaign
  never funnels every append and every poll through one file.

A store always *reads* both layouts — a campaign started single-shard
resumes cleanly after being promoted to shards, because the legacy file
is folded in before the shard files.  Records for one spec hash always
land in the same file, so per-hash append order (the property resume and
latest-wins semantics rely on) is preserved under sharding.

Reads are incremental: the store keeps a byte-offset cursor per file and
an in-memory index (latest record per hash, resume set, attempt counts,
record count) that is extended from the cursors only — a status poll
over a long campaign costs the bytes appended since the previous poll,
not a rescan of the whole store.  Only complete lines are consumed; a
torn trailing line — e.g. from a run killed mid-write — is left at the
cursor until its newline arrives (or is skipped with a warning if it
turns out to be malformed), never poisoning the whole store.

Only the orchestrating process writes (workers hand records back over
the dispatcher), so appends never interleave.
"""

from __future__ import annotations

import json
import logging
import re
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set

logger = logging.getLogger("repro.orchestrator.store")

#: Statuses that count as a *failed attempt* toward the retry budget.
#: ``exhausted`` markers are bookkeeping, not attempts, and ``ok`` ends
#: the cell's retry life entirely.
ATTEMPT_STATUSES = ("error", "violation")

#: Shard file naming: ``<stem>.shard-NN.jsonl`` next to the base path.
_SHARD_RE = re.compile(r"^(?P<stem>.+)\.shard-(?P<index>\d+)\.jsonl$")


def shard_stem(path) -> Optional[str]:
    """The base store stem if *path* is a shard file, else ``None``."""
    match = _SHARD_RE.match(Path(path).name)
    return match.group("stem") if match else None


class ResultStore:
    """A campaign's per-run records: one JSONL file, or N hash-keyed shards."""

    def __init__(self, path, shards: Optional[int] = None) -> None:
        self.path = Path(path)
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._configured_shards = shards
        # Incremental index state (extended from cursors, never rescanned).
        self._offsets: Dict[Path, int] = {}
        self._count = 0
        self._latest_any: Dict[str, Dict[str, Any]] = {}
        self._latest_ok: Dict[str, Dict[str, Any]] = {}
        self._attempts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #

    @property
    def shards(self) -> int:
        """Shard count: the configured value, else what is on disk, else 1."""
        if self._configured_shards is not None:
            return self._configured_shards
        detected = self._detected_shard_paths()
        return len(detected) if detected else 1

    def shard_path(self, index: int) -> Path:
        """The file holding shard *index* (``<stem>.shard-NN.jsonl``)."""
        return self.path.with_name(f"{self.path.stem}.shard-{index:02d}.jsonl")

    def _detected_shard_paths(self) -> List[Path]:
        if not self.path.parent.is_dir():
            return []
        return sorted(
            candidate
            for candidate in self.path.parent.glob(f"{self.path.stem}.shard-*.jsonl")
            if shard_stem(candidate) == self.path.stem
        )

    def reader_paths(self) -> List[Path]:
        """Every file holding records, legacy layout first (it is oldest).

        Recomputed on each call so shard files that appear while a
        follower polls are picked up without restarting it.
        """
        paths: List[Path] = []
        if self.path.exists():
            paths.append(self.path)
        for candidate in self._detected_shard_paths():
            if candidate not in paths:
                paths.append(candidate)
        return paths

    def _write_path_for(self, record: Dict[str, Any]) -> Path:
        shards = self.shards
        if shards <= 1 and not self._detected_shard_paths():
            return self.path
        spec_hash = str(record.get("spec_hash", ""))
        try:
            bucket = int(spec_hash, 16) % max(shards, 1)
        except ValueError:
            bucket = 0
        return self.shard_path(bucket)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one run record to its shard."""
        path = self._write_path_for(record)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a+b") as handle:
            # A run killed mid-write can leave a torn line without a
            # newline; terminate it so only that line is lost, not ours.
            if handle.tell() > 0:
                handle.seek(-1, 2)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(json.dumps(record, sort_keys=True).encode("utf-8"))
            handle.write(b"\n")
            handle.flush()

    # ------------------------------------------------------------------ #
    # Full-scan reads (load/report paths; unchanged semantics)
    # ------------------------------------------------------------------ #

    def load(self) -> List[Dict[str, Any]]:
        """All well-formed records; malformed lines are skipped."""
        return list(self.iter_records())

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Yield records lazily; a corrupt/truncated line is skipped with a warning.

        Shards are read in name order after the legacy file; per-hash
        append order is preserved because one hash maps to one file.
        """
        for path in self.reader_paths():
            with path.open("r", encoding="utf-8") as handle:
                for line_no, line in enumerate(handle, start=1):
                    record = self._parse_line(path, line_no, line)
                    if record is not None:
                        yield record

    def _parse_line(self, path: Path, line_no: int, line) -> Optional[Dict[str, Any]]:
        if isinstance(line, bytes):
            line = line.decode("utf-8", errors="replace")
        line = line.strip()
        if not line:
            return None
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            logger.warning(
                "%s:%d: skipping torn/malformed record (%d bytes) "
                "— likely a partial write from a killed run",
                path, line_no, len(line),
            )
            return None
        return record if isinstance(record, dict) else None

    # ------------------------------------------------------------------ #
    # Incremental index (cursor-extended, O(new bytes) per call)
    # ------------------------------------------------------------------ #

    def refresh(self) -> int:
        """Fold newly appended complete lines into the index; returns how many."""
        folded = 0
        for path in self.reader_paths():
            offset = self._offsets.get(path, 0)
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if size < offset:
                # The file shrank under us (truncated/rewritten): the
                # cursors are meaningless, rebuild the index from scratch.
                self._reset_index()
                return self.refresh()
            if size == offset:
                continue
            with path.open("rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
            # Only complete lines count; a torn tail stays at the cursor.
            end = chunk.rfind(b"\n")
            if end < 0:
                continue
            self._offsets[path] = offset + end + 1
            line_no = None  # line numbers are unknowable mid-file; report offsets
            for raw in chunk[: end + 1].splitlines():
                record = self._parse_line(path, line_no or 0, raw)
                if record is not None:
                    self._fold(record)
                    folded += 1
        return folded

    def _reset_index(self) -> None:
        self._offsets = {}
        self._count = 0
        self._latest_any = {}
        self._latest_ok = {}
        self._attempts = {}

    def _fold(self, record: Dict[str, Any]) -> None:
        self._count += 1
        spec_hash = record.get("spec_hash")
        if not spec_hash:
            return
        self._latest_any[spec_hash] = record
        status = record.get("status")
        if status == "ok":
            self._latest_ok[spec_hash] = record
        elif status in ATTEMPT_STATUSES:
            self._attempts[spec_hash] = self._attempts.get(spec_hash, 0) + 1

    def completed_hashes(self) -> Set[str]:
        """Spec hashes of successfully finished runs (the resume set).

        Failed runs are *not* included, so resuming a campaign retries
        them — up to the executor's attempt budget.
        """
        self.refresh()
        return set(self._latest_ok)

    def latest_by_hash(self) -> Dict[str, Dict[str, Any]]:
        """Authoritative record per spec hash, **ok-wins**.

        A successful record is never shadowed by a later failed retry:
        per hash, the most recent ``ok`` record wins; only hashes that
        never succeeded report their most recent record of any status.
        This is the same rule :func:`repro.orchestrator.aggregate.
        latest_ok_by_hash` applies, so ``campaign status`` and
        ``campaign report`` agree about every cell.
        """
        self.refresh()
        return {
            spec_hash: self._latest_ok.get(spec_hash, record)
            for spec_hash, record in self._latest_any.items()
        }

    def attempt_counts(self) -> Dict[str, int]:
        """Failed attempts per spec hash (``error``/``violation`` records).

        The executor's retry budget is enforced against these counts, so
        a deterministically failing cell stops being re-run once the
        budget is spent instead of burning a worker on every resume.
        """
        self.refresh()
        return dict(self._attempts)

    def record_count(self) -> int:
        """Number of well-formed records on disk (cursor-cached).

        Extends the cached count from the per-file byte cursors instead
        of rescanning, so serve-endpoint polling stays O(new records)
        over a campaign's lifetime instead of O(N²).
        """
        self.refresh()
        return self._count

    def __len__(self) -> int:
        return self.record_count()


def default_store_path(campaign_name: str, root: Optional[Path] = None) -> Path:
    """The conventional store location for a campaign: ``results/<name>.jsonl``."""
    root = Path(root) if root is not None else Path("results")
    return root / f"{campaign_name}.jsonl"


def events_path_for(store_path) -> Path:
    """The telemetry-events sidecar next to a store: ``<name>.events.jsonl``."""
    store_path = Path(store_path)
    return store_path.with_name(f"{store_path.stem}.events.jsonl")
