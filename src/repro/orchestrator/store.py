"""Append-only JSONL result store with resume support.

Every completed run becomes one JSON line: the run's spec hash, its
parameters, the seed actually used and the flattened metrics.  The store
is the campaign's durable state — :meth:`ResultStore.completed_hashes`
tells the executor which grid points already finished so a re-run of the
same campaign only executes what is missing.

Only the orchestrating process writes (workers hand records back over
the pool), so appends never interleave.  A truncated trailing line —
e.g. from a run killed mid-write — is skipped on load rather than
poisoning the whole store.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set

logger = logging.getLogger("repro.orchestrator.store")


class ResultStore:
    """One JSONL file holding a campaign's per-run records."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one run record."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a+b") as handle:
            # A run killed mid-write can leave a torn line without a
            # newline; terminate it so only that line is lost, not ours.
            if handle.tell() > 0:
                handle.seek(-1, 2)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(json.dumps(record, sort_keys=True).encode("utf-8"))
            handle.write(b"\n")
            handle.flush()

    def load(self) -> List[Dict[str, Any]]:
        """All well-formed records, in append order; malformed lines are skipped."""
        return list(self.iter_records())

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Yield records lazily; a corrupt/truncated line is skipped with a warning."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    logger.warning(
                        "%s:%d: skipping torn/malformed record (%d bytes) "
                        "— likely a partial write from a killed run",
                        self.path, line_no, len(line),
                    )
                    continue
                if isinstance(record, dict):
                    yield record

    def completed_hashes(self) -> Set[str]:
        """Spec hashes of successfully finished runs (the resume set).

        Failed runs are *not* included, so resuming a campaign retries
        them.
        """
        return {
            record["spec_hash"]
            for record in self.iter_records()
            if record.get("status") == "ok" and "spec_hash" in record
        }

    def latest_by_hash(self) -> Dict[str, Dict[str, Any]]:
        """Most recent record per spec hash (later appends win)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self.iter_records():
            spec_hash = record.get("spec_hash")
            if spec_hash:
                latest[spec_hash] = record
        return latest

    def record_count(self) -> int:
        """Number of well-formed records on disk."""
        return sum(1 for _ in self.iter_records())

    def __len__(self) -> int:
        return self.record_count()


def default_store_path(campaign_name: str, root: Optional[Path] = None) -> Path:
    """The conventional store location for a campaign: ``results/<name>.jsonl``."""
    root = Path(root) if root is not None else Path("results")
    return root / f"{campaign_name}.jsonl"


def events_path_for(store_path) -> Path:
    """The telemetry-events sidecar next to a store: ``<name>.events.jsonl``."""
    store_path = Path(store_path)
    return store_path.with_name(f"{store_path.stem}.events.jsonl")
