"""Fault-tolerant work-queue dispatcher for campaign cells.

The old executor fanned cells through ``Pool.imap_unordered``, which is
a barrier with no failure story: one wedged or OOM-killed worker stalled
the whole campaign forever, because the pool neither times a task out
nor re-queues the task a dead worker was holding.  This module replaces
it with an explicit dispatch loop:

- every worker is a plain ``multiprocessing.Process`` joined to the
  dispatcher by a private duplex :func:`~multiprocessing.Pipe` — no
  shared queue locks, so a worker killed mid-anything can never wedge
  its siblings;
- cells are **leased** to workers one at a time; a lease carries the
  cell's attempt number and, when a per-cell timeout is configured, a
  deadline;
- a worker that dies (crash, OOM kill) or blows its deadline loses the
  lease: the dispatcher SIGKILLs it if needed, re-queues the cell with
  exponential backoff, spawns a replacement worker, and emits
  ``worker_died`` / ``cell_retried`` events on the telemetry bus;
- retries are bounded: once a cell's attempts (including failed
  attempts recorded in the store by previous resumes) reach the budget,
  the dispatcher synthesizes a terminal ``status: "exhausted"`` record
  instead of re-queueing, so every grid point always ends ``ok``,
  ``error``/``violation``, or ``exhausted`` — never stalled.

Deterministic chaos injection for tests and the CI
``dispatcher-chaos-smoke`` job lives here too: the
``REPRO_CAMPAIGN_CHAOS`` environment variable carries JSON rules that
make matching cells crash their worker or hang on selected attempts,
*outside* the spec (so a chaos run's records are comparable to a clean
run's).
"""

from __future__ import annotations

import json
import logging
import os
import signal
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Deque, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.orchestrator.spec import RunSpec

logger = logging.getLogger("repro.orchestrator.dispatcher")

#: Dispatch loop tick: how long one wait() round blocks at most.
TICK_S = 0.05

#: Ceiling on the exponential retry backoff.
MAX_BACKOFF_S = 30.0

#: Environment variable carrying JSON chaos-injection rules (see
#: :func:`apply_chaos`).  Out-of-band by design: chaos never changes a
#: cell's spec hash, so chaos-run records are comparable to clean runs.
CHAOS_ENV = "REPRO_CAMPAIGN_CHAOS"


def exhausted_record(spec: RunSpec, attempts: int, reason: str) -> Dict[str, Any]:
    """The terminal record for a cell whose retry budget is spent."""
    return {
        "spec_hash": spec.spec_hash,
        "scenario": spec.scenario,
        "mode": spec.mode,
        "params": dict(spec.params),
        "options": dict(spec.options),
        "time_scale": spec.time_scale,
        "status": "exhausted",
        "attempts": attempts,
        "error": (
            f"retry budget exhausted after {attempts} failed attempt(s); "
            f"last failure: {reason}"
        ),
        "wall_time_s": 0.0,
    }


# ---------------------------------------------------------------------- #
# Chaos injection (worker side)
# ---------------------------------------------------------------------- #


def chaos_rules() -> List[Dict[str, Any]]:
    """Parse ``REPRO_CAMPAIGN_CHAOS``: a JSON list of rules, or []."""
    raw = os.environ.get(CHAOS_ENV)
    if not raw:
        return []
    try:
        rules = json.loads(raw)
    except ValueError:
        logger.warning("ignoring malformed %s", CHAOS_ENV)
        return []
    return [rule for rule in rules if isinstance(rule, dict)] if isinstance(rules, list) else []


def apply_chaos(spec: RunSpec, attempt: int) -> None:
    """Apply any matching chaos rule to this lease, in the worker.

    A rule is ``{"match": {param: value, ...}, "crash_attempts": N,
    "hang_attempts": N, "hang_s": seconds}``; it fires for cells whose
    params contain every ``match`` pair.  ``crash_attempts: N`` SIGKILLs
    the worker on the first N attempts (a real worker crash — no record,
    no goodbye); ``hang_attempts: N`` sleeps ``hang_s`` first, which a
    per-cell timeout then treats exactly like a wedged cell.
    """
    for rule in chaos_rules():
        match = rule.get("match", {})
        if not isinstance(match, Mapping):
            continue
        if any(spec.params.get(key) != value for key, value in match.items()):
            continue
        if attempt < int(rule.get("crash_attempts", 0)):
            os.kill(os.getpid(), signal.SIGKILL)
        if attempt < int(rule.get("hang_attempts", 0)):
            time.sleep(float(rule.get("hang_s", 3600.0)))


def _dispatch_worker_main(
    worker_id: int,
    conn,
    bus_queue,
    log_level: Optional[str],
    heartbeat_interval_s: float,
) -> None:
    """Worker loop: receive leases over the pipe, send back records."""
    from repro.orchestrator.executor import _campaign_worker_init, execute_run

    _campaign_worker_init(bus_queue, log_level, heartbeat_interval_s)
    while True:
        try:
            lease = conn.recv()
        except (EOFError, OSError):
            return
        if lease is None:
            return
        spec, attempt = lease
        apply_chaos(spec, attempt)
        record = execute_run(spec)
        try:
            conn.send(record)
        except (BrokenPipeError, OSError):
            return


# ---------------------------------------------------------------------- #
# Dispatcher side
# ---------------------------------------------------------------------- #


@dataclass
class _PendingCell:
    """A cell waiting for a worker (possibly in retry backoff)."""

    spec: RunSpec
    attempt: int      # failed attempts so far (store history + this run)
    ready_at: float   # monotonic time at which it may be leased


class _Worker:
    """One worker process plus its lease state."""

    def __init__(self, ctx, worker_id: int, spawn_args: tuple) -> None:
        self.id = worker_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_dispatch_worker_main,
            args=(worker_id, child_conn, *spawn_args),
            daemon=True,
            name=f"campaign-worker-{worker_id}",
        )
        self.process.start()
        child_conn.close()
        self.lease: Optional[_PendingCell] = None
        self.deadline: Optional[float] = None

    @property
    def idle(self) -> bool:
        return self.lease is None

    def assign(self, cell: _PendingCell, deadline: Optional[float]) -> None:
        self.conn.send((cell.spec, cell.attempt))
        self.lease = cell
        self.deadline = deadline

    def release(self) -> None:
        self.lease = None
        self.deadline = None

    def kill(self) -> None:
        """SIGKILL the process and reap it; safe on an already-dead worker."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def shutdown(self) -> None:
        """Ask the worker to exit; escalate to SIGKILL if it does not."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)
        self.kill()


class DispatchLoop:
    """Leases cells to worker processes until every cell is terminal.

    Parameters
    ----------
    processes:
        Worker process count.
    bus_queue:
        The telemetry bus's queue (or ``None``) — handed to workers so
        cell-started events and heartbeats stream out as before.
    emit:
        Orchestrator-side event sink (``TelemetryBus.emit`` or ``None``)
        for the dispatcher's own ``cell_retried``/``worker_died`` events.
    cell_timeout_s:
        Per-cell wall-clock deadline.  ``None`` disables timeouts (a
        worker crash is still recovered either way).
    max_attempts:
        Retry budget per cell, counting failed attempts recorded in the
        store by earlier resumes.  ``None``/0 retries forever.
    retry_backoff_s:
        Base of the exponential backoff between retries of one cell.
    """

    def __init__(
        self,
        processes: int,
        bus_queue=None,
        emit: Optional[Callable[[Dict[str, Any]], None]] = None,
        log_level: Optional[str] = None,
        heartbeat_interval_s: float = 5.0,
        cell_timeout_s: Optional[float] = None,
        max_attempts: Optional[int] = 3,
        retry_backoff_s: float = 0.5,
        mp_context=None,
    ) -> None:
        if processes < 1:
            raise ValueError("processes must be at least 1")
        if cell_timeout_s is not None and cell_timeout_s <= 0:
            raise ValueError("cell_timeout_s must be positive")
        import multiprocessing

        self.processes = processes
        self.cell_timeout_s = cell_timeout_s
        self.max_attempts = max_attempts
        self.retry_backoff_s = retry_backoff_s
        self._ctx = mp_context if mp_context is not None else multiprocessing.get_context()
        self._spawn_args = (bus_queue, log_level, heartbeat_interval_s)
        self._emit = emit
        self._workers: Dict[int, _Worker] = {}
        self._next_worker_id = 0

    # ------------------------------------------------------------------ #
    # Events
    # ------------------------------------------------------------------ #

    def _event(self, event: Dict[str, Any]) -> None:
        if self._emit is None:
            return
        try:
            self._emit(event)
        except Exception:  # noqa: BLE001 - telemetry must never kill dispatch
            logger.debug("dispatcher event emit failed", exc_info=True)

    # ------------------------------------------------------------------ #
    # Worker management
    # ------------------------------------------------------------------ #

    def _spawn(self) -> _Worker:
        worker = _Worker(self._ctx, self._next_worker_id, self._spawn_args)
        self._workers[worker.id] = worker
        self._next_worker_id += 1
        return worker

    def _idle_worker(self, want_more: bool) -> Optional[_Worker]:
        for worker in self._workers.values():
            if worker.idle and worker.process.is_alive():
                return worker
        if want_more and len(self._workers) < self.processes:
            return self._spawn()
        return None

    def _remove(self, worker: _Worker) -> None:
        worker.kill()
        self._workers.pop(worker.id, None)

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        specs: Sequence[RunSpec],
        base_attempts: Optional[Mapping[str, int]] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Dispatch *specs*; yield one terminal record per cell, completion order."""
        if not specs:
            return
        base = dict(base_attempts or {})
        now = time.monotonic()
        ready: Deque[_PendingCell] = deque(
            _PendingCell(spec, base.get(spec.spec_hash, 0), now) for spec in specs
        )
        for _ in range(min(self.processes, len(ready))):
            self._spawn()
        remaining = len(ready)
        try:
            while remaining > 0:
                self._assign(ready)
                for record in self._collect(ready):
                    remaining -= 1
                    yield record
        finally:
            for worker in list(self._workers.values()):
                worker.shutdown()
            self._workers.clear()

    def _assign(self, ready: Deque[_PendingCell]) -> None:
        now = time.monotonic()
        # Rotate through the deque once, leasing whatever is ready; cells
        # still in backoff go back to the tail.
        for _ in range(len(ready)):
            cell = ready.popleft()
            if cell.ready_at > now:
                ready.append(cell)
                continue
            worker = self._idle_worker(want_more=True)
            if worker is None:
                ready.appendleft(cell)
                return
            deadline = (
                now + self.cell_timeout_s if self.cell_timeout_s is not None else None
            )
            try:
                worker.assign(cell, deadline)
            except (BrokenPipeError, OSError):
                # The worker died while idle; retire it and try again on
                # the next pass — the cell was never leased.
                ready.appendleft(cell)
                self._event(self._worker_died_event(worker, "crashed", None))
                self._remove(worker)
                return

    def _collect(self, ready: Deque[_PendingCell]) -> List[Dict[str, Any]]:
        """One wait round plus a health scan; returns terminal records."""
        records: List[Dict[str, Any]] = []
        by_conn = {
            worker.conn: worker
            for worker in self._workers.values()
            if worker.lease is not None
        }
        if by_conn:
            for conn in connection_wait(list(by_conn), timeout=TICK_S):
                worker = by_conn[conn]
                try:
                    record = conn.recv()
                except (EOFError, OSError):
                    continue  # death: the health scan below reaps it
                worker.release()
                records.append(record)
        else:
            time.sleep(TICK_S)
        now = time.monotonic()
        for worker in list(self._workers.values()):
            if worker.lease is None:
                continue
            if not worker.process.is_alive():
                records.extend(self._reap(worker, ready, reason="crashed"))
            elif worker.deadline is not None and now >= worker.deadline:
                records.extend(self._reap(worker, ready, reason="timeout"))
        return records

    def _reap(
        self, worker: _Worker, ready: Deque[_PendingCell], reason: str
    ) -> List[Dict[str, Any]]:
        """Recover a dead or deadline-blown worker's lease."""
        cell = worker.lease
        assert cell is not None
        pid = worker.process.pid
        self._event(self._worker_died_event(worker, reason, cell.spec.spec_hash))
        logger.warning(
            "worker %d (pid %s) %s while running cell %s (attempt %d)",
            worker.id, pid, reason, cell.spec.spec_hash, cell.attempt + 1,
        )
        self._remove(worker)
        attempts = cell.attempt + 1
        if self.max_attempts and attempts >= self.max_attempts:
            failure = f"worker {reason} (pid {pid})"
            return [exhausted_record(cell.spec, attempts, failure)]
        backoff = min(
            self.retry_backoff_s * (2 ** max(attempts - 1, 0)), MAX_BACKOFF_S
        )
        self._event(
            {
                "type": "cell_retried",
                "spec_hash": cell.spec.spec_hash,
                "scenario": cell.spec.scenario,
                "params": dict(cell.spec.params),
                "attempt": attempts,
                "reason": reason,
                "backoff_s": round(backoff, 3),
            }
        )
        ready.append(_PendingCell(cell.spec, attempts, time.monotonic() + backoff))
        return []

    @staticmethod
    def _worker_died_event(
        worker: _Worker, reason: str, spec_hash: Optional[str]
    ) -> Dict[str, Any]:
        return {
            "type": "worker_died",
            "worker": worker.id,
            "pid": worker.process.pid,
            "reason": reason,
            "spec_hash": spec_hash,
        }
