"""Campaign telemetry bus: structured events from workers to live state.

PR 6 made a single run observable; this module makes the *campaign*
observable.  Worker processes stream structured events — cell started,
heartbeats — over a multiprocessing queue; the orchestrating process
adds the events only it can know (cell finished, invariant violations,
per-cell observability summaries) as records come back from the pool.
A :class:`TelemetryBus` drains the queue on a background thread into a
:class:`CampaignMonitor`, which maintains the live campaign state the
``repro campaign serve`` endpoints expose: progress, an ETA derived
from completed-cell wall times, per-dimension slice statistics and a
deduplicated violation ledger.

Every event the bus sees is also appended to an NDJSON sidecar file
(``results/<name>.events.jsonl`` by convention), which is what lets a
*separate* ``repro campaign serve`` process attach to a running
campaign: the server tails the sidecar while the campaign appends to
it.  Post-hoc, the same monitor state is rebuilt from the result store
alone via :func:`events_from_record` — live and replayed state agree by
construction because both funnel through the same event shapes.

Everything defaults off: a :class:`~repro.orchestrator.executor.
CampaignExecutor` without a bus runs the exact pre-telemetry path,
which is what the ``repro bench --bus-check`` overhead gate pins.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

logger = logging.getLogger("repro.orchestrator.telemetrybus")

#: Event types the bus understands (anything else is carried verbatim —
#: the monitor keeps unknown events in the ring so /events never lies).
EVENT_TYPES = (
    "campaign_started",
    "cell_started",
    "heartbeat",
    "cell_retried",
    "worker_died",
    "cell_finished",
    "violation",
    "obs_summary",
    "campaign_finished",
)

#: Terminal cell statuses (mirrors the executor's record statuses;
#: ``exhausted`` is the dispatcher's retry-budget-spent terminal).
TERMINAL_STATUSES = ("ok", "error", "violation", "exhausted")

#: Default seconds between worker heartbeats while a cell runs.
DEFAULT_HEARTBEAT_INTERVAL_S = 5.0

LOG_LEVELS = ("debug", "info", "warning", "error")


# ---------------------------------------------------------------------- #
# Worker side: emit into the queue, tag logs with the cell hash
# ---------------------------------------------------------------------- #

#: Callable delivering one event dict to the orchestrator (None = no bus).
_WORKER_SINK: Optional[Callable[[Dict[str, Any]], None]] = None
_WORKER_HEARTBEAT_S: float = DEFAULT_HEARTBEAT_INTERVAL_S

#: The cell currently executing in this process ("-" outside a cell);
#: worker log records are tagged with it (see :class:`CellTagFilter`).
_CURRENT_CELL: str = "-"


def install_worker_sink(
    sink: Optional[Callable[[Dict[str, Any]], None]],
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
) -> None:
    """Install the event delivery callable for this (worker) process."""
    global _WORKER_SINK, _WORKER_HEARTBEAT_S
    _WORKER_SINK = sink
    _WORKER_HEARTBEAT_S = max(float(heartbeat_interval_s), 0.01)


@contextmanager
def worker_sink(
    sink: Optional[Callable[[Dict[str, Any]], None]],
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
) -> Iterator[None]:
    """Scoped :func:`install_worker_sink` — the serial executor's path."""
    previous = (_WORKER_SINK, _WORKER_HEARTBEAT_S)
    install_worker_sink(sink, heartbeat_interval_s)
    try:
        yield
    finally:
        install_worker_sink(previous[0], previous[1])


def worker_emit(event: Dict[str, Any]) -> None:
    """Deliver one event to the bus, if any; never raises into the run."""
    sink = _WORKER_SINK
    if sink is None:
        return
    event.setdefault("ts", time.time())
    try:
        sink(event)
    except Exception:  # noqa: BLE001 - telemetry must never kill a cell
        logger.debug("telemetry emit failed", exc_info=True)


def current_cell_hash() -> str:
    """The spec hash of the cell executing in this process ("-" if none)."""
    return _CURRENT_CELL


@contextmanager
def cell_context(spec_hash: str) -> Iterator[None]:
    """Mark *spec_hash* as the running cell (log tagging, heartbeats)."""
    global _CURRENT_CELL
    previous = _CURRENT_CELL
    _CURRENT_CELL = spec_hash
    try:
        yield
    finally:
        _CURRENT_CELL = previous


class CellTagFilter(logging.Filter):
    """Stamps every record with the running cell's hash (``record.cell``)."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.cell = _CURRENT_CELL
        return True


def configure_worker_logging(level_name: str) -> None:
    """Install the campaign-worker stderr handler at *level_name*.

    Mirrors the CLI's ``configure_logging`` (one handler on the
    ``repro`` root, stderr only) but tags every record with the cell
    hash so interleaved multi-worker output stays attributable.
    """
    if level_name not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level_name!r}; expected one of {LOG_LEVELS}"
        )
    import sys

    root = logging.getLogger("repro")
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s [cell %(cell)s]: %(message)s")
    )
    handler.addFilter(CellTagFilter())
    root.handlers[:] = [handler]
    root.setLevel(getattr(logging, level_name.upper()))
    root.propagate = False


class _HeartbeatThread(threading.Thread):
    """Emits periodic heartbeats for one cell until stopped."""

    def __init__(self, spec_hash: str, interval_s: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{spec_hash[:8]}")
        self.spec_hash = spec_hash
        self.interval_s = interval_s
        self._stopped = threading.Event()

    def run(self) -> None:
        while not self._stopped.wait(self.interval_s):
            worker_emit(
                {"type": "heartbeat", "spec_hash": self.spec_hash, "pid": os.getpid()}
            )

    def stop(self) -> None:
        self._stopped.set()


def start_heartbeat(spec_hash: str) -> Optional[_HeartbeatThread]:
    """Start a heartbeat thread for *spec_hash* (None when no bus)."""
    if _WORKER_SINK is None:
        return None
    thread = _HeartbeatThread(spec_hash, _WORKER_HEARTBEAT_S)
    thread.start()
    return thread


# ---------------------------------------------------------------------- #
# Record -> events (shared by the live path and post-hoc store replay)
# ---------------------------------------------------------------------- #


def events_from_record(record: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """The bus events one finished result record implies.

    The live executor emits exactly these as each record returns from
    the pool, and post-hoc store replay synthesizes the same — which is
    why a monitor rebuilt from the store alone agrees with the live one
    on every cell, count and violation.
    """
    spec_hash = record.get("spec_hash")
    base = {
        "spec_hash": spec_hash,
        "scenario": record.get("scenario"),
        "params": dict(record.get("params", {})),
    }
    finished = {
        "type": "cell_finished",
        "status": record.get("status", "ok"),
        "wall_time_s": record.get("wall_time_s"),
        **base,
    }
    if record.get("error"):
        finished["error"] = record["error"]
    if record.get("attempts") is not None:
        finished["attempts"] = record["attempts"]
    events = [finished]
    for violation in record.get("violations", []):
        events.append(
            {
                "type": "violation",
                "spec_hash": spec_hash,
                "scenario": violation.get("scenario") or record.get("scenario"),
                "deployment": violation.get("deployment", ""),
                "check": violation.get("check", ""),
                "message": violation.get("message", ""),
            }
        )
    if record.get("observability"):
        events.append(
            {
                "type": "obs_summary",
                "spec_hash": spec_hash,
                "summaries": len(record["observability"]),
                "deployments": [
                    summary.get("deployment")
                    for summary in record["observability"]
                ],
            }
        )
    return events


# ---------------------------------------------------------------------- #
# The monitor: live campaign state
# ---------------------------------------------------------------------- #


class CampaignMonitor:
    """Aggregates bus events into the state the serve endpoints expose.

    Thread-safe: the bus drain thread writes while HTTP handler threads
    read.  All payload builders return plain JSON-serializable data.
    """

    def __init__(
        self,
        total: Optional[int] = None,
        campaign: Optional[str] = None,
        scenario: Optional[str] = None,
        mode: Optional[str] = None,
        events_capacity: int = 4096,
    ) -> None:
        self._lock = threading.RLock()
        self.campaign = campaign
        self.scenario = scenario
        self.mode = mode
        self.total = total
        self.workers: Optional[int] = None
        self.skipped = 0
        self.started_ts: Optional[float] = None
        self.finished = False
        self.cells: Dict[str, Dict[str, Any]] = {}
        self.retries_total = 0
        self.workers_died = 0
        self.violations: List[Dict[str, Any]] = []
        self._violation_keys: set = set()
        self.events: deque = deque(maxlen=events_capacity)
        self.events_seen = 0

    # ------------------------------------------------------------------ #
    # Event intake
    # ------------------------------------------------------------------ #

    def _cell(self, event: Mapping[str, Any]) -> Dict[str, Any]:
        spec_hash = event.get("spec_hash") or "?"
        cell = self.cells.get(spec_hash)
        if cell is None:
            cell = {
                "spec_hash": spec_hash,
                "scenario": event.get("scenario"),
                "params": dict(event.get("params") or {}),
                "status": "running",
                "wall_time_s": None,
                "violations": 0,
            }
            self.cells[spec_hash] = cell
        return cell

    def handle(self, event: Mapping[str, Any]) -> None:
        """Fold one event into the state (unknown types only hit the ring)."""
        etype = event.get("type")
        with self._lock:
            self.events_seen += 1
            stored = dict(event)
            # Live events are stamped at emit; replayed store records are
            # not — stamp the ring copy so /events lines always validate.
            stored.setdefault("ts", time.time())
            self.events.append(stored)
            if etype == "campaign_started":
                for attr in ("campaign", "scenario", "mode"):
                    if getattr(self, attr) is None and event.get(attr) is not None:
                        setattr(self, attr, event[attr])
                if self.total is None and event.get("total") is not None:
                    self.total = int(event["total"])
                if event.get("workers"):
                    self.workers = int(event["workers"])
                self.skipped = int(event.get("skipped", self.skipped) or 0)
                if self.started_ts is None:
                    self.started_ts = event.get("ts")
                self.finished = False
            elif etype == "cell_started":
                cell = self._cell(event)
                if cell["status"] not in TERMINAL_STATUSES:
                    cell["status"] = "running"
                cell["started_ts"] = event.get("ts")
                if event.get("pid") is not None:
                    cell["pid"] = event["pid"]
            elif etype == "heartbeat":
                cell = self._cell(event)
                cell["heartbeat_ts"] = event.get("ts")
            elif etype == "cell_retried":
                cell = self._cell(event)
                if cell["status"] not in TERMINAL_STATUSES:
                    cell["status"] = "running"
                cell["retries"] = int(event.get("attempt", 0))
                if event.get("reason"):
                    cell["retry_reason"] = event["reason"]
                self.retries_total += 1
            elif etype == "worker_died":
                self.workers_died += 1
            elif etype == "cell_finished":
                cell = self._cell(event)
                cell["status"] = event.get("status", "ok")
                cell["wall_time_s"] = event.get("wall_time_s")
                if event.get("scenario"):
                    cell["scenario"] = event["scenario"]
                if event.get("params"):
                    cell["params"] = dict(event["params"])
                if event.get("error"):
                    cell["error"] = event["error"]
                if event.get("ts") is not None:
                    cell["finished_ts"] = event["ts"]
            elif etype == "violation":
                key = (
                    event.get("spec_hash"),
                    event.get("check"),
                    event.get("deployment"),
                    event.get("message"),
                )
                if key not in self._violation_keys:
                    self._violation_keys.add(key)
                    entry = {
                        "spec_hash": event.get("spec_hash"),
                        "scenario": event.get("scenario"),
                        "deployment": event.get("deployment", ""),
                        "check": event.get("check", ""),
                        "message": event.get("message", ""),
                    }
                    if event.get("ts") is not None:
                        entry["ts"] = event["ts"]
                    self.violations.append(entry)
                    self._cell(event)["violations"] += 1
            elif etype == "obs_summary":
                cell = self._cell(event)
                cell["obs_summaries"] = event.get("summaries", 0)
            elif etype == "campaign_finished":
                self.finished = True

    def has_terminal(self, spec_hash: str) -> bool:
        """True when *spec_hash* already has a terminal record folded in."""
        with self._lock:
            cell = self.cells.get(spec_hash)
            return bool(cell and cell["status"] in TERMINAL_STATUSES)

    # ------------------------------------------------------------------ #
    # Payloads (repro.campaign/v1)
    # ------------------------------------------------------------------ #

    def status(self) -> Dict[str, Any]:
        """The `/status` payload: progress, ETA, slice stats."""
        from repro.obs.schema import CAMPAIGN_SCHEMA

        with self._lock:
            by_status: Dict[str, int] = {
                "ok": 0,
                "error": 0,
                "violation": 0,
                "exhausted": 0,
                "running": 0,
            }
            wall_times: List[float] = []
            for cell in self.cells.values():
                status = cell["status"]
                by_status[status] = by_status.get(status, 0) + 1
                # Exhausted markers carry no execution time; folding their
                # 0.0 into the mean would skew the ETA optimistic.
                if (
                    status in TERMINAL_STATUSES
                    and status != "exhausted"
                    and cell["wall_time_s"] is not None
                ):
                    wall_times.append(float(cell["wall_time_s"]))
            done = sum(by_status.get(name, 0) for name in TERMINAL_STATUSES)
            total = self.total if self.total is not None else len(self.cells)
            running = by_status.get("running", 0)
            pending = max(total - done - running, 0)
            mean_wall = (sum(wall_times) / len(wall_times)) if wall_times else None
            if self.finished or (total and done >= total):
                state = "finished"
                # An ETA of 0.0 is only meaningful once at least one cell
                # actually completed; a monitor marked finished before any
                # terminal record arrived (e.g. rebuilt from a store of
                # still-running cells) has no ETA to report yet.
                eta_s: Optional[float] = 0.0 if done else None
            else:
                state = "running" if running else "idle"
                if mean_wall is not None and total:
                    eta_s = round(
                        mean_wall * (total - done) / max(self.workers or 1, 1), 3
                    )
                else:
                    eta_s = None
            elapsed_s = (
                round(time.time() - self.started_ts, 3)
                if self.started_ts is not None and state != "finished"
                else None
            )
            return {
                "schema": CAMPAIGN_SCHEMA,
                "type": "status",
                "campaign": self.campaign,
                "scenario": self.scenario,
                "mode": self.mode,
                "state": state,
                "cells_total": total,
                "cells_done": done,
                "cells_ok": by_status.get("ok", 0),
                "cells_error": by_status.get("error", 0),
                "cells_violation": by_status.get("violation", 0),
                "cells_exhausted": by_status.get("exhausted", 0),
                "cells_running": running,
                "cells_pending": pending,
                "retries_total": self.retries_total,
                "workers_died": self.workers_died,
                "violations_total": len(self.violations),
                "progress": round(done / total, 4) if total else 0.0,
                "mean_cell_wall_s": round(mean_wall, 4) if mean_wall is not None else None,
                "eta_s": eta_s,
                "elapsed_s": elapsed_s,
                "workers": self.workers,
                "events_seen": self.events_seen,
                "slices": self._slices(),
            }

    def _slices(self) -> Dict[str, Dict[str, Dict[str, Any]]]:
        """Per-dimension slice stats over terminal cells (lock held)."""
        slices: Dict[str, Dict[str, Dict[str, Any]]] = {}
        for cell in self.cells.values():
            if cell["status"] not in TERMINAL_STATUSES:
                continue
            for axis, value in (cell.get("params") or {}).items():
                bucket = slices.setdefault(axis, {}).setdefault(
                    str(value),
                    {"cells": 0, "ok": 0, "failed": 0, "violations": 0, "wall_s": 0.0},
                )
                bucket["cells"] += 1
                if cell["status"] == "ok":
                    bucket["ok"] += 1
                else:
                    bucket["failed"] += 1
                bucket["violations"] += cell.get("violations", 0)
                if cell["wall_time_s"] is not None:
                    bucket["wall_s"] = round(
                        bucket["wall_s"] + float(cell["wall_time_s"]), 4
                    )
        for buckets in slices.values():
            for bucket in buckets.values():
                bucket["mean_wall_s"] = (
                    round(bucket.pop("wall_s") / bucket["cells"], 4)
                    if bucket["cells"]
                    else None
                )
        return slices

    def cells_payload(self) -> Dict[str, Any]:
        """The `/cells` payload: one entry per known cell, stable order."""
        from repro.obs.schema import CAMPAIGN_SCHEMA

        with self._lock:
            return {
                "schema": CAMPAIGN_SCHEMA,
                "type": "cells",
                "campaign": self.campaign,
                "cells": [dict(cell) for cell in self.cells.values()],
            }

    def violations_payload(self) -> Dict[str, Any]:
        """The `/violations` payload: the deduplicated ledger, in order."""
        from repro.obs.schema import CAMPAIGN_SCHEMA

        with self._lock:
            return {
                "schema": CAMPAIGN_SCHEMA,
                "type": "violations",
                "campaign": self.campaign,
                "violations": [dict(entry) for entry in self.violations],
            }

    def events_tail(self, limit: int = 100) -> List[Dict[str, Any]]:
        """The most recent *limit* events, oldest first."""
        with self._lock:
            tail = list(self.events)
        if limit >= 0:
            tail = tail[-limit:] if limit else []
        return tail


# ---------------------------------------------------------------------- #
# The bus: queue + drain thread + NDJSON sidecar
# ---------------------------------------------------------------------- #


class TelemetryBus:
    """Streams campaign events into a monitor and an NDJSON sidecar.

    The orchestrating process owns the bus: workers put events on
    :attr:`queue` (handed to them through the pool initializer), the
    executor emits its own events via :meth:`emit`, and a daemon thread
    drains everything in arrival order into the monitor and the events
    file.  :meth:`stop` is a barrier — it returns only after every
    queued event has been dispatched, so callers that stop the bus
    after the executor returns observe complete state.
    """

    def __init__(
        self,
        events_path: Optional[Path] = None,
        monitor: Optional[CampaignMonitor] = None,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ) -> None:
        self._ctx = multiprocessing.get_context()
        self.queue = self._ctx.Queue()
        self.monitor = monitor if monitor is not None else CampaignMonitor()
        self.events_path = Path(events_path) if events_path is not None else None
        self.heartbeat_interval_s = heartbeat_interval_s
        self._thread: Optional[threading.Thread] = None
        self._handle = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TelemetryBus":
        """Open the sidecar and start draining (idempotent)."""
        if self.running:
            return self
        if self.events_path is not None and self._handle is None:
            self.events_path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.events_path.open("a", encoding="utf-8")
        self._thread = threading.Thread(
            target=self._drain, daemon=True, name="telemetry-bus"
        )
        self._thread.start()
        return self

    def emit(self, event: Dict[str, Any]) -> None:
        """Enqueue one orchestrator-side event (stamped with wall time)."""
        event.setdefault("ts", time.time())
        self.queue.put(event)

    def emit_record(self, record: Mapping[str, Any]) -> None:
        """Emit the finished/violation/obs events one record implies."""
        for event in events_from_record(record):
            self.emit(event)

    def _drain(self) -> None:
        while True:
            event = self.queue.get()
            if event is None:
                break
            self._dispatch(event)

    def _dispatch(self, event: Dict[str, Any]) -> None:
        if self._handle is not None:
            try:
                self._handle.write(json.dumps(event, sort_keys=True) + "\n")
                self._handle.flush()
            except OSError:
                logger.warning("could not append to %s", self.events_path)
        try:
            self.monitor.handle(event)
        except Exception:  # noqa: BLE001 - a bad event must not kill the drain
            logger.exception("monitor rejected event %r", event.get("type"))

    def stop(self) -> None:
        """Drain everything already queued, then stop the thread."""
        if not self.running:
            return
        self.queue.put(None)
        self._thread.join()
        self._thread = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetryBus":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
