"""Campaign orchestrator: declarative sweeps, parallel execution, resumable results.

The subsystem has seven layers:

- :mod:`repro.orchestrator.spec` — scenario registry, campaign grids and
  hashable run descriptors;
- :mod:`repro.orchestrator.executor` — parallel fan-out with a serial
  fallback;
- :mod:`repro.orchestrator.dispatcher` — the fault-tolerant work queue
  behind the executor: cell leases, per-cell timeouts, bounded retry
  with backoff, worker-crash recovery;
- :mod:`repro.orchestrator.store` — append-only JSONL records keyed by
  spec hash (optionally sharded by hash), enabling resume;
- :mod:`repro.orchestrator.aggregate` — regrouping records into
  per-figure tables;
- :mod:`repro.orchestrator.telemetrybus` — structured worker events over
  a multiprocessing queue into live campaign state;
- :mod:`repro.orchestrator.serve` — ``repro campaign serve`` HTTP
  endpoints (status/cells/violations/events/metrics), live or post-hoc;
- :mod:`repro.orchestrator.ledger` — cross-run index over stores and the
  bench history, with sliding-window regression detection.
"""

from repro.orchestrator.dispatcher import DispatchLoop
from repro.orchestrator.executor import (
    CampaignExecutor,
    CampaignSummary,
    execute_run,
    flatten_comparison,
    flatten_report,
)
from repro.orchestrator.ledger import RunLedger, detect_regression
from repro.orchestrator.serve import CampaignServer, StoreFollower, monitor_from_store
from repro.orchestrator.spec import (
    SCENARIO_REGISTRY,
    CampaignSpec,
    RunSpec,
    build_scenario,
    derived_seed,
    register_scenario,
)
from repro.orchestrator.store import ResultStore, default_store_path, events_path_for
from repro.orchestrator.telemetrybus import (
    CampaignMonitor,
    TelemetryBus,
    events_from_record,
)

__all__ = [
    "SCENARIO_REGISTRY",
    "CampaignExecutor",
    "CampaignMonitor",
    "CampaignServer",
    "CampaignSpec",
    "CampaignSummary",
    "DispatchLoop",
    "ResultStore",
    "RunLedger",
    "RunSpec",
    "StoreFollower",
    "TelemetryBus",
    "build_scenario",
    "default_store_path",
    "derived_seed",
    "detect_regression",
    "events_from_record",
    "events_path_for",
    "execute_run",
    "flatten_comparison",
    "flatten_report",
    "monitor_from_store",
    "register_scenario",
]
