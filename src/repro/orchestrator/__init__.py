"""Campaign orchestrator: declarative sweeps, parallel execution, resumable results.

The subsystem has four layers:

- :mod:`repro.orchestrator.spec` — scenario registry, campaign grids and
  hashable run descriptors;
- :mod:`repro.orchestrator.executor` — multiprocessing fan-out with a
  serial fallback;
- :mod:`repro.orchestrator.store` — append-only JSONL records keyed by
  spec hash, enabling resume;
- :mod:`repro.orchestrator.aggregate` — regrouping records into
  per-figure tables.
"""

from repro.orchestrator.executor import (
    CampaignExecutor,
    CampaignSummary,
    execute_run,
    flatten_comparison,
    flatten_report,
)
from repro.orchestrator.spec import (
    SCENARIO_REGISTRY,
    CampaignSpec,
    RunSpec,
    build_scenario,
    derived_seed,
    register_scenario,
)
from repro.orchestrator.store import ResultStore, default_store_path

__all__ = [
    "SCENARIO_REGISTRY",
    "CampaignExecutor",
    "CampaignSpec",
    "CampaignSummary",
    "ResultStore",
    "RunSpec",
    "build_scenario",
    "default_store_path",
    "derived_seed",
    "execute_run",
    "flatten_comparison",
    "flatten_report",
    "register_scenario",
]
