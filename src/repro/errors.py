"""Domain error types shared across the package.

This module is intentionally import-free so any layer (traffic
primitives, workloads, experiments) can raise the shared types without
creating import cycles.
"""

from __future__ import annotations


class FaultSpecError(ValueError):
    """An invalid fault-injection specification.

    Raised by the fault subsystem's validators — event records, schedule
    specs, generator descriptions and the fault-profile registry — so
    callers can catch one domain error type.  Subclasses
    :class:`ValueError`, so pre-existing ``except ValueError`` handlers
    (the CLI, campaign loaders) keep working.
    """


class ObserveSpecError(ValueError):
    """An invalid observability specification.

    Raised by :meth:`repro.obs.config.ObserveSpec.from_spec` and the
    observability plane's validators — unknown spec keys, out-of-range
    sampling intervals, malformed export schemas — so callers can catch
    one domain error type.  Subclasses :class:`ValueError`, so
    pre-existing ``except ValueError`` handlers (the CLI, campaign
    loaders) keep working.
    """


class WorkloadSpecError(ValueError):
    """An invalid workload/traffic specification.

    Raised by every workload validator — size distributions (including
    :meth:`~repro.traffic.distributions.EmpiricalDistribution.from_cdf`),
    arrival models, flow models, schedules, generative/replay workload
    specs and the workload registry — so callers can catch one domain
    error type instead of mixed ``ValueError``/``AssertionError``.
    Subclasses :class:`ValueError`, so pre-existing ``except ValueError``
    handlers keep working.
    """


class FidelityError(ValueError):
    """An unsatisfiable fidelity-tier request.

    Raised by :mod:`repro.fidelity` when ``fidelity: fluid`` is asked of
    a scenario that admits no steady traffic segment (arrival-model or
    replay workloads, all-ramp schedules, horizons shorter than one
    calibration window) — ``auto`` silently stays packet-level in those
    cases instead.  Subclasses :class:`ValueError`, so pre-existing
    ``except ValueError`` handlers (the CLI, campaign loaders) keep
    working.
    """
