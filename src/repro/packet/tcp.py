"""The 20-byte (option-less) TCP header.

PayloadPark's prototype replays UDP traffic, but the mechanism is protocol
agnostic (§7 "Decoupling boundary"); we provide TCP so the decoupling
boundary ablation can include TCP flows.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

TCP_HEADER_LEN = 20

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20


@dataclass
class TcpHeader:
    """An option-less TCP header."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    checksum: int = 0
    urgent: int = 0

    HEADER_LEN = TCP_HEADER_LEN

    def __post_init__(self) -> None:
        for name in ("src_port", "dst_port"):
            port = getattr(self, name)
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port}")
        if not 0 <= self.seq <= 0xFFFFFFFF:
            raise ValueError(f"seq out of range: {self.seq}")
        if not 0 <= self.ack <= 0xFFFFFFFF:
            raise ValueError(f"ack out of range: {self.ack}")

    def to_bytes(self) -> bytes:
        """Serialize to the 20-byte wire format (data offset = 5 words)."""
        offset_flags = (5 << 12) | (self.flags & 0x3F)
        return struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "TcpHeader":
        """Parse the first 20 bytes of *data* as a TCP header."""
        if len(data) < TCP_HEADER_LEN:
            raise ValueError(f"TCP header needs {TCP_HEADER_LEN} bytes, got {len(data)}")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack("!HHIIHHHH", data[:TCP_HEADER_LEN])
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=offset_flags & 0x3F,
            window=window,
            checksum=checksum,
            urgent=urgent,
        )

    @property
    def is_syn(self) -> bool:
        """True when the SYN flag is set."""
        return bool(self.flags & FLAG_SYN)

    @property
    def is_fin(self) -> bool:
        """True when the FIN flag is set."""
        return bool(self.flags & FLAG_FIN)

    def copy(self) -> "TcpHeader":
        """Return an independent copy of this header."""
        return TcpHeader(
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=self.seq,
            ack=self.ack,
            flags=self.flags,
            window=self.window,
            checksum=self.checksum,
            urgent=self.urgent,
        )
