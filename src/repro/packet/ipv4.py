"""IPv4 addresses and the 20-byte (option-less) IPv4 header."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.packet.checksum import internet_checksum

IPV4_HEADER_LEN = 20
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17


@dataclass(frozen=True)
class IPv4Address:
    """A 32-bit IPv4 address stored as an integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 address out of range: {self.value:#x}")

    @classmethod
    def from_string(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation, e.g. ``10.0.0.1``."""
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"malformed IPv4 address: {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        """Decode 4 big-endian bytes."""
        if len(data) != 4:
            raise ValueError(f"IPv4 address must be 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def to_bytes(self) -> bytes:
        """Encode as 4 big-endian bytes."""
        return self.value.to_bytes(4, "big")

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ".".join(str(b) for b in raw)

    def in_subnet(self, network: "IPv4Address", prefix_len: int) -> bool:
        """Return True if this address lies within ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"invalid prefix length: {prefix_len}")
        if prefix_len == 0:
            return True
        mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
        return (self.value & mask) == (network.value & mask)


@dataclass
class IPv4Header:
    """An option-less IPv4 header.

    ``total_length`` covers the IPv4 header plus everything after it
    (L4 header and payload); callers must keep it consistent when they
    truncate or extend packets, which is exactly what the PayloadPark
    Split/Merge operations do.
    """

    src: IPv4Address
    dst: IPv4Address
    protocol: int = PROTO_UDP
    total_length: int = IPV4_HEADER_LEN
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    flags: int = 0
    fragment_offset: int = 0
    checksum: int = field(default=0)

    HEADER_LEN = IPV4_HEADER_LEN

    def to_bytes(self, recompute_checksum: bool = True) -> bytes:
        """Serialize to 20 bytes, recomputing the header checksum by default."""
        version_ihl = (4 << 4) | 5
        flags_fragment = ((self.flags & 0x7) << 13) | (self.fragment_offset & 0x1FFF)
        header_wo_checksum = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            self.dscp,
            self.total_length,
            self.identification,
            flags_fragment,
            self.ttl,
            self.protocol,
            0,
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        checksum = self.checksum
        if recompute_checksum:
            checksum = internet_checksum(header_wo_checksum)
            self.checksum = checksum
        return header_wo_checksum[:10] + struct.pack("!H", checksum) + header_wo_checksum[12:]

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Header":
        """Parse the first 20 bytes of *data* as an IPv4 header."""
        if len(data) < IPV4_HEADER_LEN:
            raise ValueError(f"IPv4 header needs {IPV4_HEADER_LEN} bytes, got {len(data)}")
        (
            version_ihl,
            dscp,
            total_length,
            identification,
            flags_fragment,
            ttl,
            protocol,
            checksum,
            src_raw,
            dst_raw,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:IPV4_HEADER_LEN])
        version = version_ihl >> 4
        if version != 4:
            raise ValueError(f"not an IPv4 header (version={version})")
        return cls(
            src=IPv4Address.from_bytes(src_raw),
            dst=IPv4Address.from_bytes(dst_raw),
            protocol=protocol,
            total_length=total_length,
            ttl=ttl,
            identification=identification,
            dscp=dscp,
            flags=(flags_fragment >> 13) & 0x7,
            fragment_offset=flags_fragment & 0x1FFF,
            checksum=checksum,
        )

    def decrement_ttl(self) -> bool:
        """Decrement the TTL; return False when the packet must be dropped."""
        if self.ttl <= 1:
            self.ttl = 0
            return False
        self.ttl -= 1
        return True

    def copy(self) -> "IPv4Header":
        """Return an independent copy of this header."""
        return IPv4Header(
            src=self.src,
            dst=self.dst,
            protocol=self.protocol,
            total_length=self.total_length,
            ttl=self.ttl,
            identification=self.identification,
            dscp=self.dscp,
            flags=self.flags,
            fragment_offset=self.fragment_offset,
            checksum=self.checksum,
        )
