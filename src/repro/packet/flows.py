"""5-tuple flow identities and deterministic flow generation.

The NFs in the paper (firewall ACLs, MazuNAT translation, Maglev hashing)
all key on the 5-tuple; the traffic generator synthesizes a configurable
number of distinct flows so those NFs exercise realistic table sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.packet.ipv4 import PROTO_TCP, PROTO_UDP, IPv4Address


@dataclass(frozen=True)
class FiveTuple:
    """The classic connection 5-tuple."""

    src_ip: IPv4Address
    dst_ip: IPv4Address
    protocol: int
    src_port: int
    dst_port: int

    def reversed(self) -> "FiveTuple":
        """Return the 5-tuple of the reverse direction of the flow."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            protocol=self.protocol,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )

    def stable_hash(self) -> int:
        """A deterministic 64-bit hash independent of Python's seeded hash().

        Maglev and the NAT need a hash that is stable across runs so that
        experiments are reproducible; Python's builtin ``hash`` on strings
        is salted per process, so we mix the fields ourselves (FNV-1a).
        """
        value = 0xCBF29CE484222325
        for part in (
            self.src_ip.value,
            self.dst_ip.value,
            self.protocol,
            self.src_port,
            self.dst_port,
        ):
            for shift in (0, 8, 16, 24):
                value ^= (part >> shift) & 0xFF
                value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return value

    def __str__(self) -> str:
        proto = {PROTO_UDP: "udp", PROTO_TCP: "tcp"}.get(self.protocol, str(self.protocol))
        return f"{self.src_ip}:{self.src_port} -> {self.dst_ip}:{self.dst_port} ({proto})"


class FlowGenerator:
    """Generate a deterministic population of 5-tuple flows.

    Parameters
    ----------
    flow_count:
        Number of distinct flows to cycle through.
    src_subnet / dst_subnet:
        Dotted-quad bases; flows spread source addresses across the
        source subnet and destinations across the destination subnet.
    protocol:
        IP protocol for every flow (UDP by default, as in the paper).
    base_src_port / base_dst_port:
        Starting L4 ports.
    """

    def __init__(
        self,
        flow_count: int = 1024,
        src_subnet: str = "10.1.0.0",
        dst_subnet: str = "10.2.0.0",
        protocol: int = PROTO_UDP,
        base_src_port: int = 10000,
        base_dst_port: int = 80,
    ) -> None:
        if flow_count <= 0:
            raise ValueError("flow_count must be positive")
        self.flow_count = flow_count
        self._src_base = IPv4Address.from_string(src_subnet).value
        self._dst_base = IPv4Address.from_string(dst_subnet).value
        self.protocol = protocol
        self.base_src_port = base_src_port
        self.base_dst_port = base_dst_port
        self._flows: Optional[List[FiveTuple]] = None

    def flows(self) -> List[FiveTuple]:
        """Return (and cache) the full flow population."""
        if self._flows is None:
            self._flows = [self._make_flow(i) for i in range(self.flow_count)]
        return self._flows

    def flow(self, index: int) -> FiveTuple:
        """Return flow *index* (mod the population size)."""
        return self.flows()[index % self.flow_count]

    def _make_flow(self, index: int) -> FiveTuple:
        src_ip = IPv4Address((self._src_base + (index % 65000) + 1) & 0xFFFFFFFF)
        dst_ip = IPv4Address((self._dst_base + (index % 250) + 1) & 0xFFFFFFFF)
        src_port = self.base_src_port + (index % 50000)
        dst_port = self.base_dst_port + (index % 16)
        return FiveTuple(
            src_ip=src_ip,
            dst_ip=dst_ip,
            protocol=self.protocol,
            src_port=src_port,
            dst_port=dst_port,
        )

    def round_robin(self) -> Iterator[FiveTuple]:
        """Yield flows forever in round-robin order."""
        flows = self.flows()
        index = 0
        while True:
            yield flows[index]
            index = (index + 1) % self.flow_count
