"""Flyweight packet templates: the traffic generators' pooled fast path.

``Packet.udp`` re-parses MAC and IPv4 address strings and re-validates
every header field for each generated frame, even though a traffic
generator emits millions of frames that differ only in size and flow.
:class:`FramePool` keeps one fully-built prototype :class:`Packet` per
flow (and per blacklist source) and clones it per frame: the immutable
pieces — :class:`~repro.packet.ethernet.MacAddress`,
:class:`~repro.packet.ipv4.IPv4Address`, payload byte slices — are
shared outright, mutable headers are duplicated with a ``__dict__`` copy
that skips ``__init__`` validation, and the two length fields that
depend on frame size are patched afterwards.

The pooled frames are byte-for-byte identical to what
:func:`repro.traffic.pktgen.build_udp_frame` produces (``tests/unit``
asserts wire-image equality), so the slow and fast generator paths are
interchangeable; checksums and tag CRCs are not precomputed here but
lazily, exactly where the reference path computes them.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.packet.ethernet import ETHERTYPE_IPV4, EthernetHeader, MacAddress
from repro.packet.ipv4 import PROTO_UDP, IPv4Address, IPv4Header
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES, Packet, _packet_ids
from repro.packet.udp import UdpHeader

#: Same reusable payload pattern the reference generator slices from
#: (see ``_PAYLOAD_PATTERN`` in :mod:`repro.traffic.pktgen`).
_PAYLOAD_PATTERN = bytes(range(256)) * 8

#: payload length -> payload bytes, shared by every pool in the process
#: (the pattern is deterministic, so slices are interchangeable).
_PAYLOAD_SLICES: Dict[int, bytes] = {}

#: Growth bound for the payload-slice memo; workloads draw sizes from
#: empirical distributions, so distinct lengths number in the hundreds.
_MAX_PAYLOAD_SLICES = 8192


def payload_slice(payload_len: int) -> bytes:
    """The deterministic payload of *payload_len* bytes, memoized.

    Byte-for-byte the payload :func:`repro.traffic.pktgen.build_udp_frame`
    produces: a slice of the repeating 0x00..0xFF pattern.
    """
    payload = _PAYLOAD_SLICES.get(payload_len)
    if payload is None:
        payload = _PAYLOAD_PATTERN[:payload_len]
        if len(payload) < payload_len:
            payload = (
                _PAYLOAD_PATTERN * (payload_len // len(_PAYLOAD_PATTERN) + 1)
            )[:payload_len]
        if len(_PAYLOAD_SLICES) >= _MAX_PAYLOAD_SLICES:
            _PAYLOAD_SLICES.clear()
        _PAYLOAD_SLICES[payload_len] = payload
    return payload


class _FrameTemplate:
    """One prototype frame: pre-built headers for a (flow, src) identity."""

    __slots__ = ("eth", "ip", "l4")

    def __init__(self, eth: EthernetHeader, ip: IPv4Header, l4: UdpHeader) -> None:
        self.eth = eth
        self.ip = ip
        self.l4 = l4

    def build(self, size: int) -> Packet:
        """Clone the prototype into a fresh frame of *size* wire bytes."""
        if size < ETHERNET_UDP_HEADER_BYTES:
            size = ETHERNET_UDP_HEADER_BYTES
        payload_len = size - ETHERNET_UDP_HEADER_BYTES
        udp_len = UdpHeader.HEADER_LEN + payload_len

        eth = object.__new__(EthernetHeader)
        eth.__dict__.update(self.eth.__dict__)
        ip = object.__new__(IPv4Header)
        ip.__dict__.update(self.ip.__dict__)
        ip.total_length = IPv4Header.HEADER_LEN + udp_len
        l4 = object.__new__(UdpHeader)
        l4.__dict__.update(self.l4.__dict__)
        l4.length = udp_len

        packet = object.__new__(Packet)
        packet.eth = eth
        packet.ip = ip
        packet.l4 = l4
        packet.payload = payload_slice(payload_len)
        packet.pp = None
        packet.meta = {}
        packet.packet_id = next(_packet_ids)
        return packet


class FramePool:
    """Builds UDP frames from per-flow templates (the pooled fast path).

    Parameters
    ----------
    src_mac / dst_mac:
        Ethernet addresses stamped on every frame; parsed once.
    max_templates:
        Bound on the template dictionary.  Flow-churn workloads mint new
        5-tuples forever; when the bound is hit the pool resets rather
        than grow without limit (templates are cheap to rebuild).
    """

    def __init__(self, src_mac: str, dst_mac: str, max_templates: int = 65_536) -> None:
        self._src_mac = MacAddress.from_string(src_mac)
        self._dst_mac = MacAddress.from_string(dst_mac)
        self._templates: Dict[Tuple, _FrameTemplate] = {}
        self._max_templates = max_templates
        self.templates_built = 0

    def frame(self, size: int, flow, src_ip: Optional[IPv4Address] = None) -> Packet:
        """Build one UDP frame of *size* wire bytes for *flow*.

        *src_ip* (an already-parsed :class:`IPv4Address`) overrides the
        flow's source for blacklist steering, mirroring the ``src_ip``
        string argument of :func:`~repro.traffic.pktgen.build_udp_frame`.
        Overridden sources are one-shot (the blacklist generator walks
        its subnet), so they are built directly instead of cached.
        """
        if src_ip is not None:
            return self._make_template(flow, src_ip).build(size)
        key = (flow.src_ip.value, flow.dst_ip.value, flow.src_port, flow.dst_port)
        template = self._templates.get(key)
        if template is None:
            template = self._make_template(flow, src_ip)
            if len(self._templates) >= self._max_templates:
                self._templates.clear()
            self._templates[key] = template
        return template.build(size)

    def _make_template(self, flow, src_ip: Optional[IPv4Address]) -> _FrameTemplate:
        self.templates_built += 1
        return _FrameTemplate(
            eth=EthernetHeader(
                dst=self._dst_mac, src=self._src_mac, ethertype=ETHERTYPE_IPV4
            ),
            ip=IPv4Header(
                src=src_ip if src_ip is not None else flow.src_ip,
                dst=flow.dst_ip,
                protocol=PROTO_UDP,
                # Patched per frame in _FrameTemplate.build.
                total_length=IPv4Header.HEADER_LEN + UdpHeader.HEADER_LEN,
            ),
            l4=UdpHeader(
                src_port=flow.src_port,
                dst_port=flow.dst_port,
                length=UdpHeader.HEADER_LEN,
            ),
        )
