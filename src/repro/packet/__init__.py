"""Packet substrate: header codecs, packets, checksums, PCAP and flows.

The PayloadPark prototype operates on Ethernet/IPv4/UDP (and TCP) frames.
This subpackage provides byte-accurate header encode/decode, a ``Packet``
container used throughout the simulator, Internet checksums and the CRC
used to validate the PayloadPark tag, a minimal libpcap-format reader and
writer (the paper replays PCAP files), and 5-tuple flow helpers.
"""

from repro.packet.checksum import internet_checksum, verify_internet_checksum
from repro.packet.crc import crc16, crc32
from repro.packet.ethernet import EthernetHeader, MacAddress
from repro.packet.flows import FiveTuple, FlowGenerator
from repro.packet.ipv4 import IPv4Address, IPv4Header
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES, Packet
from repro.packet.pcap import PcapReader, PcapWriter, read_pcap, write_pcap
from repro.packet.tcp import TcpHeader
from repro.packet.udp import UdpHeader

__all__ = [
    "EthernetHeader",
    "MacAddress",
    "IPv4Header",
    "IPv4Address",
    "UdpHeader",
    "TcpHeader",
    "Packet",
    "ETHERNET_UDP_HEADER_BYTES",
    "internet_checksum",
    "verify_internet_checksum",
    "crc16",
    "crc32",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
    "FiveTuple",
    "FlowGenerator",
]
