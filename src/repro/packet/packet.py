"""The ``Packet`` container used throughout the simulator.

A :class:`Packet` keeps its protocol headers in parsed form (Ethernet,
IPv4, UDP/TCP) next to a raw payload.  The PayloadPark dataplane attaches
a PayloadPark header between the L4 header and the payload; the packet
only stores a reference to that header object, so the switch code in
:mod:`repro.core` can add and remove it without re-serializing the whole
frame.  ``to_bytes``/``from_bytes`` give byte-exact wire images, which the
functional-equivalence experiment (§6.2.6) compares between PayloadPark
and baseline deployments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.packet.ethernet import ETHERTYPE_IPV4, EthernetHeader, MacAddress
from repro.packet.ipv4 import PROTO_TCP, PROTO_UDP, IPv4Address, IPv4Header
from repro.packet.tcp import TcpHeader
from repro.packet.udp import UdpHeader

#: Ethernet (14) + IPv4 (20) + UDP (8): the header/payload decoupling
#: boundary and the per-packet "useful bytes" unit used for goodput.
ETHERNET_UDP_HEADER_BYTES = 42

_packet_ids = itertools.count()

#: Resolved on first use by :meth:`Packet.five_tuple` (import-cycle guard).
_FiveTuple = None


@dataclass
class Packet:
    """A parsed network packet plus simulator metadata.

    Attributes
    ----------
    eth:
        Ethernet header (always present).
    ip:
        IPv4 header, or ``None`` for non-IP frames.
    l4:
        UDP or TCP header, or ``None``.
    payload:
        Application payload bytes (after the L4 header).
    pp:
        The PayloadPark header attached by the switch's Split stage, or
        ``None``.  Stored by reference; it contributes
        ``pp.byte_length()`` bytes to the wire length while attached.
    meta:
        Free-form simulation metadata (ingress port, timestamps, …).
    packet_id:
        Monotonic identifier assigned at construction, used for
        latency bookkeeping and functional-equivalence matching.
    """

    eth: EthernetHeader
    ip: Optional[IPv4Header] = None
    l4: Optional[Union[UdpHeader, TcpHeader]] = None
    payload: bytes = b""
    pp: Optional[Any] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def udp(
        cls,
        src_mac: str = "02:00:00:00:00:01",
        dst_mac: str = "02:00:00:00:00:02",
        src_ip: str = "10.0.0.1",
        dst_ip: str = "10.0.0.2",
        src_port: int = 1234,
        dst_port: int = 5678,
        payload: bytes = b"",
        total_size: Optional[int] = None,
    ) -> "Packet":
        """Build a UDP packet.

        If *total_size* is given the payload is padded (with a repeating
        pattern) or the caller-supplied payload truncated so the full
        frame is exactly ``total_size`` bytes, mirroring how PktGen
        produces fixed-size packets.
        """
        if total_size is not None:
            if total_size < ETHERNET_UDP_HEADER_BYTES:
                raise ValueError(
                    f"total_size must be >= {ETHERNET_UDP_HEADER_BYTES}, got {total_size}"
                )
            payload_len = total_size - ETHERNET_UDP_HEADER_BYTES
            payload = _pad_payload(payload, payload_len)
        udp_len = UdpHeader.HEADER_LEN + len(payload)
        ip_len = IPv4Header.HEADER_LEN + udp_len
        packet = cls(
            eth=EthernetHeader(
                dst=MacAddress.from_string(dst_mac),
                src=MacAddress.from_string(src_mac),
                ethertype=ETHERTYPE_IPV4,
            ),
            ip=IPv4Header(
                src=IPv4Address.from_string(src_ip),
                dst=IPv4Address.from_string(dst_ip),
                protocol=PROTO_UDP,
                total_length=ip_len,
            ),
            l4=UdpHeader(src_port=src_port, dst_port=dst_port, length=udp_len),
            payload=payload,
        )
        return packet

    @classmethod
    def tcp(
        cls,
        src_mac: str = "02:00:00:00:00:01",
        dst_mac: str = "02:00:00:00:00:02",
        src_ip: str = "10.0.0.1",
        dst_ip: str = "10.0.0.2",
        src_port: int = 1234,
        dst_port: int = 80,
        payload: bytes = b"",
        flags: int = 0,
    ) -> "Packet":
        """Build an option-less TCP packet."""
        ip_len = IPv4Header.HEADER_LEN + TcpHeader.HEADER_LEN + len(payload)
        return cls(
            eth=EthernetHeader(
                dst=MacAddress.from_string(dst_mac),
                src=MacAddress.from_string(src_mac),
                ethertype=ETHERTYPE_IPV4,
            ),
            ip=IPv4Header(
                src=IPv4Address.from_string(src_ip),
                dst=IPv4Address.from_string(dst_ip),
                protocol=PROTO_TCP,
                total_length=ip_len,
            ),
            l4=TcpHeader(src_port=src_port, dst_port=dst_port, flags=flags),
            payload=payload,
        )

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #

    @property
    def header_length(self) -> int:
        """Bytes of protocol headers (Ethernet + IPv4 + L4), excluding PayloadPark."""
        length = EthernetHeader.HEADER_LEN
        if self.ip is not None:
            length += IPv4Header.HEADER_LEN
        if self.l4 is not None:
            length += self.l4.HEADER_LEN
        return length

    @property
    def payload_length(self) -> int:
        """Bytes of application payload currently carried in the frame."""
        return len(self.payload)

    @property
    def wire_length(self) -> int:
        """Total bytes this frame occupies on a link right now.

        Includes the PayloadPark header if attached.  After Split the
        payload has been truncated, so the wire length shrinks — that is
        the whole point of PayloadPark.  (Computed inline rather than
        via :attr:`header_length`: this property runs several times per
        simulated hop.)
        """
        length = EthernetHeader.HEADER_LEN + len(self.payload)
        if self.ip is not None:
            length += IPv4Header.HEADER_LEN
        l4 = self.l4
        if l4 is not None:
            length += l4.HEADER_LEN
        pp = self.pp
        if pp is not None:
            length += pp.byte_length()
        return length

    @property
    def useful_bytes(self) -> int:
        """Bytes of useful information for goodput accounting.

        The paper counts the Ethernet+IPv4+UDP header (42 bytes) as the
        useful part of each packet, because that is all a shallow NF
        examines.  Packets without an L4 header count their actual header
        bytes.
        """
        return min(self.header_length, ETHERNET_UDP_HEADER_BYTES)

    # ------------------------------------------------------------------ #
    # Flow identity
    # ------------------------------------------------------------------ #

    def five_tuple(self):
        """Return ``(src_ip, dst_ip, proto, src_port, dst_port)`` or ``None``.

        Imported lazily (then memoized at module level) to avoid a cycle
        with :mod:`repro.packet.flows`.
        """
        global _FiveTuple
        FiveTuple = _FiveTuple
        if FiveTuple is None:
            from repro.packet.flows import FiveTuple

            _FiveTuple = FiveTuple
        if self.ip is None or self.l4 is None:
            return None
        return FiveTuple(
            src_ip=self.ip.src,
            dst_ip=self.ip.dst,
            protocol=self.ip.protocol,
            src_port=self.l4.src_port,
            dst_port=self.l4.dst_port,
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        """Serialize the frame to its exact wire image.

        Header length fields are *not* silently fixed up: the simulator
        keeps them consistent explicitly (Split/Merge adjust them), so a
        mismatch is a bug we want tests to catch.
        """
        parts = [self.eth.to_bytes()]
        if self.ip is not None:
            parts.append(self.ip.to_bytes())
        if self.l4 is not None:
            parts.append(self.l4.to_bytes())
        if self.pp is not None:
            parts.append(self.pp.to_bytes())
        parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        """Parse a wire image into a Packet (Ethernet, then IPv4, then L4).

        Unknown ethertypes or IP protocols leave the remaining bytes in
        ``payload``.  The PayloadPark header is not parsed here — on the
        wire it is indistinguishable from payload to anything that is not
        PayloadPark-aware, which is what makes the optimization
        transparent; the switch re-attaches it via
        :meth:`repro.core.header.PayloadParkHeader.from_bytes`.
        """
        eth = EthernetHeader.from_bytes(data)
        offset = EthernetHeader.HEADER_LEN
        ip = None
        l4: Optional[Union[UdpHeader, TcpHeader]] = None
        if eth.ethertype == ETHERTYPE_IPV4 and len(data) >= offset + IPv4Header.HEADER_LEN:
            ip = IPv4Header.from_bytes(data[offset:])
            offset += IPv4Header.HEADER_LEN
            if ip.protocol == PROTO_UDP and len(data) >= offset + UdpHeader.HEADER_LEN:
                l4 = UdpHeader.from_bytes(data[offset:])
                offset += UdpHeader.HEADER_LEN
            elif ip.protocol == PROTO_TCP and len(data) >= offset + TcpHeader.HEADER_LEN:
                l4 = TcpHeader.from_bytes(data[offset:])
                offset += TcpHeader.HEADER_LEN
        return cls(eth=eth, ip=ip, l4=l4, payload=data[offset:])

    # ------------------------------------------------------------------ #
    # Mutation helpers used by the dataplane
    # ------------------------------------------------------------------ #

    def park_leading_payload(self, parked_bytes: int) -> bytes:
        """Remove and return the leading *parked_bytes* of the payload.

        Length fields in the IPv4 and UDP headers are adjusted so the
        truncated frame is self-consistent on the wire.
        """
        if parked_bytes < 0 or parked_bytes > len(self.payload):
            raise ValueError(
                f"cannot park {parked_bytes} bytes of a {len(self.payload)}-byte payload"
            )
        parked = self.payload[:parked_bytes]
        self.payload = self.payload[parked_bytes:]
        self._adjust_lengths(-parked_bytes)
        return parked

    def restore_leading_payload(self, parked: bytes) -> None:
        """Prepend previously parked bytes back onto the payload."""
        self.payload = parked + self.payload
        self._adjust_lengths(len(parked))

    def _adjust_lengths(self, delta: int) -> None:
        """Apply *delta* bytes to the IPv4 total length and UDP length fields."""
        if self.ip is not None:
            self.ip.total_length += delta
        if isinstance(self.l4, UdpHeader):
            self.l4.length += delta

    def copy(self) -> "Packet":
        """Deep-enough copy: headers are copied, payload bytes are shared.

        ``bytes`` objects are immutable so sharing them is safe; header
        objects are mutable (NFs rewrite them) and therefore copied.
        """
        return Packet(
            eth=self.eth.copy(),
            ip=self.ip.copy() if self.ip is not None else None,
            l4=self.l4.copy() if self.l4 is not None else None,
            payload=self.payload,
            pp=self.pp.copy() if self.pp is not None else None,
            meta=dict(self.meta),
            packet_id=self.packet_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        proto = type(self.l4).__name__ if self.l4 is not None else "raw"
        return (
            f"Packet(id={self.packet_id}, {proto}, wire={self.wire_length}B, "
            f"payload={len(self.payload)}B, pp={'yes' if self.pp else 'no'})"
        )


def _pad_payload(payload: bytes, target_len: int) -> bytes:
    """Pad or truncate *payload* to exactly *target_len* bytes."""
    if len(payload) >= target_len:
        return payload[:target_len]
    pattern = b"\xab\xcd\xef\x01"
    needed = target_len - len(payload)
    filler = (pattern * (needed // len(pattern) + 1))[:needed]
    return payload + filler
