"""Ethernet II framing: MAC addresses and the 14-byte Ethernet header."""

from __future__ import annotations

import struct
from dataclasses import dataclass

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100
ETHERNET_HEADER_LEN = 14


@dataclass(frozen=True)
class MacAddress:
    """A 48-bit IEEE 802 MAC address.

    The value is stored as an integer; helpers convert to and from the
    canonical colon-separated string and the 6-byte wire format.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFFFFFF:
            raise ValueError(f"MAC address out of range: {self.value:#x}")

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` (case-insensitive) into a MacAddress."""
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"malformed MAC address: {text!r}")
        value = 0
        for part in parts:
            byte = int(part, 16)
            if not 0 <= byte <= 0xFF:
                raise ValueError(f"malformed MAC address: {text!r}")
            value = (value << 8) | byte
        return cls(value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MacAddress":
        """Decode a 6-byte wire-format MAC address."""
        if len(data) != 6:
            raise ValueError(f"MAC address must be 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def to_bytes(self) -> bytes:
        """Encode as 6 big-endian bytes."""
        return self.value.to_bytes(6, "big")

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ":".join(f"{b:02x}" for b in raw)

    @property
    def is_broadcast(self) -> bool:
        """True for ff:ff:ff:ff:ff:ff."""
        return self.value == 0xFFFFFFFFFFFF

    @property
    def is_multicast(self) -> bool:
        """True when the least-significant bit of the first octet is set."""
        return bool((self.value >> 40) & 0x01)


BROADCAST_MAC = MacAddress(0xFFFFFFFFFFFF)


@dataclass
class EthernetHeader:
    """Ethernet II header (destination, source, ethertype)."""

    dst: MacAddress
    src: MacAddress
    ethertype: int = ETHERTYPE_IPV4

    HEADER_LEN = ETHERNET_HEADER_LEN

    def to_bytes(self) -> bytes:
        """Serialize to the 14-byte wire format."""
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack("!H", self.ethertype)

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthernetHeader":
        """Parse the first 14 bytes of *data* as an Ethernet II header."""
        if len(data) < ETHERNET_HEADER_LEN:
            raise ValueError(
                f"Ethernet header needs {ETHERNET_HEADER_LEN} bytes, got {len(data)}"
            )
        dst = MacAddress.from_bytes(data[0:6])
        src = MacAddress.from_bytes(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst=dst, src=src, ethertype=ethertype)

    def swap_addresses(self) -> None:
        """Swap source and destination MAC addresses in place.

        This is exactly what the paper's MAC-swapper NF does.
        """
        self.dst, self.src = self.src, self.dst

    def copy(self) -> "EthernetHeader":
        """Return an independent copy of this header."""
        return EthernetHeader(dst=self.dst, src=self.src, ethertype=self.ethertype)
