"""Minimal libpcap-format (``.pcap``) reader and writer.

The paper replays PCAP files that reproduce the Benson et al. enterprise
datacenter packet-size distribution, and validates functional equivalence
by diffing PCAPs captured with DPDK-pdump.  This module provides just
enough of the classic (non-ng) pcap format to support both uses without
any external dependency.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_VERSION_MAJOR = 2
PCAP_VERSION_MINOR = 4
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass
class PcapRecord:
    """One captured frame: a timestamp (seconds, microseconds) and bytes."""

    ts_sec: int
    ts_usec: int
    data: bytes

    @property
    def timestamp(self) -> float:
        """Timestamp in (float) seconds."""
        return self.ts_sec + self.ts_usec / 1_000_000.0


class PcapWriter:
    """Write frames to a classic little-endian pcap file."""

    def __init__(self, path: Union[str, Path], snaplen: int = 65535) -> None:
        self._path = Path(path)
        self._snaplen = snaplen
        self._file = open(self._path, "wb")
        self._file.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC,
                PCAP_VERSION_MAJOR,
                PCAP_VERSION_MINOR,
                0,  # thiszone
                0,  # sigfigs
                snaplen,
                LINKTYPE_ETHERNET,
            )
        )

    def write(self, data: bytes, timestamp: float = 0.0) -> None:
        """Append one frame with the given timestamp (seconds)."""
        ts_sec = int(timestamp)
        ts_usec = int(round((timestamp - ts_sec) * 1_000_000))
        captured = data[: self._snaplen]
        self._file.write(_RECORD_HEADER.pack(ts_sec, ts_usec, len(captured), len(data)))
        self._file.write(captured)

    def close(self) -> None:
        """Flush and close the file."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PcapReader:
    """Read frames from a classic pcap file (either byte order)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._file = open(self._path, "rb")
        header = self._file.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise ValueError(f"{self._path} is not a pcap file (truncated header)")
        magic_le = struct.unpack("<I", header[:4])[0]
        if magic_le == PCAP_MAGIC:
            self._endian = "<"
        elif magic_le == PCAP_MAGIC_SWAPPED:
            self._endian = ">"
        else:
            raise ValueError(f"{self._path} is not a pcap file (bad magic {magic_le:#x})")
        fields = struct.unpack(self._endian + "IHHiIII", header)
        self.snaplen = fields[5]
        self.linktype = fields[6]

    def __iter__(self) -> Iterator[PcapRecord]:
        record_struct = struct.Struct(self._endian + "IIII")
        while True:
            header = self._file.read(record_struct.size)
            if len(header) < record_struct.size:
                return
            ts_sec, ts_usec, incl_len, _orig_len = record_struct.unpack(header)
            data = self._file.read(incl_len)
            if len(data) < incl_len:
                return
            yield PcapRecord(ts_sec=ts_sec, ts_usec=ts_usec, data=data)

    def close(self) -> None:
        """Close the underlying file."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_pcap(path: Union[str, Path], frames: Iterable[Tuple[float, bytes]]) -> int:
    """Write ``(timestamp, frame_bytes)`` pairs to *path*; return the count."""
    count = 0
    with PcapWriter(path) as writer:
        for timestamp, data in frames:
            writer.write(data, timestamp)
            count += 1
    return count


def read_pcap(path: Union[str, Path]) -> List[PcapRecord]:
    """Read every record of *path* into memory."""
    with PcapReader(path) as reader:
        return list(reader)
