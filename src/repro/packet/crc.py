"""CRC implementations used by the PayloadPark tag validation.

The PayloadPark header carries a 48-bit tag composed of a table index, a
generation (clock) number and a CRC.  The CRC lets the Merge stage reject
corrupted or forged tags before touching the lookup table.  Tofino exposes
hardware CRC units; here we provide table-driven CRC-16/CCITT and CRC-32
(IEEE 802.3) implementations with the same observable behaviour.
"""

from __future__ import annotations

from typing import List

_CRC16_POLY = 0x1021  # CRC-16/CCITT-FALSE
_CRC32_POLY = 0xEDB88320  # reflected IEEE 802.3 polynomial


def _build_crc16_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


def _build_crc32_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC32_POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_CRC16_TABLE = _build_crc16_table()
_CRC32_TABLE = _build_crc32_table()


def crc16(data: bytes, initial: int = 0xFFFF) -> int:
    """Compute CRC-16/CCITT-FALSE of *data*.

    Parameters
    ----------
    data:
        Input bytes.
    initial:
        Initial register value (``0xFFFF`` for CCITT-FALSE).
    """
    crc = initial & 0xFFFF
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def crc32(data: bytes, initial: int = 0xFFFFFFFF) -> int:
    """Compute CRC-32 (IEEE 802.3, reflected) of *data*."""
    crc = initial & 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _CRC32_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF
