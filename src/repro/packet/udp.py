"""The 8-byte UDP header.

The paper uses the UDP header as the unit of useful information when
measuring goodput, and the Ethernet+IPv4+UDP header stack (42 bytes) as
the header/payload decoupling boundary.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

UDP_HEADER_LEN = 8


@dataclass
class UdpHeader:
    """A UDP header.  ``length`` covers the UDP header plus its payload."""

    src_port: int
    dst_port: int
    length: int = UDP_HEADER_LEN
    checksum: int = 0

    HEADER_LEN = UDP_HEADER_LEN

    def __post_init__(self) -> None:
        for name in ("src_port", "dst_port"):
            port = getattr(self, name)
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port}")

    def to_bytes(self) -> bytes:
        """Serialize to the 8-byte wire format."""
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, self.checksum)

    @classmethod
    def from_bytes(cls, data: bytes) -> "UdpHeader":
        """Parse the first 8 bytes of *data* as a UDP header."""
        if len(data) < UDP_HEADER_LEN:
            raise ValueError(f"UDP header needs {UDP_HEADER_LEN} bytes, got {len(data)}")
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", data[:UDP_HEADER_LEN])
        return cls(src_port=src_port, dst_port=dst_port, length=length, checksum=checksum)

    def copy(self) -> "UdpHeader":
        """Return an independent copy of this header."""
        return UdpHeader(
            src_port=self.src_port,
            dst_port=self.dst_port,
            length=self.length,
            checksum=self.checksum,
        )
