"""RFC 1071 Internet checksum used by IPv4, UDP and TCP headers."""

from __future__ import annotations


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """Compute the 16-bit one's-complement Internet checksum of *data*.

    The checksum is defined in RFC 1071: the data is treated as a sequence
    of 16-bit big-endian words (padded with a zero byte if the length is
    odd), the words are summed with end-around carry, and the one's
    complement of the sum is returned.

    Parameters
    ----------
    data:
        Bytes to checksum.
    initial:
        Optional starting sum, useful for incremental computation over a
        pseudo-header followed by a payload.

    Returns
    -------
    int
        The checksum as an integer in ``[0, 0xFFFF]``.
    """
    total = initial
    length = len(data)
    # Sum 16-bit words.
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    # Fold carries.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def ones_complement_sum(data: bytes, initial: int = 0) -> int:
    """Return the folded one's-complement sum of *data* without inverting.

    This is the building block for incremental checksums: callers can sum
    a pseudo-header and a payload separately and invert only at the end.
    """
    total = initial
    length = len(data)
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total & 0xFFFF


def verify_internet_checksum(data: bytes) -> bool:
    """Return ``True`` if *data* (including its checksum field) verifies.

    A block whose stored checksum is correct sums to ``0xFFFF`` before the
    final inversion, i.e. :func:`internet_checksum` over the whole block
    (checksum field included) returns zero.
    """
    return internet_checksum(data) == 0
