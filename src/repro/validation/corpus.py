"""The fuzz corpus: shrunk repros persisted as replayable JSON.

Every failure the fuzzer finds is written here as one self-contained
JSON file: the shrunk scenario descriptor (registry scenario name +
parameters — the same plain-data form campaigns use), the original
descriptor it was shrunk from, and the violations observed.  The corpus
is a regression suite that grows itself: ``repro validate replay`` (and
``tests/validation/test_corpus_replay.py``) re-executes every entry, so
a bug the fuzzer ever caught can never silently return.

Triage workflow for a new entry: see the README this module writes into
fresh corpus directories, or the "Validation" section of the top-level
README.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.orchestrator.spec import RunSpec
from repro.validation.invariants import Violation

#: Default corpus location, replayed by the pytest suite.
DEFAULT_CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "validation_corpus"

_CORPUS_README = """\
# Fuzz corpus

Each `repro-*.json` file is a shrunk failing scenario found by
`repro validate fuzz`.  Replay them all with:

    PYTHONPATH=src python -m repro validate replay --corpus <this dir>

To triage one entry: `repro validate run <file>` re-executes just that
descriptor and prints the violations; the `original` block shows the
pre-shrink scenario it came from.  Once the underlying bug is fixed the
entry replays clean — keep it committed so the regression stays covered.
"""


def entry_from_failure(failure, seed: Optional[int] = None) -> Dict[str, Any]:
    """Serialize one :class:`~repro.validation.fuzzer.FuzzFailure`."""
    return {
        "format": "repro-validation-corpus-v1",
        "fuzz_seed": seed,
        "scenario": failure.shrunk.scenario,
        "mode": failure.shrunk.mode,
        "params": dict(failure.shrunk.params),
        "time_scale": failure.shrunk.time_scale,
        "relations": sorted({v.check for v in failure.violations
                             if v.check in _RELATION_CHECKS}),
        "shrunk_size": failure.shrunk_size,
        "original": {
            "scenario": failure.original.scenario,
            "params": dict(failure.original.params),
            "size": failure.original_size,
        },
        "violations": [violation.as_dict() for violation in failure.violations],
    }


#: Metamorphic check names (replay re-runs these relations; invariant
#: checks always run).
_RELATION_CHECKS = {
    "fast-slow-equivalence": "fast_slow",
    "seed-determinism": "determinism",
    "time-scale-invariance": "time_scale",
    "rate-monotonicity": "rate_monotonicity",
}


def write_entry(corpus_dir, failure, seed: Optional[int] = None) -> Path:
    """Write one failure into *corpus_dir*; returns the file path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    readme = corpus_dir / "README.md"
    if not readme.exists():
        readme.write_text(_CORPUS_README, encoding="utf-8")
    entry = entry_from_failure(failure, seed=seed)
    path = corpus_dir / f"repro-{failure.shrunk.spec_hash}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_entry(path) -> Dict[str, Any]:
    """Load and structurally validate one corpus entry."""
    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "scenario" not in data or "params" not in data:
        raise ValueError(f"{path} is not a corpus entry (missing scenario/params)")
    return data


def validate_entry_names(entry: Dict[str, Any], source: Any = "corpus entry") -> None:
    """Check every registry name an entry references still resolves.

    Registries evolve: a scenario, workload or fault profile a repro was
    recorded against may have been renamed or removed since.  Replaying
    such an entry used to surface as a bare lookup failure deep inside
    scenario materialization; this check turns it into one actionable
    message naming the stale reference and the file carrying it, so the
    fix (re-record or delete the entry) is obvious.
    """
    from repro.orchestrator.spec import SCENARIO_REGISTRY

    def _stale(kind: str, name: str, known) -> ValueError:
        return ValueError(
            f"{source}: references {kind} {name!r}, which is no longer "
            f"registered (known: {sorted(known)}); the corpus entry is stale — "
            "re-record it against the current registries or delete it"
        )

    scenario = entry.get("scenario")
    if scenario not in SCENARIO_REGISTRY:
        raise _stale("scenario", scenario, SCENARIO_REGISTRY)
    params = entry.get("params", {})
    workload = params.get("workload")
    if workload is not None:
        from repro.workloads.registry import WORKLOAD_REGISTRY

        if workload not in WORKLOAD_REGISTRY:
            raise _stale("workload", workload, WORKLOAD_REGISTRY)
    faults = params.get("faults")
    if isinstance(faults, str):
        from repro.faults.registry import FAULT_REGISTRY

        if faults not in FAULT_REGISTRY:
            raise _stale("fault profile", faults, FAULT_REGISTRY)


def corpus_entries(corpus_dir=None) -> List[Path]:
    """Corpus entry files under *corpus_dir* (default: the committed corpus)."""
    corpus_dir = Path(corpus_dir) if corpus_dir is not None else DEFAULT_CORPUS_DIR
    if not corpus_dir.is_dir():
        return []
    return sorted(corpus_dir.glob("repro-*.json"))


def run_spec_from_entry(entry: Dict[str, Any]) -> RunSpec:
    """Rebuild the executable descriptor from a corpus entry (or descriptor file)."""
    return RunSpec(
        scenario=entry["scenario"],
        mode=entry.get("mode", "compare"),
        params=dict(entry["params"]),
        time_scale=float(entry.get("time_scale", 1.0)),
    )


def entry_relation_names(entry: Dict[str, Any]) -> List[str]:
    """Registry names of the relations an entry's violations came from.

    Falls back to the default differential relation so invariant-only
    entries (and hand-written descriptor files) still get the
    fast-vs-slow check on replay.
    """
    names = [
        _RELATION_CHECKS[name]
        for name in entry.get("relations", [])
        if name in _RELATION_CHECKS
    ]
    return names or ["fast_slow"]


def replay_entry(entry: Dict[str, Any], source: Any = "corpus entry") -> List[Violation]:
    """Re-execute one corpus entry; returns the violations it produces now.

    Raises ``ValueError`` with an actionable message when the entry
    references a scenario/workload/fault-profile name that is no longer
    registered (see :func:`validate_entry_names`).
    """
    from repro.validation.fuzzer import check_run
    from repro.validation.metamorphic import build_relations

    validate_entry_names(entry, source=source)
    return check_run(
        run_spec_from_entry(entry), build_relations(entry_relation_names(entry))
    )


def replay_corpus(corpus_dir=None) -> Dict[str, Any]:
    """Replay every corpus entry; summarize which (if any) still fail."""
    results: List[Dict[str, Any]] = []
    failing = 0
    for path in corpus_entries(corpus_dir):
        violations = replay_entry(load_entry(path), source=path)
        if violations:
            failing += 1
        results.append(
            {
                "path": str(path),
                "ok": not violations,
                "violations": [violation.as_dict() for violation in violations],
            }
        )
    return {"entries": len(results), "failing": failing, "results": results}
