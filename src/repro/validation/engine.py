"""The invariant engine: attach checkers to any simulation run.

:class:`ValidationObserver` implements the
:class:`~repro.experiments.runner.RunObserver` hook pair.  Installed via
:func:`repro.experiments.runner.run_observer`, it watches every
deployment run the experiment runner executes — single figures, campaign
grid points and fuzzer scenarios all funnel through the same
``_execute`` path:

* ``on_run_start`` arms an event-time monitor on the run's event loop
  (fast or reference), so time monotonicity is checked on every event;
* ``on_run_end`` drains the event loop (traffic stops at the horizon,
  so the residue is exactly the in-flight packets), assembles a
  :class:`~repro.validation.invariants.RunObservation`, and applies the
  configured invariants immediately.

:func:`check_scenario` is the one-call entry point used by the CLI and
the fuzzer: run a scenario under observation and return a structured
:class:`ValidationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.runner import (
    ExperimentRunner,
    RunObserver,
    run_observer,
)
from repro.validation.invariants import (
    DEFAULT_INVARIANTS,
    Invariant,
    RunObservation,
    Violation,
)

#: Upper bound on post-horizon drain work; generously above any run the
#: validation subsystem executes (fuzz scenarios are ~10^4 events).
DRAIN_MAX_EVENTS = 5_000_000


class _TimeMonitor:
    """Event-loop monitor: counts events whose timestamp moves backwards."""

    __slots__ = ("last_ns", "violations")

    def __init__(self) -> None:
        self.last_ns = -1
        self.violations = 0

    def __call__(self, when_ns: int) -> None:
        if when_ns < self.last_ns:
            self.violations += 1
        else:
            self.last_ns = when_ns


class ValidationObserver(RunObserver):
    """Applies invariants to every deployment run executed under it."""

    def __init__(
        self,
        invariants: Optional[Sequence[Invariant]] = None,
        drain_max_events: int = DRAIN_MAX_EVENTS,
        keep_observations: bool = False,
    ) -> None:
        self.invariants = tuple(invariants if invariants is not None else DEFAULT_INVARIANTS)
        self.drain_max_events = drain_max_events
        self.violations: List[Violation] = []
        self.runs_checked = 0
        #: When enabled, finished observations (including their live
        #: topologies) are retained for inspection — test/debug only, as
        #: it pins every run's object graph in memory.
        self.keep_observations = keep_observations
        self.observations: List[RunObservation] = []
        self._monitors: Dict[int, _TimeMonitor] = {}

    def on_run_start(self, scenario, deployment, topology, program) -> None:
        monitor = _TimeMonitor()
        self._monitors[id(topology.env)] = monitor
        topology.env.monitor = monitor

    def on_run_end(self, scenario, deployment, topology, program, reports) -> None:
        env = topology.env
        horizon_ns = env.now
        # Drain in-flight packets so conservation is an exact identity;
        # the traffic generators stop at the horizon, so this terminates.
        env.run_all(max_events=self.drain_max_events)
        monitor = self._monitors.pop(id(env), None) or _TimeMonitor()
        env.monitor = None
        observation = RunObservation(
            scenario=scenario,
            deployment=getattr(deployment, "value", str(deployment)),
            topology=topology,
            program=program,
            reports=list(reports),
            horizon_ns=horizon_ns,
            drained=env.pending_events == 0,
            residual_events=env.pending_events,
            time_violations=monitor.violations,
        )
        self.runs_checked += 1
        if self.keep_observations:
            self.observations.append(observation)
        for invariant in self.invariants:
            self.violations.extend(invariant.check(observation))


@dataclass
class ValidationReport:
    """Outcome of validating one scenario (invariants + relations)."""

    scenario: str
    runs_checked: int = 0
    relations_checked: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return not self.violations

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary."""
        return {
            "scenario": self.scenario,
            "runs_checked": self.runs_checked,
            "relations_checked": list(self.relations_checked),
            "ok": self.ok,
            "violations": [violation.as_dict() for violation in self.violations],
        }


def check_scenario(
    scenario,
    invariants: Optional[Sequence[Invariant]] = None,
    relations: Sequence[Any] = (),
    time_scale: float = 1.0,
) -> ValidationReport:
    """Run *scenario* under the invariant engine and metamorphic relations.

    The scenario's baseline and PayloadPark deployments are both
    executed with invariants attached; each relation in *relations*
    (see :mod:`repro.validation.metamorphic`) then executes its own
    paired runs and contributes violations.
    """
    observer = ValidationObserver(invariants=invariants)
    runner = ExperimentRunner(time_scale=time_scale)
    with run_observer(observer):
        runner.compare(scenario)
    report = ValidationReport(
        scenario=getattr(scenario, "name", str(scenario)),
        runs_checked=observer.runs_checked,
        violations=list(observer.violations),
    )
    for relation in relations:
        report.relations_checked.append(relation.name)
        report.violations.extend(relation.check(scenario, time_scale=time_scale))
    return report
