"""Metamorphic relations: properties that must hold across paired runs.

Where an invariant checks one run against itself, a metamorphic
relation checks two runs of *transformed* scenarios against each other.
The relations here generalize the golden-figure suite (which pins a
dozen hand-picked operating points) to arbitrary scenarios:

* :class:`FastSlowEquivalence` — the optimized simulation path must be
  byte-identical to the reference path at *any* operating point, not
  just the golden grid;
* :class:`SeedDeterminism` — re-running the same scenario must
  reproduce every metric exactly (no hidden global state);
* :class:`TimeScaleInvariance` — stretching the simulated horizon must
  leave the steady-state rate metrics approximately unchanged;
* :class:`RateMonotonicity` — offering less load can never yield more
  goodput (up to measurement noise);
* :class:`FluidPacketEquivalence` — the fluid fidelity tier
  (``fidelity: auto``) must reproduce the packet engine's figure
  outputs within declared tolerances, and *exactly* whenever the
  scenario admits no steady segment (auto never leaves the packet
  tier there).

Each relation returns :class:`~repro.validation.invariants.Violation`
records, so the fuzzer and CLI treat invariants and relations
uniformly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List

from repro.experiments.runner import ExperimentRunner
from repro.orchestrator.executor import flatten_comparison
from repro.validation.invariants import Violation


def comparison_metrics(scenario, time_scale: float = 1.0) -> Dict[str, Any]:
    """Run baseline-vs-PayloadPark and return the flattened metric dict."""
    runner = ExperimentRunner(time_scale=time_scale)
    result = runner.compare(scenario)
    return flatten_comparison(result.comparison)


def _diff_keys(left: Dict[str, Any], right: Dict[str, Any], limit: int = 8) -> Dict[str, Any]:
    """The first *limit* keys whose values differ, with both values."""
    diffs: Dict[str, Any] = {}
    for key in sorted(set(left) | set(right)):
        if left.get(key) != right.get(key):
            diffs[key] = {"left": left.get(key), "right": right.get(key)}
            if len(diffs) >= limit:
                break
    return diffs


class MetamorphicRelation:
    """Base class: one cross-run property of a scenario."""

    name: str = ""

    def check(self, scenario, time_scale: float = 1.0) -> List[Violation]:
        """Return violations (empty when the relation holds)."""
        raise NotImplementedError

    def _violation(self, scenario, message: str, **details: Any) -> Violation:
        return Violation(
            check=self.name,
            message=message,
            scenario=getattr(scenario, "name", str(scenario)),
            deployment="both",
            details=details,
        )


class FastSlowEquivalence(MetamorphicRelation):
    """Fast-path and reference-path runs must produce identical metrics.

    This is the differential heart of the suite: the calendar event
    loop, pooled packet templates, compiled pipeline walks and memoized
    NF verdicts are only admissible because they reproduce the
    reference results exactly — here asserted at an arbitrary operating
    point instead of the golden grid.
    """

    name = "fast-slow-equivalence"

    def check(self, scenario, time_scale: float = 1.0,
              fast_metrics: Dict[str, Any] = None) -> List[Violation]:
        """*fast_metrics* lets a caller that already ran the fast path
        (the fuzzer's validated orchestrator run) skip re-running it."""
        if fast_metrics is not None and getattr(scenario, "fast_path", False):
            fast = fast_metrics
        else:
            fast = comparison_metrics(replace(scenario, fast_path=True), time_scale)
        slow = comparison_metrics(replace(scenario, fast_path=False), time_scale)
        diffs = _diff_keys(fast, slow)
        if diffs:
            return [
                self._violation(
                    scenario,
                    f"fast path diverges from the reference path on "
                    f"{len(diffs)}+ metric(s): {sorted(diffs)}",
                    diffs=diffs,
                )
            ]
        return []


class SeedDeterminism(MetamorphicRelation):
    """Two runs of the identical scenario must agree on every metric."""

    name = "seed-determinism"

    def check(self, scenario, time_scale: float = 1.0,
              reference: Dict[str, Any] = None) -> List[Violation]:
        """*reference* lets a caller supply an already-computed first run."""
        first = reference if reference is not None else comparison_metrics(scenario, time_scale)
        second = comparison_metrics(scenario, time_scale)
        diffs = _diff_keys(first, second)
        if diffs:
            return [
                self._violation(
                    scenario,
                    f"identical runs disagree on {len(diffs)}+ metric(s): "
                    f"{sorted(diffs)} (hidden global state?)",
                    diffs=diffs,
                )
            ]
        return []


class TimeScaleInvariance(MetamorphicRelation):
    """Rate metrics must converge when the simulated horizon stretches.

    Goodput and offered load are time-averaged rates, so doubling the
    horizon only shrinks their sampling noise.  The tolerance is loose
    by design: short fuzz runs are noisy, and this relation exists to
    catch gross horizon-dependent bugs (events leaking past the warm-up
    boundary, duration-dependent state), not 1% drifts.
    """

    name = "time-scale-invariance"

    #: Metrics compared across horizons (per deployment prefix).
    RATE_METRICS = ("offered_gbps", "goodput_to_nf_gbps", "delivered_goodput_gbps")

    def __init__(self, factor: float = 2.0, tolerance: float = 0.25,
                 absolute_gbps: float = 0.4) -> None:
        if factor <= 1.0:
            raise ValueError("factor must exceed 1.0")
        self.factor = factor
        self.tolerance = tolerance
        self.absolute_gbps = absolute_gbps

    def check(self, scenario, time_scale: float = 1.0) -> List[Violation]:
        short = comparison_metrics(scenario, time_scale)
        long = comparison_metrics(scenario, time_scale * self.factor)
        violations: List[Violation] = []
        for prefix in ("baseline_", "payloadpark_"):
            for metric in self.RATE_METRICS:
                key = prefix + metric
                a, b = short.get(key, 0.0), long.get(key, 0.0)
                bound = max(abs(a), abs(b)) * self.tolerance + self.absolute_gbps
                if abs(a - b) > bound:
                    violations.append(
                        self._violation(
                            scenario,
                            f"{key} changed from {a:.4f} to {b:.4f} Gbps when the "
                            f"horizon stretched {self.factor:g}x (bound {bound:.4f})",
                            metric=key,
                            short=a,
                            long=b,
                            factor=self.factor,
                        )
                    )
        return violations


class RateMonotonicity(MetamorphicRelation):
    """Offering less load can never yield more goodput.

    Compares the scenario against a copy at ``factor`` times the
    offered rate; the lower-rate run's delivered goodput must not
    exceed the higher-rate run's beyond measurement noise.  (The
    relation holds on both sides of saturation: below it goodput tracks
    offered load; above it goodput plateaus at capacity.)
    """

    name = "rate-monotonicity"

    def __init__(self, factor: float = 0.5, tolerance: float = 0.10,
                 absolute_gbps: float = 0.2) -> None:
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must lie in (0, 1)")
        self.factor = factor
        self.tolerance = tolerance
        self.absolute_gbps = absolute_gbps

    def check(self, scenario, time_scale: float = 1.0) -> List[Violation]:
        high = comparison_metrics(scenario, time_scale)
        low_scenario = scenario.with_rate(scenario.send_rate_gbps * self.factor)
        low = comparison_metrics(low_scenario, time_scale)
        violations: List[Violation] = []
        for prefix in ("baseline_", "payloadpark_"):
            key = prefix + "delivered_goodput_gbps"
            low_value, high_value = low.get(key, 0.0), high.get(key, 0.0)
            bound = high_value * (1.0 + self.tolerance) + self.absolute_gbps
            if low_value > bound:
                violations.append(
                    self._violation(
                        scenario,
                        f"{key}: offering {self.factor:g}x the load yielded "
                        f"{low_value:.4f} Gbps, more than the full-rate "
                        f"{high_value:.4f} Gbps (bound {bound:.4f})",
                        metric=key,
                        low_rate=low_value,
                        high_rate=high_value,
                        factor=self.factor,
                    )
                )
        return violations


#: Figure-level agreement ``fidelity: auto`` must hold against the packet
#: engine: metric → ``(relative, absolute, sqrt)`` bound, compared per
#: deployment prefix as
#: ``|packet - fluid| <= max(|p|, |f|) * rel + sqrt_coeff * sqrt(max) + abs``.
#: The relative term absorbs systematic calibration bias (burst pacing
#: re-samples packet sizes, so a finite window's mean rate is noisy); the
#: ``sqrt`` term is counting statistics — an extrapolated count of N
#: carries O(sqrt(N)) noise, and *subcategory* counters (small-payload
#: split bypasses, per-reason drops) are exactly the low-N tail where a
#: flat relative band is either too lax for big counters or too tight for
#: small ones; the absolute floor keeps near-zero metrics from failing on
#: a handful of packets.  Latency metrics are exempt by design: samples
#: are only drawn during packet-level windows, so the sample *population*
#: differs between tiers even when behaviour agrees.
FLUID_FIGURE_TOLERANCES: Dict[str, tuple] = {
    "goodput_to_nf_gbps": (0.05, 0.05, 0.0),
    "delivered_goodput_gbps": (0.05, 0.05, 0.0),
    "offered_gbps": (0.05, 0.05, 0.0),
    "pcie_gbps": (0.05, 0.05, 0.0),
    "packets_sent": (0.05, 64, 6.0),
    "packets_delivered": (0.05, 64, 6.0),
    "packets_dropped": (0.05, 64, 6.0),
    "nf_packets_processed": (0.05, 64, 6.0),
    "splits": (0.05, 64, 6.0),
    "merges": (0.05, 64, 6.0),
    "evictions": (0.05, 64, 6.0),
    "premature_evictions": (0.05, 64, 6.0),
    "explicit_drops": (0.05, 64, 6.0),
    "split_disabled": (0.05, 64, 6.0),
    #: The queue-pressure peak is a max over time, not a time average —
    #: a single packet-level burst alignment moves it, so it gets the
    #: loosest band.
    "peak_queue_bytes": (0.25, 4096, 0.0),
}

#: Per-reason drop-breakdown bound (keys are dynamic: ``drop_<reason>``).
FLUID_DROP_TOLERANCE = (0.05, 64, 6.0)


def fluid_figure_breaches(
    packet: Dict[str, Any], fluid: Dict[str, Any]
) -> Dict[str, Dict[str, float]]:
    """Figure metrics where *fluid* leaves *packet*'s tolerance band.

    Returns ``{key: {"packet": p, "fluid": f, "bound": b}}`` — empty when
    the fluid tier's figures are certified equivalent.  Shared by
    :class:`FluidPacketEquivalence` and the ``repro bench
    --fidelity-check`` gate so both enforce the same declaration.
    """
    breaches: Dict[str, Dict[str, float]] = {}

    def compare(key: str, rel: float, absolute: float, sqrt_coeff: float) -> None:
        a = float(packet.get(key, 0.0))
        b = float(fluid.get(key, 0.0))
        magnitude = max(abs(a), abs(b))
        bound = magnitude * rel + sqrt_coeff * magnitude ** 0.5 + absolute
        if abs(a - b) > bound:
            breaches[key] = {"packet": a, "fluid": b, "bound": round(bound, 6)}

    for prefix in ("baseline_", "payloadpark_"):
        for metric, (rel, absolute, sqrt_coeff) in FLUID_FIGURE_TOLERANCES.items():
            compare(prefix + metric, rel, absolute, sqrt_coeff)
        drop_prefix = prefix + "drop_"
        for key in sorted(set(packet) | set(fluid)):
            if key.startswith(drop_prefix):
                compare(key, *FLUID_DROP_TOLERANCE)
    return breaches


class FluidPacketEquivalence(MetamorphicRelation):
    """``fidelity: auto`` must reproduce the packet engine's figures.

    Two regimes, decided by :func:`repro.fidelity.fluid_eligible`:

    * the scenario admits steady segments — the fluid tier engages and
      every figure output (goodput, packet/action counts, drop
      breakdown, queue-pressure peaks) must agree within the declared
      :data:`FLUID_FIGURE_TOLERANCES`;
    * it admits none (arrival-model or replay workload, all-ramp
      schedule, horizon too short) — ``auto`` must never leave the
      packet tier, so the runs must be *byte-identical*.
    """

    name = "fluid-packet-equivalence"

    def check(self, scenario, time_scale: float = 1.0) -> List[Violation]:
        from repro.fidelity import fluid_eligible

        packet = comparison_metrics(replace(scenario, fidelity="packet"), time_scale)
        fluid = comparison_metrics(replace(scenario, fidelity="auto"), time_scale)
        if not fluid_eligible(scenario, time_scale):
            diffs = _diff_keys(packet, fluid)
            if diffs:
                return [
                    self._violation(
                        scenario,
                        f"fidelity: auto must equal the packet engine exactly "
                        f"when no steady segment exists, but {len(diffs)}+ "
                        f"metric(s) differ: {sorted(diffs)}",
                        diffs=diffs,
                    )
                ]
            return []
        breaches = fluid_figure_breaches(packet, fluid)
        if breaches:
            return [
                self._violation(
                    scenario,
                    f"fluid tier leaves the packet engine's tolerance band on "
                    f"{len(breaches)} figure metric(s): {sorted(breaches)}",
                    breaches=breaches,
                )
            ]
        return []


#: Name → relation factory, mirroring the scenario/workload registries.
RELATION_REGISTRY = {
    "fast_slow": FastSlowEquivalence,
    "determinism": SeedDeterminism,
    "time_scale": TimeScaleInvariance,
    "rate_monotonicity": RateMonotonicity,
    "fluid_vs_packet": FluidPacketEquivalence,
}

#: Exact (noise-free) relations the fuzzer applies to every scenario.
DEFAULT_RELATION_NAMES = ("fast_slow",)


def build_relations(names) -> List[MetamorphicRelation]:
    """Instantiate relations by registry name (``ValueError`` on unknowns)."""
    relations = []
    for name in names:
        factory = RELATION_REGISTRY.get(name)
        if factory is None:
            raise ValueError(
                f"unknown relation {name!r}; expected one of {sorted(RELATION_REGISTRY)}"
            )
        relations.append(factory())
    return relations
