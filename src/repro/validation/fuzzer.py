"""Differential scenario fuzzer: generate, check, shrink, persist.

The fuzzer draws random-but-reproducible scenario descriptors from the
same plain-data space campaigns use (scenario registry name + parameter
dict), executes each through the campaign orchestrator with the
invariant engine attached, and applies the exact metamorphic relations
(fast-vs-slow differential testing by default).  A failing descriptor
is *shrunk* — greedily simplified while the failure persists — and the
minimal repro is written to a corpus directory that ``repro validate
replay`` and the pytest suite re-execute, so every bug the fuzzer ever
found stays fixed.

Everything is keyed by one integer seed: the same seed generates the
same scenario sequence regardless of how many scenarios the time budget
allows, so CI runs are reproducible and extendable.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.orchestrator.executor import execute_run
from repro.orchestrator.spec import RunSpec
from repro.validation.invariants import Violation
from repro.validation.metamorphic import (
    DEFAULT_RELATION_NAMES,
    MetamorphicRelation,
    SeedDeterminism,
    build_relations,
)

#: Chains orderable by complexity; shrinking walks toward the front.
CHAIN_COMPLEXITY = ("macswap", "nat", "firewall", "fw_nat", "fw_nat_lb")

#: Workloads the generator draws from (must all be registered); the
#: plain Poisson enterprise mix is the shrink target.
CANONICAL_WORKLOAD = "enterprise-poisson"
FUZZ_WORKLOADS = (
    "enterprise-poisson",
    "bursty-mmpp",
    "incast-sync",
    "heavy-tail",
    "flood-churn",
    "rate-ramp",
    "diurnal",
    "pcap-replay",
)

#: Fault profiles the generator draws from (must all be registered);
#: shrinking walks toward no faults at all.
FUZZ_FAULT_PROFILES = (
    "link-flap",
    "lossy-links",
    "jittery-links",
    "backend-churn",
    "rule-burst",
    "threshold-flap",
    "park-drain",
    "chaos-mix",
)

#: How often the (costlier) determinism relation runs: every Nth scenario.
DETERMINISM_EVERY = 5

#: Shrink floors: simplification never goes below these.
MIN_DURATION_US = 200.0
MIN_RATE_GBPS = 1.0

#: Parameters the registry builder requires positionally per scenario;
#: shrinking must not drop them (the descriptor would stop building).
REQUIRED_PARAMS = {
    "explicit_drop": frozenset({"expiry_threshold", "explicit_drop"}),
    "fixed_size_40ge": frozenset({"chain_name", "packet_size"}),
    "memory_sweep": frozenset({"sram_fraction"}),
}


def generate_run(rng: random.Random, index: int) -> RunSpec:
    """Draw one scenario descriptor from the fuzz space.

    Descriptors are plain data (registry scenario name + parameters),
    so they execute through the campaign orchestrator, hash stably and
    serialize into the corpus unchanged.
    """
    kind = rng.choice(
        ["workload"] * 5 + ["fixed_size_40ge", "explicit_drop", "multi_server_384b",
                            "memory_sweep"]
    )
    params: Dict[str, Any] = {
        "seed": rng.randrange(2**31 - 1),
        "duration_us": float(rng.choice([400, 600, 800, 1000, 1200])),
    }
    params["warmup_us"] = params["duration_us"] / 4.0
    if kind == "workload":
        params["workload"] = rng.choice(FUZZ_WORKLOADS)
        params["chain"] = rng.choice(CHAIN_COMPLEXITY)
        params["send_rate_gbps"] = float(rng.choice([2, 4, 6, 8, 10, 12]))
        if rng.random() < 0.5:
            params["sram_fraction"] = rng.choice([0.1, 0.26, 0.4, 0.6])
        if rng.random() < 0.5:
            params["expiry_threshold"] = rng.choice([1, 2, 5, 10])
        if rng.random() < 0.3:
            params["burst_size"] = rng.choice([4, 8, 16])
        # The chaos dimension: control-plane churn and link degradation
        # during the run, exercising cache invalidation and parking-slot
        # reclamation under load (the riskiest paths the static fuzz
        # space never touched).
        if rng.random() < 0.4:
            params["faults"] = rng.choice(FUZZ_FAULT_PROFILES)
    elif kind == "fixed_size_40ge":
        params["chain_name"] = rng.choice(["firewall", "nat", "fw_nat"])
        params["packet_size"] = rng.choice([128, 256, 512, 1024, 1514])
        params["send_rate_gbps"] = float(rng.choice([10, 20, 30, 38]))
    elif kind == "explicit_drop":
        params["expiry_threshold"] = rng.choice([1, 2, 10])
        params["explicit_drop"] = rng.random() < 0.5
        params["blacklisted_fraction"] = rng.choice([0.02, 0.05, 0.10])
        params["send_rate_gbps"] = float(rng.choice([4, 6, 8]))
    elif kind == "multi_server_384b":
        params["server_count"] = rng.choice([2, 3, 4])
        params["send_rate_gbps"] = float(rng.choice([4, 6, 9]))
        # Multi-server runs multiply packet counts; keep them short.
        params["duration_us"] = float(rng.choice([400, 600]))
        params["warmup_us"] = params["duration_us"] / 4.0
    else:  # memory_sweep
        params["sram_fraction"] = rng.choice([0.05, 0.1, 0.26, 0.4, 0.6])
        params["send_rate_gbps"] = float(rng.choice([6, 10, 16, 20]))
    return RunSpec(scenario=kind, params=params)


def descriptor_size(run: RunSpec) -> float:
    """Complexity score of a descriptor (the quantity shrinking minimizes).

    Weighted so the knobs that dominate simulation cost and triage
    effort (horizon, topology size, offered load, chain depth) dominate
    the score; every extra parameter also costs a point, so dropping
    knobs back to their defaults counts as progress.
    """
    params = run.params
    size = float(len(params))
    size += params.get("duration_us", 6000.0) / 100.0
    size += params.get("server_count", 1) * 4.0
    size += params.get("send_rate_gbps", 8.0)
    size += params.get("burst_size", 0) / 8.0
    chain = params.get("chain", params.get("chain_name"))
    if chain in CHAIN_COMPLEXITY:
        size += float(CHAIN_COMPLEXITY.index(chain)) + 1.0
    if params.get("workload", CANONICAL_WORKLOAD) != CANONICAL_WORKLOAD:
        size += 2.0
    if "faults" in params:
        size += 3.0
    return size


def check_run(
    run: RunSpec, relations: Sequence[MetamorphicRelation] = ()
) -> List[Violation]:
    """Execute *run* through the orchestrator with validation attached.

    Invariants are applied by the executor's inline validation hook
    (the same hook ``validate: true`` campaigns use); metamorphic
    relations execute their paired runs afterwards against the
    materialized scenario.  Execution errors surface as violations —
    a crash found by the fuzzer is a bug like any other.
    """
    validated = RunSpec(
        scenario=run.scenario,
        mode=run.mode,
        params=dict(run.params),
        options={**dict(run.options), "validate": True},
        time_scale=run.time_scale,
    )
    record = execute_run(validated)
    violations = [
        Violation(
            check=item["check"],
            message=item["message"],
            scenario=item.get("scenario", run.scenario),
            deployment=item.get("deployment", ""),
            details=item.get("details", {}),
        )
        for item in record.get("violations", [])
    ]
    if record.get("status") == "error":
        violations.append(
            Violation(
                check="execution",
                message=record.get("error", "run crashed"),
                scenario=run.scenario,
                deployment="",
                details={"params": dict(run.params)},
            )
        )
        return violations  # relations would crash the same way
    if relations:
        from repro.orchestrator.spec import build_scenario
        from repro.validation.metamorphic import FastSlowEquivalence

        scenario = build_scenario(run)
        # The validated run above already produced the fast-path
        # comparison (compare mode, default fast path); relations that
        # can reuse it skip re-running that arm.
        reference = record.get("metrics") if run.mode == "compare" else None
        for relation in relations:
            if reference is not None and isinstance(relation, FastSlowEquivalence):
                violations.extend(
                    relation.check(scenario, time_scale=run.time_scale,
                                   fast_metrics=reference)
                )
            elif reference is not None and isinstance(relation, SeedDeterminism):
                violations.extend(
                    relation.check(scenario, time_scale=run.time_scale,
                                   reference=reference)
                )
            else:
                violations.extend(relation.check(scenario, time_scale=run.time_scale))
    return violations


def _shrink_candidates(run: RunSpec) -> Iterator[RunSpec]:
    """Yield simpler variants of *run*, most aggressive first."""
    params = run.params

    def with_params(**changes: Any) -> RunSpec:
        new_params = dict(params)
        for key, value in changes.items():
            if value is None:
                new_params.pop(key, None)
            else:
                new_params[key] = value
        return RunSpec(
            scenario=run.scenario,
            mode=run.mode,
            params=new_params,
            options=dict(run.options),
            time_scale=run.time_scale,
        )

    duration = params.get("duration_us")
    if duration is not None and duration / 2.0 >= MIN_DURATION_US:
        yield with_params(duration_us=duration / 2.0, warmup_us=duration / 8.0)
    if params.get("server_count", 1) > 1:
        yield with_params(server_count=None)
    chain = params.get("chain")
    if chain in CHAIN_COMPLEXITY and CHAIN_COMPLEXITY.index(chain) > 0:
        for simpler in CHAIN_COMPLEXITY[: CHAIN_COMPLEXITY.index(chain)]:
            yield with_params(chain=simpler)
    if params.get("workload") not in (None, CANONICAL_WORKLOAD):
        yield with_params(workload=CANONICAL_WORKLOAD)
    if "faults" in params:
        # A failure that persists without its chaos schedule is a plain
        # bug; one that needs the schedule keeps it in the repro.
        yield with_params(faults=None)
    rate = params.get("send_rate_gbps")
    if rate is not None and rate / 2.0 >= MIN_RATE_GBPS:
        yield with_params(send_rate_gbps=rate / 2.0)
    required = REQUIRED_PARAMS.get(run.scenario, frozenset())
    for optional in ("sram_fraction", "expiry_threshold", "burst_size",
                     "blacklisted_fraction", "explicit_drop"):
        if optional in params and optional not in required:
            yield with_params(**{optional: None})


def shrink(
    run: RunSpec,
    still_fails: Callable[[RunSpec], bool],
    max_attempts: int = 64,
) -> RunSpec:
    """Greedily minimize *run* while ``still_fails`` keeps returning True.

    Classic delta-debugging descent: try each candidate simplification;
    accept the first that both shrinks the descriptor and preserves the
    failure, then restart from the accepted descriptor until a full
    pass yields no progress (or the attempt budget runs out).
    """
    current = run
    current_size = descriptor_size(current)
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _shrink_candidates(current):
            attempts += 1
            if descriptor_size(candidate) >= current_size:
                continue
            if still_fails(candidate):
                current = candidate
                current_size = descriptor_size(candidate)
                progress = True
                break
            if attempts >= max_attempts:
                break
    return current


@dataclass
class FuzzFailure:
    """One fuzz finding: the original descriptor and its shrunk repro."""

    original: RunSpec
    shrunk: RunSpec
    violations: List[Violation]

    @property
    def original_size(self) -> float:
        return descriptor_size(self.original)

    @property
    def shrunk_size(self) -> float:
        return descriptor_size(self.shrunk)


@dataclass
class FuzzResult:
    """Outcome of one fuzz session."""

    seed: int
    scenarios_checked: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    wall_time_s: float = 0.0
    corpus_paths: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "scenarios_checked": self.scenarios_checked,
            "ok": self.ok,
            "failures": [
                {
                    "scenario": failure.original.scenario,
                    "original_size": failure.original_size,
                    "shrunk_size": failure.shrunk_size,
                    "shrunk_params": dict(failure.shrunk.params),
                    "violations": [v.as_dict() for v in failure.violations],
                }
                for failure in self.failures
            ],
            "wall_time_s": round(self.wall_time_s, 2),
            "corpus_paths": list(self.corpus_paths),
        }


def fuzz(
    seed: int = 0,
    max_scenarios: Optional[int] = None,
    budget_s: Optional[float] = None,
    corpus_dir: Optional[str] = None,
    relation_names: Sequence[str] = DEFAULT_RELATION_NAMES,
    progress: Optional[Callable[[int, RunSpec, List[Violation]], None]] = None,
    shrink_failures: bool = True,
) -> FuzzResult:
    """Run one fuzz session; see the module docstring for the pipeline.

    ``max_scenarios`` and ``budget_s`` bound the session (either alone
    suffices; both default to a 50-scenario session).  Failures are
    shrunk and, when *corpus_dir* is given, written there as replayable
    JSON repros.
    """
    if max_scenarios is None and budget_s is None:
        max_scenarios = 50
    rng = random.Random(seed)
    relations = build_relations(relation_names)
    determinism = SeedDeterminism()
    started = time.monotonic()
    result = FuzzResult(seed=seed)
    index = 0
    while True:
        if max_scenarios is not None and index >= max_scenarios:
            break
        if budget_s is not None and time.monotonic() - started >= budget_s:
            break
        run = generate_run(rng, index)
        scenario_relations = list(relations)
        if index % DETERMINISM_EVERY == 0:
            scenario_relations.append(determinism)
        violations = check_run(run, scenario_relations)
        result.scenarios_checked += 1
        if progress is not None:
            progress(index, run, violations)
        if violations:
            # Shrink while the *same* checks keep failing, so simplification
            # never drifts onto an unrelated failure (e.g. a descriptor that
            # stops building); re-check with exactly the relations that fired.
            failing_checks = {violation.check for violation in violations}
            shrink_relations = [
                relation for relation in scenario_relations
                if relation.name in failing_checks
            ]

            def still_fails(candidate: RunSpec) -> bool:
                found = check_run(candidate, shrink_relations)
                return any(violation.check in failing_checks for violation in found)

            shrunk = run
            if shrink_failures:
                shrunk = shrink(run, still_fails)
                if shrunk is not run:
                    violations = check_run(shrunk, shrink_relations) or violations
            failure = FuzzFailure(original=run, shrunk=shrunk, violations=violations)
            result.failures.append(failure)
            if corpus_dir is not None:
                from repro.validation.corpus import write_entry

                path = write_entry(corpus_dir, failure, seed=seed)
                result.corpus_paths.append(str(path))
        index += 1
    result.wall_time_s = time.monotonic() - started
    return result


def parse_budget(text: str) -> float:
    """Parse a time budget like ``"30s"``, ``"2m"`` or ``"45"`` (seconds)."""
    text = text.strip().lower()
    factor = 1.0
    if text.endswith("ms"):
        factor, text = 1e-3, text[:-2]
    elif text.endswith("s"):
        text = text[:-1]
    elif text.endswith("m"):
        factor, text = 60.0, text[:-1]
    elif text.endswith("h"):
        factor, text = 3600.0, text[:-1]
    try:
        value = float(text) * factor
    except ValueError as exc:
        raise ValueError(f"cannot parse time budget {text!r}") from exc
    if value <= 0:
        raise ValueError("time budget must be positive")
    return value
