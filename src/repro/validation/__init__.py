"""Validation subsystem: invariants, metamorphic relations, fuzzing.

Three layers, each usable on its own:

* the **invariant engine** (:mod:`~repro.validation.invariants`,
  :mod:`~repro.validation.engine`) attaches machine-checked correctness
  conditions — packet conservation, goodput bounds, latency causality,
  register bounds, parking-slot leak detection — to any simulation run
  via the experiment runner's observer hook;
* the **metamorphic layer** (:mod:`~repro.validation.metamorphic`)
  checks relations across paired runs: fast-vs-slow-path equality at
  arbitrary operating points, seed determinism, time-scale invariance
  and workload-rate monotonicity;
* the **differential fuzzer** (:mod:`~repro.validation.fuzzer`,
  :mod:`~repro.validation.corpus`) generates seeded random scenarios
  from the campaign registries, checks them, shrinks failures to
  minimal repros and persists them in a replayable corpus.

CLI: ``repro validate run|fuzz|replay``.  Campaigns opt in with
``validate: true`` in their spec file.
"""

from repro.validation.corpus import (
    DEFAULT_CORPUS_DIR,
    corpus_entries,
    load_entry,
    replay_corpus,
    replay_entry,
    run_spec_from_entry,
    validate_entry_names,
    write_entry,
)
from repro.validation.engine import (
    ValidationObserver,
    ValidationReport,
    check_scenario,
)
from repro.validation.fuzzer import (
    FuzzFailure,
    FuzzResult,
    check_run,
    descriptor_size,
    fuzz,
    generate_run,
    parse_budget,
    shrink,
)
from repro.validation.invariants import (
    DEFAULT_INVARIANTS,
    GoodputBound,
    Invariant,
    LatencyCausality,
    NfStateConsistency,
    NoOrphanedPayload,
    PacketConservation,
    ParkingSlotLeak,
    RegisterBounds,
    RetransmitAccounting,
    RunObservation,
    Violation,
)
from repro.validation.metamorphic import (
    DEFAULT_RELATION_NAMES,
    RELATION_REGISTRY,
    FastSlowEquivalence,
    MetamorphicRelation,
    RateMonotonicity,
    SeedDeterminism,
    TimeScaleInvariance,
    build_relations,
    comparison_metrics,
)

__all__ = [
    "DEFAULT_CORPUS_DIR",
    "DEFAULT_INVARIANTS",
    "DEFAULT_RELATION_NAMES",
    "FastSlowEquivalence",
    "FuzzFailure",
    "FuzzResult",
    "GoodputBound",
    "Invariant",
    "LatencyCausality",
    "MetamorphicRelation",
    "NfStateConsistency",
    "NoOrphanedPayload",
    "PacketConservation",
    "ParkingSlotLeak",
    "RELATION_REGISTRY",
    "RateMonotonicity",
    "RegisterBounds",
    "RetransmitAccounting",
    "RunObservation",
    "SeedDeterminism",
    "TimeScaleInvariance",
    "ValidationObserver",
    "ValidationReport",
    "Violation",
    "build_relations",
    "check_run",
    "check_scenario",
    "comparison_metrics",
    "corpus_entries",
    "descriptor_size",
    "fuzz",
    "generate_run",
    "load_entry",
    "parse_budget",
    "replay_corpus",
    "replay_entry",
    "run_spec_from_entry",
    "shrink",
    "validate_entry_names",
    "write_entry",
]
