"""Pluggable run invariants: machine-checked correctness conditions.

An :class:`Invariant` inspects one finished deployment run — the wired
topology, the switch program and the computed reports — and emits
structured :class:`Violation` records for anything that can never
legitimately happen in a correct simulation:

* packets must be conserved end to end (every generated frame is either
  delivered back, dropped by an accounted mechanism, or still parked);
* goodput can never exceed offered load;
* latency statistics must be causal (non-negative, ordered, bounded by
  the run horizon) and event time must never flow backwards;
* register/lookup-table state must stay inside its declared bounds; and
* parking slots must not leak (the dataplane counters and the
  control-plane occupancy view must agree).

Invariants run against a :class:`RunObservation` assembled by the
:mod:`repro.validation.engine` observer after the event loop has been
drained, so "in flight" is never an excuse for missing packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.program import PayloadParkProgram
from repro.telemetry.report import DeploymentReport

#: Relative slack for floating-point rate comparisons.
_RATE_EPS = 1e-9


@dataclass
class Violation:
    """One broken invariant or metamorphic relation, with evidence."""

    check: str
    message: str
    scenario: str = ""
    deployment: str = ""
    details: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (corpus entries, campaign records)."""
        return {
            "check": self.check,
            "message": self.message,
            "scenario": self.scenario,
            "deployment": self.deployment,
            "details": {key: value for key, value in self.details.items()},
        }

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.check}] {self.scenario}/{self.deployment}: {self.message}"


@dataclass
class RunObservation:
    """Everything an invariant may inspect about one deployment run.

    Built by the validation observer after the run's horizon: the event
    loop has been drained (traffic generation stops at the horizon, so
    the residual events are exactly the packets that were in flight),
    which turns packet conservation into an exact identity.
    """

    scenario: Any  # ScenarioConfig (untyped to avoid an import cycle)
    deployment: str
    topology: Any
    program: Any
    reports: List[DeploymentReport]
    horizon_ns: int
    drained: bool = True
    residual_events: int = 0
    time_violations: int = 0

    @property
    def scenario_name(self) -> str:
        return getattr(self.scenario, "name", str(self.scenario))


class Invariant:
    """Base class: one machine-checked condition over a finished run."""

    name: str = ""

    def check(self, obs: RunObservation) -> List[Violation]:
        """Return violations (empty when the invariant holds)."""
        raise NotImplementedError

    def _violation(self, obs: RunObservation, message: str, **details: Any) -> Violation:
        return Violation(
            check=self.name,
            message=message,
            scenario=obs.scenario_name,
            deployment=obs.deployment,
            details=details,
        )


class PacketConservation(Invariant):
    """Every generated frame is delivered or dropped by an accounted path.

    After the drain:
    ``sent == received + link_buffer_drops + link_fault_drops +
    switch_drops + server_overflow +
    (chain_dropped - explicit_drop_notifications)`` — chain drops that
    produced an Explicit-Drop notification come back to the generator
    and are counted as received.  Link losses are split by mechanism:
    egress-buffer overflows (the organic path) versus injected faults
    (downed links and loss windows, attributed by the fault counters the
    chaos engine maintains), so a fault schedule can never be used to
    explain away an unaccounted loss.

    Per-direction consistency is also asserted: every frame a direction
    accepted must have been delivered once the loop is drained.
    """

    name = "packet-conservation"

    def check(self, obs: RunObservation) -> List[Violation]:
        if not obs.drained:
            # A bounded drain that did not finish leaves genuinely
            # in-flight packets; conservation cannot be asserted exactly.
            return [
                self._violation(
                    obs,
                    f"event loop not drained ({obs.residual_events} residual events); "
                    "conservation unverifiable — raise the drain budget",
                    residual_events=obs.residual_events,
                )
            ]
        topology = obs.topology
        violations: List[Violation] = []
        sent = received = buffer_drops = fault_drops = 0
        overflow = vanished = in_server = 0
        for attachment in topology.attachments:
            sent += attachment.pktgen.packets_sent
            received += attachment.pktgen.packets_received
            for link in [attachment.server_link] + list(attachment.gen_links):
                buffer_drops += link.buffer_drops()
                fault_drops += link.fault_drops()
                for stats in link.direction_counters():
                    if stats.frames_sent != stats.frames_delivered:
                        violations.append(
                            self._violation(
                                obs,
                                f"link {link.name!r}: {stats.frames_sent} frames "
                                f"accepted but {stats.frames_delivered} delivered "
                                "after the drain",
                                link=link.name,
                                frames_sent=stats.frames_sent,
                                frames_delivered=stats.frames_delivered,
                            )
                        )
            overflow += attachment.server.overflow_drops
            vanished += (
                attachment.server.chain_dropped_packets
                - attachment.server.explicit_drop_notifications
            )
            in_server += attachment.server.queue_occupancy
        switch_drops = topology.switch.packets_dropped
        accounted = (
            received + buffer_drops + fault_drops + switch_drops
            + overflow + vanished + in_server
        )
        if sent != accounted:
            violations.append(
                self._violation(
                    obs,
                    f"{sent} packets sent but {accounted} accounted for "
                    f"(delta {sent - accounted})",
                    sent=sent,
                    received=received,
                    link_buffer_drops=buffer_drops,
                    link_fault_drops=fault_drops,
                    switch_drops=switch_drops,
                    server_overflow=overflow,
                    chain_vanished=vanished,
                    in_server=in_server,
                )
            )
        return violations


class GoodputBound(Invariant):
    """Goodput can never exceed offered load.

    Checked on exact whole-run byte/packet counters (always valid) and,
    for constant-rate scenarios, on the measurement-window rates in the
    reports (schedules and replay streams legitimately deliver a
    warm-up backlog during low-rate windows, so they are exempt from
    the window-level check).
    """

    name = "goodput-bound"

    #: Window-rate slack: service jitter lets a queue built in the
    #: warm-up drain inside the window, slightly exceeding offered load.
    WINDOW_SLACK = 0.02

    def check(self, obs: RunObservation) -> List[Violation]:
        violations: List[Violation] = []
        for attachment in obs.topology.attachments:
            gen = attachment.pktgen
            if gen.packets_received > gen.packets_sent:
                violations.append(
                    self._violation(
                        obs,
                        f"{gen.name}: received {gen.packets_received} packets "
                        f"but only {gen.packets_sent} were sent",
                        packets_sent=gen.packets_sent,
                        packets_received=gen.packets_received,
                    )
                )
            if gen.useful_bytes_received > gen.bytes_sent:
                violations.append(
                    self._violation(
                        obs,
                        f"{gen.name}: useful bytes received "
                        f"({gen.useful_bytes_received}) exceed bytes sent "
                        f"({gen.bytes_sent})",
                        bytes_sent=gen.bytes_sent,
                        useful_bytes_received=gen.useful_bytes_received,
                    )
                )
        traffic_model = getattr(obs.scenario, "traffic_model", None)
        # Closed-loop transports are exempt from the window-level check
        # too: their offered load is emergent (ACK-clocked), so a window
        # can legitimately drain a backlog built before it opened.
        constant_rate = traffic_model is None or (
            traffic_model.schedule is None
            and traffic_model.stream_factory is None
            and getattr(traffic_model, "transport_factory", None) is None
        )
        for report in obs.reports:
            if not 0.0 <= report.drop_rate <= 1.0:
                violations.append(
                    self._violation(
                        obs,
                        f"drop rate {report.drop_rate} outside [0, 1]",
                        drop_rate=report.drop_rate,
                    )
                )
            if constant_rate and report.delivered_goodput_gbps > (
                report.offered_gbps * (1.0 + self.WINDOW_SLACK) + 0.01
            ):
                violations.append(
                    self._violation(
                        obs,
                        f"delivered goodput {report.delivered_goodput_gbps:.4f} Gbps "
                        f"exceeds offered load {report.offered_gbps:.4f} Gbps",
                        delivered_goodput_gbps=report.delivered_goodput_gbps,
                        offered_gbps=report.offered_gbps,
                    )
                )
        return violations


class RetransmitAccounting(Invariant):
    """Retransmitted bytes reconcile throughput against goodput exactly.

    Once a closed-loop transport retransmits, "delivered" splits into
    goodput (the first copy of each sequence number) and duplicates
    (later copies of the same data).  This invariant pins the split with
    exact counter identities between the generator node and its
    transport engine, checked after the drain:

    * every frame on the wire is a first transmission or a counted
      retransmission (``packets_sent == distinct + retransmitted``);
    * every delivery is a counted unique or a counted duplicate
      (``packets_received == unique + duplicate``);
    * goodput bytes equal the unique deliveries' useful bytes — the
      identity that catches a duplicate double-counted into goodput;
    * no more unique sequence numbers delivered than were ever sent.

    Open-loop runs assert the degenerate form: both retransmission
    counters must be exactly zero.
    """

    name = "retransmit-accounting"

    def check(self, obs: RunObservation) -> List[Violation]:
        violations: List[Violation] = []
        for attachment in obs.topology.attachments:
            gen = attachment.pktgen
            transport = getattr(gen, "transport", None)
            if transport is None:
                for counter in ("retransmitted_packets", "duplicate_packets_received"):
                    value = getattr(gen, counter, 0)
                    if value:
                        violations.append(
                            self._violation(
                                obs,
                                f"{gen.name}: open-loop generator reports "
                                f"{counter} = {value} (must be 0)",
                                counter=counter,
                                value=value,
                            )
                        )
                continue
            identities = [
                ("wire frames vs transport sends",
                 gen.packets_sent, transport.segments_sent),
                ("sends split into first+retx",
                 transport.segments_sent,
                 transport.distinct_segments_sent + transport.retx_segments),
                ("node vs transport retransmit count",
                 gen.retransmitted_packets, transport.retx_segments),
                ("deliveries split into unique+duplicate",
                 gen.packets_received,
                 transport.unique_delivered_segments + transport.duplicate_segments),
                ("node vs transport duplicate count",
                 gen.duplicate_packets_received, transport.duplicate_segments),
                ("goodput bytes vs unique deliveries",
                 gen.useful_bytes_received,
                 transport.unique_delivered_useful_bytes),
            ]
            for label, left, right in identities:
                if left != right:
                    violations.append(
                        self._violation(
                            obs,
                            f"{gen.name}: {label}: {left} != {right} "
                            f"(delta {left - right})",
                            identity=label,
                            left=left,
                            right=right,
                        )
                    )
            if transport.unique_delivered_segments > transport.distinct_segments_sent:
                violations.append(
                    self._violation(
                        obs,
                        f"{gen.name}: {transport.unique_delivered_segments} unique "
                        f"sequence numbers delivered but only "
                        f"{transport.distinct_segments_sent} were ever sent",
                        unique_delivered=transport.unique_delivered_segments,
                        distinct_sent=transport.distinct_segments_sent,
                    )
                )
        return violations


class LatencyCausality(Invariant):
    """Latency statistics must be causal and event time monotonic."""

    name = "latency-causality"

    def check(self, obs: RunObservation) -> List[Violation]:
        violations: List[Violation] = []
        if obs.time_violations:
            violations.append(
                self._violation(
                    obs,
                    f"event time moved backwards {obs.time_violations} time(s)",
                    time_violations=obs.time_violations,
                )
            )
        horizon_us = obs.horizon_ns / 1_000.0
        for report in obs.reports:
            stats = {
                "avg": report.avg_latency_us,
                "p99": report.p99_latency_us,
                "max": report.max_latency_us,
                "jitter": report.jitter_us,
            }
            if any(value < 0 for value in stats.values()):
                violations.append(
                    self._violation(obs, f"negative latency statistic: {stats}", **stats)
                )
                continue
            # Nearest-rank p99 and the mean are both bounded by the max.
            if report.avg_latency_us > report.max_latency_us * (1 + _RATE_EPS) + 1e-9:
                violations.append(
                    self._violation(
                        obs,
                        f"mean latency {report.avg_latency_us:.3f} us exceeds "
                        f"max {report.max_latency_us:.3f} us",
                        **stats,
                    )
                )
            if report.p99_latency_us > report.max_latency_us * (1 + _RATE_EPS) + 1e-9:
                violations.append(
                    self._violation(
                        obs,
                        f"p99 latency {report.p99_latency_us:.3f} us exceeds "
                        f"max {report.max_latency_us:.3f} us",
                        **stats,
                    )
                )
            if report.max_latency_us > horizon_us:
                violations.append(
                    self._violation(
                        obs,
                        f"max latency {report.max_latency_us:.3f} us exceeds the "
                        f"run horizon {horizon_us:.3f} us (acausal sample)",
                        max_latency_us=report.max_latency_us,
                        horizon_us=horizon_us,
                    )
                )
        return violations


class RegisterBounds(Invariant):
    """Lookup tables and switch resources stay inside their declared bounds."""

    name = "register-bounds"

    def check(self, obs: RunObservation) -> List[Violation]:
        violations: List[Violation] = []
        program = obs.program
        if isinstance(program, PayloadParkProgram):
            for name, table in program.lookup_tables.items():
                occupied = table.occupancy()
                if not 0 <= occupied <= table.entries:
                    violations.append(
                        self._violation(
                            obs,
                            f"lookup table {name!r}: occupancy {occupied} outside "
                            f"[0, {table.entries}]",
                            binding=name,
                            occupied=occupied,
                            entries=table.entries,
                        )
                    )
        for pipe_index in range(len(program.asic.pipes)):
            report = program.resource_report(pipe_index)
            for metric in ("sram_peak_percent", "tcam_percent", "vliw_percent",
                           "phv_percent"):
                value = getattr(report, metric)
                if value > 100.0 + _RATE_EPS:
                    violations.append(
                        self._violation(
                            obs,
                            f"pipe {pipe_index}: {metric} = {value:.2f}% exceeds "
                            "the hardware budget",
                            pipe=pipe_index,
                            metric=metric,
                            value=value,
                        )
                    )
        return violations


class ParkingSlotLeak(Invariant):
    """Parked payloads are merged, dropped or evicted — never leaked.

    After the drain, the dataplane counters' outstanding-payload
    arithmetic (``splits - merges - explicit_drops - evictions``) must
    equal the control plane's occupied-slot count for every binding.  A
    mismatch means a slot was freed without accounting (tag leak) or a
    payload overwritten without an eviction (slot leak).
    """

    name = "parking-slot-leak"

    def check(self, obs: RunObservation) -> List[Violation]:
        program = obs.program
        if not isinstance(program, PayloadParkProgram):
            return []
        if not obs.drained:
            return []
        violations: List[Violation] = []
        for name, table in program.lookup_tables.items():
            counters = program.counters_for(name)
            outstanding = counters.outstanding_payloads
            occupied = table.occupancy()
            if outstanding != occupied:
                violations.append(
                    self._violation(
                        obs,
                        f"binding {name!r}: counters say {outstanding} payloads "
                        f"outstanding but {occupied} slots are occupied",
                        binding=name,
                        outstanding=outstanding,
                        occupied=occupied,
                        counters=counters.as_dict(),
                    )
                )
        return violations


class NoOrphanedPayload(Invariant):
    """Churn may drain parking slots, but never orphan a payload.

    Two ways a churn event can orphan a payload, both checked after the
    drain:

    * **vanished payload** — a metadata slot still *occupied* whose
      payload blocks are all empty: the owner's bytes disappeared while
      the slot claims to hold them (a drain that cleared registers but
      forgot the metadata, or vice versa).  The reverse state — stale
      bytes under a *free* slot — is legitimate dataplane residue: an
      Explicit Drop reclaims the metadata slot without spending stateful
      accesses on registers the next claim overwrites anyway.
    * **unaccounted drain** — a fault-injection ``park_drain`` freed
      slots without recording them as evictions, silently shrinking the
      ``splits - merges - explicit_drops - evictions`` identity (the
      packet whose payload was drained would then fail the Merge with
      nobody owning the loss).

    The first check scans every slot of every binding's table; the
    second compares the injector's drained-slot counts against the
    dataplane eviction counters.
    """

    name = "no-orphaned-payload"

    def check(self, obs: RunObservation) -> List[Violation]:
        program = obs.program
        if not isinstance(program, PayloadParkProgram) or not obs.drained:
            return []
        violations: List[Violation] = []
        for name, table in program.lookup_tables.items():
            for index in range(table.entries):
                if not table.peek_metadata(index).occupied:
                    continue
                if not any(array.peek(index) for array in table.block_arrays):
                    violations.append(
                        self._violation(
                            obs,
                            f"binding {name!r} slot {index}: metadata says occupied "
                            "but every payload block is empty (payload vanished "
                            "under its owner)",
                            binding=name,
                            slot=index,
                        )
                    )
        injector = getattr(obs.topology, "fault_injector", None)
        if injector is not None:
            for name, drained in getattr(injector, "slots_drained", {}).items():
                evictions = program.counters_for(name).evictions
                if evictions < drained:
                    violations.append(
                        self._violation(
                            obs,
                            f"binding {name!r}: control plane drained {drained} "
                            f"slot(s) but only {evictions} eviction(s) were "
                            "accounted",
                            binding=name,
                            slots_drained=drained,
                            evictions=evictions,
                        )
                    )
        return violations


class NfStateConsistency(Invariant):
    """Fast-path NF caches must agree with the NFs' live configuration.

    Control-plane churn (backend drains, rule bursts) invalidates the
    Maglev per-flow memo and the firewall verdict memo; a missed
    invalidation silently pins flows to removed backends or replays
    stale verdicts.  After the run, every cached Maglev entry must map
    to a backend still in the pool *and* match a fresh walk of the
    current lookup table; a bounded sample of firewall verdicts is
    re-derived against the current ACL.  (This is the invariant that
    catches a `remove_backend` that forgets to drop the flow cache.)
    """

    name = "nf-state-consistency"

    #: Bound on re-derived cache entries per NF (cost control).
    SAMPLE = 512

    def check(self, obs: RunObservation) -> List[Violation]:
        violations: List[Violation] = []
        for attachment in obs.topology.attachments:
            for nf in attachment.server.model.chain:
                violations.extend(self._check_maglev(obs, nf))
                violations.extend(self._check_firewall(obs, nf))
        return violations

    def _check_maglev(self, obs: RunObservation, nf) -> List[Violation]:
        cache = getattr(nf, "_backend_cache", None)
        if not cache or not hasattr(nf, "lookup_table"):
            return []
        current = {id(backend) for backend in nf.backends}
        violations: List[Violation] = []
        for flow, backend in list(cache.items())[: self.SAMPLE]:
            if id(backend) not in current:
                violations.append(
                    self._violation(
                        obs,
                        f"{nf.name}: cached flow {flow} is pinned to backend "
                        f"{backend.name!r}, which left the pool (stale cache "
                        "after churn)",
                        nf=nf.name,
                        backend=backend.name,
                    )
                )
                continue
            fresh = nf.backends[nf.lookup_table[flow.stable_hash() % nf.table_size]]
            if fresh is not backend:
                violations.append(
                    self._violation(
                        obs,
                        f"{nf.name}: cached flow {flow} maps to {backend.name!r} "
                        f"but the current Maglev table chooses {fresh.name!r}",
                        nf=nf.name,
                        cached=backend.name,
                        fresh=fresh.name,
                    )
                )
        return violations

    def _check_firewall(self, obs: RunObservation, nf) -> List[Violation]:
        cache = getattr(nf, "_verdict_cache", None)
        if not cache or not hasattr(nf, "rules"):
            return []
        violations: List[Violation] = []
        for (src_value, dst_port), cached in list(cache.items())[: self.SAMPLE]:
            fresh = nf._probe_compiled(src_value, dst_port)
            if fresh != cached:
                violations.append(
                    self._violation(
                        obs,
                        f"{nf.name}: memoized verdict for (src={src_value}, "
                        f"dport={dst_port}) is {cached}, but the current ACL "
                        f"yields {fresh} (stale cache after rule churn)",
                        nf=nf.name,
                        src=src_value,
                        dst_port=dst_port,
                    )
                )
        return violations


#: The invariants every validated run checks unless overridden.
DEFAULT_INVARIANTS = (
    PacketConservation(),
    GoodputBound(),
    RetransmitAccounting(),
    LatencyCausality(),
    RegisterBounds(),
    ParkingSlotLeak(),
    NoOrphanedPayload(),
    NfStateConsistency(),
)
