"""Fig. 8: goodput for fixed packet sizes (Firewall, NAT and FW → NAT, 40 GbE).

The goodput improvement grows as packets shrink — a larger fraction of
each packet is parked — until 256-byte packets, where the NF server
becomes compute bound and the gain evaporates.  The paper reports
10–36 % gains over the 384–1492-byte range.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import fixed_size_40ge
from repro.telemetry.report import render_table

#: Packet sizes (bytes) evaluated in Fig. 8/9.
DEFAULT_SIZES = (256, 384, 512, 1024, 1492)

#: NF chains evaluated in Fig. 8/9.
DEFAULT_CHAINS = ("firewall", "nat", "fw_nat")


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    chain_names: Sequence[str] = DEFAULT_CHAINS,
    send_rate_gbps: float = 38.0,
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (chain, packet size): baseline vs. PayloadPark goodput."""
    runner = runner or ExperimentRunner()
    rows = []
    for chain_name in chain_names:
        for size in sizes:
            scenario = fixed_size_40ge(chain_name, size, send_rate_gbps=send_rate_gbps)
            comparison = runner.compare(scenario).comparison
            rows.append(
                {
                    "chain": chain_name,
                    "packet_size_bytes": size,
                    "baseline_goodput_gbps": round(comparison.baseline.goodput_to_nf_gbps, 4),
                    "payloadpark_goodput_gbps": round(
                        comparison.payloadpark.goodput_to_nf_gbps, 4
                    ),
                    "goodput_gain_percent": round(comparison.goodput_gain_percent, 2),
                    "pcie_savings_percent": round(comparison.pcie_savings_percent, 2),
                }
            )
    return rows


def main() -> None:
    """Print the Fig. 8 reproduction."""
    print("Fig. 8 — goodput with fixed packet sizes (40 GbE, OpenNetVM)")
    print(render_table(run()))


if __name__ == "__main__":
    main()
