"""Fig. 9: PCIe bandwidth utilization for fixed packet sizes.

PayloadPark saves PCIe bandwidth on the NF server because fewer payload
bytes cross the NIC–host boundary per packet; the savings grow as the
parked 160 bytes become a larger fraction of the packet, peaking at
≈ 58 % for 256-byte packets (where goodput gains have already vanished —
PCIe relief is the remaining benefit).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import fixed_size_40ge
from repro.experiments.fig08_fixed_sizes import DEFAULT_SIZES
from repro.telemetry.report import render_table


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    chain_names: Sequence[str] = ("fw_nat",),
    send_rate_gbps: float = 30.0,
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (chain, packet size): baseline vs. PayloadPark PCIe bandwidth."""
    runner = runner or ExperimentRunner()
    rows = []
    for chain_name in chain_names:
        for size in sizes:
            scenario = fixed_size_40ge(chain_name, size, send_rate_gbps=send_rate_gbps)
            comparison = runner.compare(scenario).comparison
            rows.append(
                {
                    "chain": chain_name,
                    "packet_size_bytes": size,
                    "baseline_pcie_gbps": round(comparison.baseline.pcie_gbps, 3),
                    "payloadpark_pcie_gbps": round(comparison.payloadpark.pcie_gbps, 3),
                    "pcie_savings_percent": round(comparison.pcie_savings_percent, 2),
                }
            )
    return rows


def main() -> None:
    """Print the Fig. 9 reproduction."""
    print("Fig. 9 — PCIe bandwidth utilization with fixed packet sizes")
    print(render_table(run()))


if __name__ == "__main__":
    main()
