"""Fig. 14: peak goodput vs. the fraction of switch memory reserved.

With 384-byte packets and an aggressive expiry threshold (EXP=1), the
traffic rate is raised until the first premature payload eviction (or an
unhealthy drop rate) appears; the largest rate that avoids both is the
peak goodput for that memory reservation.  More reserved memory means
the table index takes longer to wrap around, so payloads survive longer
and the peak moves up — until the NF server's own limits take over.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import DeploymentKind, ExperimentRunner
from repro.experiments.scenarios import memory_sweep_scenario
from repro.telemetry.report import render_table

#: SRAM fractions swept (the paper's labelled points are 17.81 %, 21.56 %, 25.94 %).
DEFAULT_SRAM_FRACTIONS = (0.10, 0.178, 0.216, 0.26)


def run(
    sram_fractions: Sequence[float] = DEFAULT_SRAM_FRACTIONS,
    runner: Optional[ExperimentRunner] = None,
    rate_bounds_gbps=(4.0, 44.0),
    tolerance_gbps: float = 2.0,
    include_baseline: bool = True,
) -> List[Dict[str, object]]:
    """One row per memory fraction: the peak healthy goodput and its send rate."""
    runner = runner or ExperimentRunner()
    rows = []
    baseline_peak = None
    if include_baseline:
        baseline_rate, baseline_report = runner.peak_goodput(
            memory_sweep_scenario(DEFAULT_SRAM_FRACTIONS[-1]),
            deployment=DeploymentKind.BASELINE,
            require_zero_premature_evictions=False,
            rate_bounds_gbps=rate_bounds_gbps,
            tolerance_gbps=tolerance_gbps,
        )
        baseline_peak = (baseline_rate, baseline_report.goodput_to_nf_gbps)
    for fraction in sram_fractions:
        scenario = memory_sweep_scenario(fraction)
        rate, report = runner.peak_goodput(
            scenario,
            deployment=DeploymentKind.PAYLOADPARK,
            require_zero_premature_evictions=True,
            rate_bounds_gbps=rate_bounds_gbps,
            tolerance_gbps=tolerance_gbps,
        )
        row = {
            "sram_fraction_percent": round(fraction * 100, 2),
            "peak_send_rate_gbps": round(rate, 2),
            "peak_goodput_gbps": round(report.goodput_to_nf_gbps, 4),
            "premature_evictions": report.premature_evictions,
            "drop_rate": round(report.drop_rate, 5),
        }
        if baseline_peak is not None:
            row["baseline_peak_goodput_gbps"] = round(baseline_peak[1], 4)
        rows.append(row)
    return rows


def main() -> None:
    """Print the Fig. 14 reproduction."""
    print("Fig. 14 — peak goodput vs. reserved switch memory (384-byte packets, EXP=1)")
    print(render_table(run()))


if __name__ == "__main__":
    main()
