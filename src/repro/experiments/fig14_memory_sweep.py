"""Fig. 14: peak goodput vs. the fraction of switch memory reserved.

With 384-byte packets and an aggressive expiry threshold (EXP=1), the
traffic rate is raised until the first premature payload eviction (or an
unhealthy drop rate) appears; the largest rate that avoids both is the
peak goodput for that memory reservation.  More reserved memory means
the table index takes longer to wrap around, so payloads survive longer
and the peak moves up — until the NF server's own limits take over.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentRunner
from repro.orchestrator import CampaignExecutor, RunSpec
from repro.orchestrator.aggregate import fig14_rows
from repro.telemetry.report import render_table

#: SRAM fractions swept (the paper's labelled points are 17.81 %, 21.56 %, 25.94 %).
DEFAULT_SRAM_FRACTIONS = (0.10, 0.178, 0.216, 0.26)


def sweep_specs(
    sram_fractions: Sequence[float] = DEFAULT_SRAM_FRACTIONS,
    rate_bounds_gbps: Tuple[float, float] = (4.0, 44.0),
    tolerance_gbps: float = 2.0,
    include_baseline: bool = True,
    time_scale: float = 1.0,
) -> Tuple[List[RunSpec], Optional[RunSpec]]:
    """The Fig. 14 grid as orchestrator run descriptors.

    Returns the PayloadPark sweep points plus (optionally) the single
    baseline peak-goodput run the figure's reference line uses.
    """
    bounds = [float(rate_bounds_gbps[0]), float(rate_bounds_gbps[1])]
    baseline_spec = None
    if include_baseline:
        baseline_spec = RunSpec(
            scenario="memory_sweep",
            mode="peak",
            params={"sram_fraction": DEFAULT_SRAM_FRACTIONS[-1]},
            options={
                "deployment": "baseline",
                "require_zero_premature_evictions": False,
                "rate_bounds_gbps": bounds,
                "tolerance_gbps": tolerance_gbps,
            },
            time_scale=time_scale,
        )
    sweep = [
        RunSpec(
            scenario="memory_sweep",
            mode="peak",
            params={"sram_fraction": fraction},
            options={
                "deployment": "payloadpark",
                "require_zero_premature_evictions": True,
                "rate_bounds_gbps": bounds,
                "tolerance_gbps": tolerance_gbps,
            },
            time_scale=time_scale,
        )
        for fraction in sram_fractions
    ]
    return sweep, baseline_spec


def run(
    sram_fractions: Sequence[float] = DEFAULT_SRAM_FRACTIONS,
    runner: Optional[ExperimentRunner] = None,
    rate_bounds_gbps=(4.0, 44.0),
    tolerance_gbps: float = 2.0,
    include_baseline: bool = True,
    workers: int = 1,
) -> List[Dict[str, object]]:
    """One row per memory fraction: the peak healthy goodput and its send rate.

    Execution is delegated to the campaign orchestrator; *runner* only
    contributes its ``time_scale`` (worker processes build their own
    runners from the run descriptors).
    """
    runner = runner or ExperimentRunner()
    sweep, baseline_spec = sweep_specs(
        sram_fractions,
        rate_bounds_gbps=rate_bounds_gbps,
        tolerance_gbps=tolerance_gbps,
        include_baseline=include_baseline,
        time_scale=runner.time_scale,
    )
    specs = ([baseline_spec] if baseline_spec is not None else []) + sweep
    summary = CampaignExecutor(workers=workers).run_specs(specs)
    summary.raise_on_failure()
    return fig14_rows(sweep, summary.records, baseline_spec=baseline_spec)


def main() -> None:
    """Print the Fig. 14 reproduction."""
    print("Fig. 14 — peak goodput vs. reserved switch memory (384-byte packets, EXP=1)")
    print(render_table(run()))


if __name__ == "__main__":
    main()
