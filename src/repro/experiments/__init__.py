"""Experiment harness: one module per figure/table of the paper's §6.

Every experiment builds on :class:`~repro.experiments.runner.ExperimentRunner`,
which assembles a simulated testbed (traffic generator ↔ switch ↔ NF
server(s)) for a scenario, runs it under both the PayloadPark and the
baseline deployments, and returns comparable reports.  The benchmark
scripts under ``benchmarks/`` are thin wrappers that print each
experiment's rows in the shape of the corresponding paper figure.
"""

from repro.experiments.runner import (
    DeploymentKind,
    ExperimentResult,
    ExperimentRunner,
    ScenarioConfig,
)

__all__ = [
    "ExperimentRunner",
    "ExperimentResult",
    "ScenarioConfig",
    "DeploymentKind",
]
