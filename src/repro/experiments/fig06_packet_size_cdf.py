"""Fig. 6: packet-size CDF of the enterprise datacenter workload.

The paper replays a PCAP whose packet sizes follow the distribution
Benson et al. measured in enterprise datacenters: bimodal with a mean of
882 bytes, with ≈ 30 % of packets too small to be split (payload under
160 bytes).  This experiment emits the CDF points of our synthetic
version of that distribution together with its summary statistics.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.experiments.runner import seed_override
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES
from repro.telemetry.report import render_table
from repro.traffic.distributions import enterprise_datacenter_distribution, split_eligible_fraction


def run(sample_count: int = 20_000, seed: Optional[int] = None) -> Dict[str, object]:
    """Return the CDF points plus sampled statistics of the workload.

    ``seed`` defaults to the CLI's ``--seed`` override when one is
    active, else the historical 7.
    """
    distribution = enterprise_datacenter_distribution()
    if seed is None:
        seed = seed_override() if seed_override() is not None else 7
    rng = random.Random(seed)
    samples = [distribution.sample(rng) for _ in range(sample_count)]
    sampled_mean = sum(samples) / len(samples)
    small_threshold = ETHERNET_UDP_HEADER_BYTES + 160
    small_fraction = sum(1 for size in samples if size < small_threshold) / len(samples)
    rows: List[Dict[str, object]] = [
        {"packet_size_bytes": size, "cdf": round(cdf, 4)}
        for size, cdf in distribution.cdf_points()
    ]
    return {
        "rows": rows,
        "analytic_mean_bytes": round(distribution.mean(), 1),
        "sampled_mean_bytes": round(sampled_mean, 1),
        "fraction_below_160B_payload": round(small_fraction, 4),
        "split_eligible_fraction": round(split_eligible_fraction(distribution), 4),
        "paper_mean_bytes": 882,
        "paper_fraction_below_160B_payload": 0.30,
    }


def main() -> None:
    """Print the Fig. 6 reproduction."""
    result = run()
    print("Fig. 6 — enterprise datacenter packet-size distribution (CDF)")
    print(render_table(result["rows"]))
    for key in (
        "analytic_mean_bytes",
        "sampled_mean_bytes",
        "fraction_below_160B_payload",
        "split_eligible_fraction",
        "paper_mean_bytes",
        "paper_fraction_below_160B_payload",
    ):
        print(f"{key}: {result[key]}")


if __name__ == "__main__":
    main()
