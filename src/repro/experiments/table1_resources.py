"""Table 1: resource utilization of the PayloadPark program on the switch.

The paper compiles its P4 program for two deployments — ≈ 26 % of memory
serving 4 NF servers (one per pipe) and ≈ 40 % serving 8 NF servers (two
per pipe, statically sliced) — and reports the per-resource utilization
of the chip.  Here we install the equivalent programs on the simulated
ASIC and read the same report off its resource accounting.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import PayloadParkConfig
from repro.core.program import PayloadParkProgram
from repro.experiments.runner import multi_server_bindings
from repro.telemetry.report import render_table

#: Utilization numbers reported in the paper's Table 1 for comparison.
PAPER_TABLE1 = {
    "SRAM (4 NF servers) avg": 25.94,
    "SRAM (4 NF servers) peak": 33.75,
    "SRAM (8 NF servers) avg": 38.23,
    "SRAM (8 NF servers) peak": 48.75,
    "TCAM": 0.69,
    "VLIW": 14.58,
    "Exact Match Crossbar": 16.47,
    "Ternary Match Crossbar": 0.88,
    "Packet Header Vector": 37.65,
}


def build_program(server_count: int, sram_fraction: float) -> PayloadParkProgram:
    """Install PayloadPark for *server_count* NF servers on a fresh ASIC."""
    servers_per_pipe = 1 if server_count <= 4 else 2
    bindings = multi_server_bindings(server_count, servers_per_pipe=servers_per_pipe)
    config = PayloadParkConfig(sram_fraction=sram_fraction, expiry_threshold=1)
    return PayloadParkProgram(config, bindings=bindings)


def run() -> List[Dict[str, object]]:
    """Produce Table 1 rows: measured utilization next to the paper's values."""
    four_server = build_program(server_count=4, sram_fraction=0.26).resource_report(0)
    eight_server = build_program(server_count=8, sram_fraction=0.40).resource_report(0)

    rows = [
        {
            "resource": "SRAM (4 NF servers) avg",
            "measured_percent": round(four_server.sram_avg_percent, 2),
            "paper_percent": PAPER_TABLE1["SRAM (4 NF servers) avg"],
        },
        {
            "resource": "SRAM (4 NF servers) peak",
            "measured_percent": round(four_server.sram_peak_percent, 2),
            "paper_percent": PAPER_TABLE1["SRAM (4 NF servers) peak"],
        },
        {
            "resource": "SRAM (8 NF servers) avg",
            "measured_percent": round(eight_server.sram_avg_percent, 2),
            "paper_percent": PAPER_TABLE1["SRAM (8 NF servers) avg"],
        },
        {
            "resource": "SRAM (8 NF servers) peak",
            "measured_percent": round(eight_server.sram_peak_percent, 2),
            "paper_percent": PAPER_TABLE1["SRAM (8 NF servers) peak"],
        },
        {
            "resource": "TCAM",
            "measured_percent": round(four_server.tcam_percent, 2),
            "paper_percent": PAPER_TABLE1["TCAM"],
        },
        {
            "resource": "VLIW",
            "measured_percent": round(four_server.vliw_percent, 2),
            "paper_percent": PAPER_TABLE1["VLIW"],
        },
        {
            "resource": "Exact Match Crossbar",
            "measured_percent": round(four_server.exact_crossbar_percent, 2),
            "paper_percent": PAPER_TABLE1["Exact Match Crossbar"],
        },
        {
            "resource": "Ternary Match Crossbar",
            "measured_percent": round(four_server.ternary_crossbar_percent, 2),
            "paper_percent": PAPER_TABLE1["Ternary Match Crossbar"],
        },
        {
            "resource": "Packet Header Vector",
            "measured_percent": round(four_server.phv_percent, 2),
            "paper_percent": PAPER_TABLE1["Packet Header Vector"],
        },
    ]
    return rows


def main() -> None:
    """Print the Table 1 reproduction."""
    print("Table 1 — resource utilization on the simulated ASIC")
    print(render_table(run()))


if __name__ == "__main__":
    main()
