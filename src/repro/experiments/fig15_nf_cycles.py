"""Fig. 15: how the NF's CPU cost changes PayloadPark's benefit.

Three synthetic NFs (≈ 50 / 300 / 570 cycles per packet) are paired with
four packet sizes.  Large packets always benefit — the server is never
compute bound at their lower packet rates — while for small packets a
heavy NF saturates the CPU before the link does, erasing (or slightly
inverting) PayloadPark's advantage.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import nf_cycles_scenario
from repro.telemetry.report import render_table

#: Packet sizes evaluated in Fig. 15.
DEFAULT_SIZES = (256, 384, 1024, 1492)

#: Synthetic NF variants evaluated in Fig. 15.
DEFAULT_NF_KINDS = ("light", "medium", "heavy")


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    nf_kinds: Sequence[str] = DEFAULT_NF_KINDS,
    send_rate_gbps: float = 40.0,
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (NF kind, packet size): baseline vs. PayloadPark goodput."""
    runner = runner or ExperimentRunner()
    rows = []
    for nf_kind in nf_kinds:
        for size in sizes:
            scenario = nf_cycles_scenario(nf_kind, size, send_rate_gbps=send_rate_gbps)
            comparison = runner.compare(scenario).comparison
            rows.append(
                {
                    "nf": nf_kind,
                    "packet_size_bytes": size,
                    "baseline_goodput_gbps": round(comparison.baseline.goodput_to_nf_gbps, 4),
                    "payloadpark_goodput_gbps": round(
                        comparison.payloadpark.goodput_to_nf_gbps, 4
                    ),
                    "goodput_gain_percent": round(comparison.goodput_gain_percent, 2),
                }
            )
    return rows


def main() -> None:
    """Print the Fig. 15 reproduction."""
    print("Fig. 15 — goodput with NF-Light / NF-Medium / NF-Heavy")
    print(render_table(run()))


if __name__ == "__main__":
    main()
