"""The canonical chaos experiment: one scenario under fault profiles.

Not a figure from the paper — the paper's testbeds are static — but the
reproduction's own evaluation of its dynamic-conditions claim: the
FW → NAT → LB chain under the enterprise mix is run fault-free and then
under a set of fault-injection profiles (link flaps, Maglev backend
churn, firewall rule bursts, the full chaos mix), comparing baseline
and PayloadPark at each point.

The golden suite pins this experiment in both simulation modes
(``tests/golden/chaos.json``), which is what proves the fault engine
itself is deterministic and path-identical: every mid-run mutation —
cache invalidations, Maglev table rebuilds, cost-model refreshes,
parking-slot drains — must reproduce bit-identically on the reference
and fast paths.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.experiments.runner import (
    ExperimentRunner,
    current_default_faults,
    time_scale_override,
)
from repro.experiments.scenarios import workload_scenario
from repro.telemetry.report import render_table

#: Fidelity the experiment uses when neither a runner nor a
#: ``--time-scale`` override says otherwise (the full five-profile
#: comparison at scale 1.0 takes minutes; 0.2 keeps it interactive).
DEFAULT_TIME_SCALE = 0.2

#: Profiles the canonical run exercises (None = fault-free control row).
DEFAULT_PROFILES = (None, "link-flap", "backend-churn", "rule-burst", "chaos-mix")

#: Metrics pinned per deployment (stable integers and exact rates).
_PINNED_METRICS = (
    "packets_sent",
    "packets_delivered",
    "packets_dropped",
    "nf_packets_processed",
    "premature_evictions",
    "evictions",
    "splits",
    "merges",
)


def run(
    profiles: Sequence[Optional[str]] = DEFAULT_PROFILES,
    workload: str = "enterprise-poisson",
    chain: str = "fw_nat_lb",
    send_rate_gbps: float = 8.0,
    runner: Optional[ExperimentRunner] = None,
) -> List[dict]:
    """One comparison row per fault profile (None = no faults).

    ``repro run chaos --faults X`` narrows the sweep to the requested
    spec (plus the fault-free control row) instead of the stock profile
    list — the ambient override would otherwise be silently clobbered
    by the per-row ``faults`` assignment.
    """
    if runner is None:
        runner = ExperimentRunner(
            time_scale=time_scale_override() or DEFAULT_TIME_SCALE
        )
    override = current_default_faults()
    if override is not None and profiles is DEFAULT_PROFILES:
        profiles = (None, override)
    rows: List[dict] = []
    for profile in profiles:
        label = profile if isinstance(profile, str) else None
        if profile is not None and label is None:
            from repro.faults.schedule import EventSchedule

            label = EventSchedule.from_spec(profile).name
        scenario = workload_scenario(workload, send_rate_gbps=send_rate_gbps,
                                     chain=chain)
        scenario = replace(scenario, name=f"chaos-{label or 'none'}",
                           faults=profile)
        result = runner.compare(scenario)
        row = {"faults": label or "none"}
        for prefix, report in (
            ("baseline_", result.comparison.baseline),
            ("payloadpark_", result.comparison.payloadpark),
        ):
            for metric in _PINNED_METRICS:
                row[prefix + metric] = getattr(report, metric)
            row[prefix + "link_fault_drops"] = report.drop_breakdown.get(
                "link_fault_drops", 0
            )
        row["goodput_gain_percent"] = round(result.goodput_gain_percent, 6)
        rows.append(row)
    return rows


def main() -> None:
    """Print the chaos comparison table."""
    rows = run()
    print("Chaos suite: FW->NAT->LB + enterprise mix under fault profiles")
    print(render_table(rows))


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
