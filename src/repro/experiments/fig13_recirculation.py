"""Fig. 13: the effect of packet recirculation (parking 384 bytes).

Recirculating each packet through the pipeline a second time lets
PayloadPark park 384 instead of 160 bytes, roughly doubling the goodput
gain of the FW → NAT → LB / 10 GbE setup (≈ 28 % vs. ≈ 13 %) and raising
the PCIe savings to ≈ 23 %, at a per-packet recirculation latency cost
of tens of nanoseconds that end-to-end latency does not notice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import fw_nat_lb_10ge, fw_nat_lb_10ge_recirculation
from repro.telemetry.report import render_table

#: Send rates swept in Fig. 13 (the x-axis extends past Fig. 7's because
#: recirculation pushes the PayloadPark saturation point further right).
DEFAULT_RATES_GBPS = (4.0, 8.0, 10.5, 12.0, 14.0)


def run(rates_gbps: Sequence[float] = DEFAULT_RATES_GBPS,
        runner: Optional[ExperimentRunner] = None) -> List[Dict[str, object]]:
    """One row per send rate: baseline, 160-byte PayloadPark, 384-byte PayloadPark."""
    runner = runner or ExperimentRunner()
    rows = []
    for rate in rates_gbps:
        plain = runner.compare(fw_nat_lb_10ge(send_rate_gbps=rate)).comparison
        recirculated = runner.compare(
            fw_nat_lb_10ge_recirculation(send_rate_gbps=rate)
        ).comparison
        rows.append(
            {
                "send_rate_gbps": rate,
                "baseline_goodput_gbps": round(plain.baseline.goodput_to_nf_gbps, 4),
                "pp160_goodput_gbps": round(plain.payloadpark.goodput_to_nf_gbps, 4),
                "pp384_goodput_gbps": round(recirculated.payloadpark.goodput_to_nf_gbps, 4),
                "pp160_gain_percent": round(plain.goodput_gain_percent, 2),
                "pp384_gain_percent": round(recirculated.goodput_gain_percent, 2),
                "pp384_latency_us": round(recirculated.payloadpark.avg_latency_us, 2),
                "baseline_latency_us": round(recirculated.baseline.avg_latency_us, 2),
                "pp384_pcie_savings_percent": round(recirculated.pcie_savings_percent, 2),
            }
        )
    return rows


def main() -> None:
    """Print the Fig. 13 reproduction."""
    print("Fig. 13 — recirculation (384 parked bytes), FW -> NAT -> LB, 10 GbE")
    print(render_table(run()))


if __name__ == "__main__":
    main()
