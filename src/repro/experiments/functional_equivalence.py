"""§6.2.6: functional equivalence of PayloadPark and baseline deployments.

The paper validates that PayloadPark is transparent by capturing the
packets returning to the traffic generator under both deployments and
diffing the PCAPs (with a MAC-swapping NF), and by checking that the
switch reports zero premature payload evictions.  This experiment does
the same at the dataplane level: the same packet stream is pushed
through the PayloadPark switch + NF chain + merge path and through the
baseline switch + NF chain, and the resulting wire images are compared
byte for byte.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.core.program import BaselineProgram, PayloadParkProgram
from repro.core.config import PayloadParkConfig
from repro.experiments.runner import default_binding, seed_override
from repro.nf.chain import NfChain
from repro.nf.macswap import MacSwapper
from repro.packet.pcap import write_pcap
from repro.traffic.pktgen import PacketFactory, PktGenConfig
from repro.traffic.workload import Workload


def run(
    packet_count: int = 2_000,
    seed: Optional[int] = None,
    pcap_prefix: Optional[str] = None,
) -> Dict[str, object]:
    """Push the same stream through both deployments and compare outputs.

    Returns a report with the number of packets compared, whether every
    wire image matched, and the PayloadPark counters (premature
    evictions must be zero for the comparison to be meaningful).
    ``seed`` defaults to the CLI's ``--seed`` override when one is
    active, else the historical 11.
    """
    if seed is None:
        seed = seed_override() if seed_override() is not None else 11
    binding = default_binding()
    payloadpark = PayloadParkProgram(
        PayloadParkConfig(sram_fraction=0.26, expiry_threshold=1), bindings=[binding]
    )
    baseline = BaselineProgram([binding])
    chain_pp = NfChain([MacSwapper()])
    chain_base = NfChain([MacSwapper()])

    factory = PacketFactory(
        PktGenConfig(rate_gbps=10.0, workload=Workload.enterprise(), seed=seed)
    )
    rng = random.Random(seed)

    mismatches = 0
    compared = 0
    pp_frames = []
    base_frames = []
    timestamp = 0.0
    for index in range(packet_count):
        packet = factory.next_packet()
        twin = packet.copy()
        ingress = binding.ingress_ports[index % len(binding.ingress_ports)]

        # PayloadPark deployment: split, NF, merge.
        ctx = payloadpark.process(packet, ingress)
        assert not ctx.dropped, "split path must not drop healthy traffic"
        chain_pp.process(packet)
        ctx = payloadpark.process(packet, binding.nf_port)
        pp_out = packet.to_bytes() if not ctx.dropped else b""

        # Baseline deployment: forward, NF, forward.
        ctx_b = baseline.process(twin, ingress)
        assert not ctx_b.dropped
        chain_base.process(twin)
        baseline.process(twin, binding.nf_port)
        base_out = twin.to_bytes()

        compared += 1
        if pp_out != base_out:
            mismatches += 1
        if pcap_prefix is not None:
            pp_frames.append((timestamp, pp_out))
            base_frames.append((timestamp, base_out))
            timestamp += rng.random() * 1e-6

    if pcap_prefix is not None:
        write_pcap(f"{pcap_prefix}-payloadpark.pcap", pp_frames)
        write_pcap(f"{pcap_prefix}-baseline.pcap", base_frames)

    counters = payloadpark.counters_for()
    return {
        "packets_compared": compared,
        "identical": mismatches == 0,
        "mismatches": mismatches,
        "premature_evictions": counters.premature_evictions,
        "splits": counters.splits,
        "merges": counters.merges,
        "split_disabled_small_payload": counters.split_disabled_small_payload,
    }


def main() -> None:
    """Print the §6.2.6 reproduction."""
    report = run()
    print("§6.2.6 — functional equivalence (MAC-swapping NF, enterprise mix)")
    for key, value in report.items():
        print(f"{key}: {value}")


if __name__ == "__main__":
    main()
