"""Fig. 11: per-server latency when 8 NF servers share the switch.

Companion to Fig. 10: the same multi-server run, reported as average
end-to-end latency per server.  The paper sees a 9.4 % latency win for
PayloadPark, attributed to moving fewer bytes over each server's PCIe
bus.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.fig10_multi_server import run_comparison
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.telemetry.report import render_table


def rows_from_result(result: ExperimentResult) -> List[Dict[str, object]]:
    """Fig. 11 rows: per-server average latency under both deployments."""
    rows = []
    for index, comparison in enumerate(result.per_server, start=1):
        rows.append(
            {
                "server": index,
                "baseline_latency_us": round(comparison.baseline.avg_latency_us, 2),
                "payloadpark_latency_us": round(comparison.payloadpark.avg_latency_us, 2),
                "latency_win_percent": round(comparison.latency_win_percent, 2),
            }
        )
    return rows


def run(server_count: int = 8, send_rate_gbps: float = 9.0,
        runner: Optional[ExperimentRunner] = None) -> List[Dict[str, object]]:
    """Run the multi-server scenario and return the Fig. 11 rows."""
    return rows_from_result(
        run_comparison(server_count=server_count, send_rate_gbps=send_rate_gbps, runner=runner)
    )


def main() -> None:
    """Print the Fig. 11 reproduction."""
    rows = run()
    print("Fig. 11 — per-server latency, 8 NF servers, 384-byte packets")
    print(render_table(rows))
    average_win = sum(row["latency_win_percent"] for row in rows) / len(rows)
    print(f"average latency win: {average_win:.2f}% (paper: 9.4%)")


if __name__ == "__main__":
    main()
