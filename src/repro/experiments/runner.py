"""The experiment runner: build a testbed, run it, report metrics.

A :class:`ScenarioConfig` describes one operating point (chain, NF
framework, NIC, workload, offered rate, PayloadPark parameters and
simulation horizon).  :class:`ExperimentRunner` materializes it twice —
once with the PayloadPark program, once with the baseline L2-forwarding
program — and produces :class:`~repro.telemetry.report.DeploymentReport`
and :class:`~repro.telemetry.report.ComparisonReport` objects, plus a
peak-goodput search used by the §6.3.1 memory sweep.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.program import BaselineProgram, PayloadParkProgram, SwitchProgram
from repro.experiments.chains import ChainFactory, fw_nat
from repro.netsim.eventloop import EventLoop, FastEventLoop
from repro.netsim.nic import NicSpec, NIC_10GE
from repro.netsim.topology import MultiServerTopology, SingleServerTopology
from repro.nf.framework import OPENNETVM, NfFramework
from repro.nf.server import NfServerConfig, NfServerModel
from repro.telemetry.latency import LatencyRecorder
from repro.telemetry.report import ComparisonReport, DeploymentReport
from repro.traffic.pktgen import PktGenConfig
from repro.traffic.workload import Workload
from repro.workloads.base import TrafficModel


class DeploymentKind(enum.Enum):
    """Which switch program a run uses."""

    BASELINE = "baseline"
    PAYLOADPARK = "payloadpark"


#: Seed scenarios use unless one is set explicitly (see :func:`default_seed`).
_DEFAULT_SEED = 42

#: Active override installed by :func:`default_seed` (None = no override).
_SEED_OVERRIDE: Optional[int] = None


def current_default_seed() -> int:
    """The seed newly-built scenarios pick up by default."""
    return _SEED_OVERRIDE if _SEED_OVERRIDE is not None else _DEFAULT_SEED


def seed_override() -> Optional[int]:
    """The seed requested via :func:`default_seed`, if any.

    Experiments whose sampling seed is independent of
    :class:`ScenarioConfig` (e.g. the Fig. 6 CDF sampler) consult this
    so the CLI's ``--seed`` flag reaches them too.
    """
    return _SEED_OVERRIDE


@contextmanager
def default_seed(seed: int):
    """Temporarily override the seed experiments use.

    The CLI's ``--seed`` flag wraps experiment execution in this context
    so every scenario the experiment builds inherits the requested seed
    without threading a parameter through each module.
    """
    global _SEED_OVERRIDE
    previous = _SEED_OVERRIDE
    _SEED_OVERRIDE = int(seed)
    try:
        yield
    finally:
        _SEED_OVERRIDE = previous


#: Scenarios take the simulation fast path unless overridden.
_FAST_PATH_DEFAULT = True

#: Active override installed by :func:`default_fast_path`.
_FAST_PATH_OVERRIDE: Optional[bool] = None


def current_default_fast_path() -> bool:
    """Whether newly-built scenarios use the fast path by default."""
    return _FAST_PATH_OVERRIDE if _FAST_PATH_OVERRIDE is not None else _FAST_PATH_DEFAULT


@contextmanager
def default_fast_path(enabled: bool):
    """Temporarily override the fast-path default for built scenarios.

    The CLI's ``--slow-path`` flag and the golden-figure regression
    suite wrap experiment execution in this context to force the
    reference simulation path without threading a parameter through
    every experiment module.
    """
    global _FAST_PATH_OVERRIDE
    previous = _FAST_PATH_OVERRIDE
    _FAST_PATH_OVERRIDE = bool(enabled)
    try:
        yield
    finally:
        _FAST_PATH_OVERRIDE = previous


#: Active faults override installed by :func:`default_faults`.
_FAULTS_OVERRIDE: Optional[object] = None


def current_default_faults() -> Optional[object]:
    """The fault spec newly-built scenarios pick up by default (None = off)."""
    return _FAULTS_OVERRIDE


@contextmanager
def default_faults(spec):
    """Temporarily attach a fault schedule to every built scenario.

    The CLI's ``repro run --faults <profile>`` flag wraps experiment
    execution in this context so every scenario the experiment builds
    inherits the fault spec (a profile name or an inline dict) without
    threading a parameter through each module.  The spec is validated
    eagerly so a typo fails before any simulation starts.
    """
    from repro.faults.schedule import EventSchedule

    EventSchedule.from_spec(spec)  # validate (raises FaultSpecError)
    global _FAULTS_OVERRIDE
    previous = _FAULTS_OVERRIDE
    _FAULTS_OVERRIDE = spec
    try:
        yield
    finally:
        _FAULTS_OVERRIDE = previous


#: Active observability override installed by :func:`default_observe`.
_OBSERVE_OVERRIDE: Optional[object] = None


def current_default_observe() -> Optional[object]:
    """The observe spec newly-built scenarios pick up by default (None = off)."""
    return _OBSERVE_OVERRIDE


@contextmanager
def default_observe(spec):
    """Temporarily enable observability on every built scenario.

    The CLI's ``repro run --trace/--metrics/--profile`` flags and the
    ``repro observe`` commands wrap experiment execution in this context
    so every scenario inherits the observe spec (a bool, a dict, or an
    :class:`~repro.obs.config.ObserveSpec`) without threading a
    parameter through each module.  Validated eagerly so a malformed
    spec fails before any simulation starts.
    """
    from repro.obs.config import ObserveSpec

    ObserveSpec.from_spec(spec)  # validate (raises ObserveSpecError)
    global _OBSERVE_OVERRIDE
    previous = _OBSERVE_OVERRIDE
    _OBSERVE_OVERRIDE = spec
    try:
        yield
    finally:
        _OBSERVE_OVERRIDE = previous


#: Observer installed by :func:`run_observer` (None = no observer).
_RUN_OBSERVER: Optional["RunObserver"] = None


class RunObserver:
    """Hook interface for watching deployment runs end to end.

    The validation subsystem installs one via :func:`run_observer` to
    attach invariant checking to *any* simulation run — experiments,
    campaigns and the fuzzer all funnel through
    :meth:`ExperimentRunner._execute`, which calls these hooks.
    """

    def on_run_start(self, scenario, deployment, topology, program) -> None:
        """Called after the testbed is wired, before traffic starts."""

    def on_run_end(self, scenario, deployment, topology, program, reports) -> None:
        """Called after the horizon is reached and reports are built."""


def current_run_observer() -> Optional[RunObserver]:
    """The observer deployment runs report to, if any."""
    return _RUN_OBSERVER


@contextmanager
def run_observer(observer: RunObserver):
    """Attach *observer* to every deployment run inside the context.

    Nested installations stack (the innermost wins), mirroring the other
    ambient-override contexts in this module.
    """
    global _RUN_OBSERVER
    previous = _RUN_OBSERVER
    _RUN_OBSERVER = observer
    try:
        yield observer
    finally:
        _RUN_OBSERVER = previous


#: Recognized values for the ``fidelity`` knob on :class:`ScenarioConfig`.
FIDELITY_MODES = ("packet", "fluid", "auto")

#: Scenarios simulate every packet unless overridden.
_FIDELITY_DEFAULT = "packet"

#: Active override installed by :func:`default_fidelity`.
_FIDELITY_OVERRIDE: Optional[str] = None


def current_default_fidelity() -> str:
    """The fidelity tier newly-built scenarios pick up by default."""
    return _FIDELITY_OVERRIDE if _FIDELITY_OVERRIDE is not None else _FIDELITY_DEFAULT


@contextmanager
def default_fidelity(mode: str):
    """Temporarily override the fidelity tier for built scenarios.

    The CLI's ``repro run --fidelity`` flag and the fluid-vs-packet
    bench wrap experiment execution in this context so every scenario
    the experiment builds inherits the requested tier (``packet``,
    ``fluid`` or ``auto``) without threading a parameter through each
    module.
    """
    if mode not in FIDELITY_MODES:
        raise ValueError(
            f"fidelity must be one of {FIDELITY_MODES}, got {mode!r}"
        )
    global _FIDELITY_OVERRIDE
    previous = _FIDELITY_OVERRIDE
    _FIDELITY_OVERRIDE = mode
    try:
        yield
    finally:
        _FIDELITY_OVERRIDE = previous


#: Active time-scale override installed by :func:`default_time_scale`.
_TIME_SCALE_OVERRIDE: Optional[float] = None


def current_default_time_scale() -> float:
    """The simulated-time multiplier runners pick up by default."""
    return _TIME_SCALE_OVERRIDE if _TIME_SCALE_OVERRIDE is not None else 1.0


def time_scale_override() -> Optional[float]:
    """The time scale requested via :func:`default_time_scale`, if any.

    Experiments with their own fidelity default (the chaos experiment
    runs at 0.2 unless told otherwise) consult this so the CLI's
    ``--time-scale`` flag still wins over that default.
    """
    return _TIME_SCALE_OVERRIDE


@contextmanager
def default_time_scale(time_scale: float):
    """Temporarily override the default runner time scale.

    Lets ``repro run --time-scale`` (and the regression suite) shrink
    every experiment's simulated duration without changing experiment
    signatures; an explicit ``ExperimentRunner(time_scale=...)`` still
    wins.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    global _TIME_SCALE_OVERRIDE
    previous = _TIME_SCALE_OVERRIDE
    _TIME_SCALE_OVERRIDE = float(time_scale)
    try:
        yield
    finally:
        _TIME_SCALE_OVERRIDE = previous


def default_binding(name: str = "srv0", pipe: int = 0) -> NfServerBinding:
    """The Fig. 5 port layout on one pipe: two traffic ports, one NF port."""
    base = pipe * 16
    return NfServerBinding(
        name=name,
        ingress_ports=(base, base + 1),
        nf_port=base + 2,
        default_egress_port=base,
    )


def multi_server_bindings(server_count: int, servers_per_pipe: int = 2) -> List[NfServerBinding]:
    """Port layout for the §6.2.3 multi-server setup (two servers per pipe)."""
    if server_count <= 0:
        raise ValueError("server_count must be positive")
    bindings = []
    for index in range(server_count):
        pipe = index // servers_per_pipe
        slot = index % servers_per_pipe
        base = pipe * 16 + slot * 4
        bindings.append(
            NfServerBinding(
                name=f"srv{index}",
                ingress_ports=(base, base + 1),
                nf_port=base + 2,
                default_egress_port=base,
            )
        )
    return bindings


@dataclass
class ScenarioConfig:
    """One experiment operating point."""

    name: str
    chain_factory: ChainFactory = field(default_factory=fw_nat)
    framework: NfFramework = OPENNETVM
    nic: NicSpec = NIC_10GE
    workload: Workload = field(default_factory=Workload.enterprise)
    send_rate_gbps: float = 8.0
    payloadpark: PayloadParkConfig = field(default_factory=PayloadParkConfig)
    duration_us: float = 6_000.0
    warmup_us: float = 1_500.0
    server_count: int = 1
    explicit_drop: bool = False
    service_jitter: float = 0.3
    cpu_ghz: float = 2.3
    gen_link_gbps: float = 100.0
    seed: int = field(default_factory=current_default_seed)
    switch_latency_ns: int = 800
    burst_size: int = 32
    #: Optional dynamic traffic bundle (schedule, arrival model, packet
    #: source, replay stream) built by the workload subsystem; None keeps
    #: the legacy constant-rate PacketFactory path.
    traffic_model: Optional[TrafficModel] = None
    #: Use the optimized simulation path: calendar event loop, pooled
    #: packet templates, compiled/cached pipeline walks and cost-model
    #: precomputation.  Behaviour-preserving — the golden-figure suite
    #: asserts byte-identical results against ``fast_path=False``, which
    #: keeps the original reference implementations.
    fast_path: bool = field(default_factory=current_default_fast_path)
    #: Optional fault-injection spec (see :mod:`repro.faults`): a
    #: registered profile name, an inline schedule dict, or an
    #: :class:`~repro.faults.schedule.EventSchedule`.  Kept as plain data
    #: so scenarios stay picklable and campaign grids can sweep it; the
    #: runner materializes it into a
    #: :class:`~repro.faults.injector.FaultInjectorNode` per run.
    faults: Optional[object] = field(default_factory=current_default_faults)
    #: Optional observability spec (see :mod:`repro.obs`): ``None``/bool,
    #: an inline dict, or an :class:`~repro.obs.config.ObserveSpec`.
    #: Plain data for the same picklability reasons as ``faults``; the
    #: runner materializes it into an
    #: :class:`~repro.obs.plane.ObservabilityPlane` per deployment run.
    #: Everything defaults off — the uninstrumented hot path is gated at
    #: <2% overhead by ``repro bench --obs-check``.
    observe: Optional[object] = field(default_factory=current_default_observe)
    #: Simulation fidelity tier (see :mod:`repro.fidelity`): ``packet``
    #: simulates every packet; ``auto`` advances eligible steady traffic
    #: segments with the calibrated fluid tier and falls back to the
    #: packet engine around boundaries (fault windows, rate
    #: discontinuities, SRAM pressure); ``fluid`` is ``auto`` that
    #: *requires* at least one steady segment and raises otherwise.
    #: Figure-level agreement between ``auto`` and ``packet`` is pinned
    #: by the fluid-vs-packet metamorphic relation.
    fidelity: str = field(default_factory=current_default_fidelity)

    def __post_init__(self) -> None:
        if self.fidelity not in FIDELITY_MODES:
            raise ValueError(
                f"fidelity must be one of {FIDELITY_MODES}, got {self.fidelity!r}"
            )

    def with_rate(self, rate_gbps: float) -> "ScenarioConfig":
        """A copy of this scenario at a different offered rate.

        Workload-driven scenarios keep their traffic model in step: a
        schedule or replay stream carries its own rate, so it must be
        rebuilt at the new mean or rate probes (the peak-goodput search)
        would keep offering the nominal load.
        """
        traffic_model = self.traffic_model
        if traffic_model is not None and traffic_model.rescale is not None:
            traffic_model = traffic_model.rescale(rate_gbps)
        return replace(self, send_rate_gbps=rate_gbps, traffic_model=traffic_model)

    def with_payloadpark(self, config: PayloadParkConfig) -> "ScenarioConfig":
        """A copy of this scenario with different PayloadPark parameters."""
        return replace(self, payloadpark=config)


@dataclass
class ExperimentResult:
    """Everything a benchmark needs from one scenario execution."""

    scenario: ScenarioConfig
    comparison: ComparisonReport
    per_server: List[ComparisonReport] = field(default_factory=list)

    @property
    def goodput_gain_percent(self) -> float:
        """Headline goodput gain of the scenario."""
        return self.comparison.goodput_gain_percent


class ExperimentRunner:
    """Builds and runs simulated testbeds for scenarios.

    Parameters
    ----------
    verbose:
        Reserved for future diagnostic output.
    time_scale:
        Multiplier applied to every scenario's simulated duration and
        warm-up.  The benchmark harness uses values below 1.0 to keep the
        full figure sweeps fast; results converge for scales ≥ 0.5 at the
        packet rates used in the paper.  ``None`` (the default) resolves
        through :func:`current_default_time_scale`, so the CLI's
        ``--time-scale`` flag reaches experiments that build their own
        runner.
    """

    def __init__(self, verbose: bool = False, time_scale: Optional[float] = None) -> None:
        if time_scale is None:
            time_scale = current_default_time_scale()
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.verbose = verbose
        self.time_scale = time_scale

    # ------------------------------------------------------------------ #
    # Single-server runs
    # ------------------------------------------------------------------ #

    def run_deployment(
        self, scenario: ScenarioConfig, deployment: DeploymentKind
    ) -> DeploymentReport:
        """Run one deployment of a single-server scenario and report metrics."""
        if scenario.server_count != 1:
            reports = self.run_multi_server(scenario, deployment)
            return _aggregate_reports(reports, scenario, deployment)

        env = FastEventLoop() if scenario.fast_path else EventLoop()
        binding = default_binding()
        program = self._build_program(scenario, deployment, [binding])
        model = self._build_server_model(scenario)
        pktgen_config = PktGenConfig(
            rate_gbps=scenario.send_rate_gbps,
            workload=scenario.workload,
            burst_size=scenario.burst_size,
            seed=scenario.seed,
            pooled=scenario.fast_path,
        )
        topology = SingleServerTopology(
            env,
            program,
            server_model=model,
            pktgen_config=pktgen_config,
            nic_spec=scenario.nic,
            gen_link_gbps=scenario.gen_link_gbps,
            traffic_model=scenario.traffic_model,
            fast_path=scenario.fast_path,
        )
        self._attach_faults(scenario, topology, program)
        return self._execute(scenario, deployment, topology, program)[0]

    def compare(self, scenario: ScenarioConfig) -> ExperimentResult:
        """Run baseline and PayloadPark at the same operating point."""
        baseline = self.run_deployment(scenario, DeploymentKind.BASELINE)
        payloadpark = self.run_deployment(scenario, DeploymentKind.PAYLOADPARK)
        return ExperimentResult(
            scenario=scenario,
            comparison=ComparisonReport(baseline=baseline, payloadpark=payloadpark),
        )

    # ------------------------------------------------------------------ #
    # Multi-server runs
    # ------------------------------------------------------------------ #

    def run_multi_server(
        self, scenario: ScenarioConfig, deployment: DeploymentKind
    ) -> List[DeploymentReport]:
        """Run a multi-server scenario; return one report per NF server."""
        env = FastEventLoop() if scenario.fast_path else EventLoop()
        bindings = multi_server_bindings(scenario.server_count)
        program = self._build_program(scenario, deployment, bindings)
        models = [self._build_server_model(scenario) for _ in bindings]
        pktgen_configs = [
            PktGenConfig(
                rate_gbps=scenario.send_rate_gbps,
                workload=scenario.workload,
                burst_size=scenario.burst_size,
                seed=scenario.seed + index,
                pooled=scenario.fast_path,
            )
            for index in range(len(bindings))
        ]
        topology = MultiServerTopology(
            env,
            program,
            server_models=models,
            pktgen_configs=pktgen_configs,
            nic_spec=scenario.nic,
            gen_link_gbps=scenario.gen_link_gbps,
            traffic_model=scenario.traffic_model,
            fast_path=scenario.fast_path,
        )
        self._attach_faults(scenario, topology, program)
        return self._execute(scenario, deployment, topology, program)

    def compare_multi_server(self, scenario: ScenarioConfig) -> ExperimentResult:
        """Baseline vs. PayloadPark, per server, for the §6.2.3 setup."""
        baseline_reports = self.run_multi_server(scenario, DeploymentKind.BASELINE)
        payloadpark_reports = self.run_multi_server(scenario, DeploymentKind.PAYLOADPARK)
        per_server = [
            ComparisonReport(baseline=base, payloadpark=park)
            for base, park in zip(baseline_reports, payloadpark_reports)
        ]
        aggregate = ComparisonReport(
            baseline=_aggregate_reports(baseline_reports, scenario, DeploymentKind.BASELINE),
            payloadpark=_aggregate_reports(
                payloadpark_reports, scenario, DeploymentKind.PAYLOADPARK
            ),
        )
        return ExperimentResult(scenario=scenario, comparison=aggregate, per_server=per_server)

    # ------------------------------------------------------------------ #
    # Peak-goodput search (Fig. 14)
    # ------------------------------------------------------------------ #

    def peak_goodput(
        self,
        scenario: ScenarioConfig,
        deployment: DeploymentKind = DeploymentKind.PAYLOADPARK,
        require_zero_premature_evictions: bool = True,
        rate_bounds_gbps: Tuple[float, float] = (1.0, 60.0),
        tolerance_gbps: float = 1.0,
        constraint: Optional[Callable[[DeploymentReport], bool]] = None,
    ) -> Tuple[float, DeploymentReport]:
        """Binary-search the highest offered rate that keeps the system healthy.

        The §6.3.1 definition: the system must keep its drop rate under
        0.1 % and (for PayloadPark) record zero premature payload
        evictions.  Returns the peak send rate and the report at it.
        """

        def is_acceptable(report: DeploymentReport) -> bool:
            if constraint is not None and not constraint(report):
                return False
            if not report.healthy:
                return False
            if (
                require_zero_premature_evictions
                and deployment is DeploymentKind.PAYLOADPARK
                and report.premature_evictions > 0
            ):
                return False
            return True

        low, high = rate_bounds_gbps
        best_rate = low
        best_report = self.run_deployment(scenario.with_rate(low), deployment)
        if not is_acceptable(best_report):
            return low, best_report
        while high - low > tolerance_gbps:
            middle = (low + high) / 2.0
            report = self.run_deployment(scenario.with_rate(middle), deployment)
            if is_acceptable(report):
                low = middle
                best_rate, best_report = middle, report
            else:
                high = middle
        return best_rate, best_report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _build_program(
        self,
        scenario: ScenarioConfig,
        deployment: DeploymentKind,
        bindings: List[NfServerBinding],
    ) -> SwitchProgram:
        if deployment is DeploymentKind.BASELINE:
            program: SwitchProgram = BaselineProgram(bindings)
        else:
            pp_config = replace(scenario.payloadpark, bindings=[])
            program = PayloadParkProgram(pp_config, bindings=bindings)
        if scenario.fast_path:
            program.enable_fast_path()
        return program

    def _build_server_model(self, scenario: ScenarioConfig) -> NfServerModel:
        framework = scenario.framework
        if scenario.explicit_drop:
            framework = framework.with_explicit_drop()
        config = NfServerConfig(
            cpu_ghz=scenario.cpu_ghz,
            framework=framework,
            rx_ring_entries=scenario.nic.rx_ring_entries,
            explicit_drop=scenario.explicit_drop,
            service_jitter=scenario.service_jitter,
        )
        chain = scenario.chain_factory()
        if scenario.fast_path:
            for nf in chain:
                nf.enable_fast_path()
        return NfServerModel(chain=chain, config=config)

    @staticmethod
    def _attach_faults(scenario: ScenarioConfig, topology, program: SwitchProgram) -> None:
        """Materialize the scenario's fault spec into an injector, if any."""
        if scenario.faults is None:
            return
        from repro.faults.injector import FaultInjectorNode
        from repro.faults.schedule import EventSchedule

        schedule = EventSchedule.from_spec(scenario.faults)
        topology.attach_fault_injector(
            FaultInjectorNode(
                topology.env, topology, program, schedule, seed=scenario.seed
            )
        )

    @staticmethod
    def _attach_observability(scenario: ScenarioConfig, topology, program):
        """Materialize the scenario's observe spec into a plane, if any.

        Imported lazily, like :meth:`_attach_faults` — the observability
        package layers on top of the runner.  Returns None when every
        feature is off, which keeps the run on the exact uninstrumented
        hot path.
        """
        if scenario.observe is None:
            return None
        from repro.obs.config import ObserveSpec
        from repro.obs.plane import ObservabilityPlane

        spec = ObserveSpec.from_spec(scenario.observe)
        if spec is None or not spec.enabled:
            return None
        plane = ObservabilityPlane(spec, topology.env)
        plane.attach(topology, program)
        return plane

    def _execute(
        self,
        scenario: ScenarioConfig,
        deployment: DeploymentKind,
        topology,
        program: SwitchProgram,
    ) -> List[DeploymentReport]:
        duration_ns = int(scenario.duration_us * 1_000 * self.time_scale)
        warmup_ns = int(scenario.warmup_us * 1_000 * self.time_scale)
        if warmup_ns >= duration_ns:
            raise ValueError("warmup must be shorter than the total duration")

        observer = current_run_observer()
        plane = self._attach_observability(scenario, topology, program)
        controller = self._build_tier_controller(
            scenario, topology, program, duration_ns, plane
        )
        if observer is not None:
            observer.on_run_start(scenario, deployment, topology, program)
        topology.start_traffic(duration_ns)
        if plane is not None:
            plane.start(duration_ns)
        self._advance(topology, plane, warmup_ns, controller)
        warm_snapshot = topology.snapshot()
        warm_counters = self._pp_counter_snapshot(program)
        warm_latency_counts = {
            attachment.binding.name: attachment.pktgen.latency.count
            for attachment in topology.attachments
        }
        self._advance(topology, plane, duration_ns, controller)
        end_snapshot = topology.snapshot()
        end_counters = self._pp_counter_snapshot(program)

        window_ns = duration_ns - warmup_ns
        reports = []
        for attachment in topology.attachments:
            name = attachment.binding.name
            reports.append(
                self._report_for_attachment(
                    scenario,
                    deployment,
                    attachment,
                    window_ns,
                    warm_snapshot,
                    end_snapshot,
                    warm_counters.get(name, {}),
                    end_counters.get(name, {}),
                    warm_latency_counts[name],
                )
            )
        if observer is not None:
            observer.on_run_end(scenario, deployment, topology, program, reports)
        if plane is not None:
            observation = plane.finalize(scenario, deployment.value, duration_ns)
            from repro.obs.session import current_observation_sink

            sink = current_observation_sink()
            if sink is not None:
                sink.add(observation)
        return reports

    def _build_tier_controller(
        self, scenario: ScenarioConfig, topology, program, duration_ns: int, plane
    ):
        """Materialize the scenario's fidelity tier, if not pure packet.

        Imported lazily like the fault and observability planes — the
        fidelity package layers on top of the runner.  Returns None for
        ``fidelity: packet``, keeping the default path byte-identical to
        what it was before the tiered engine existed.
        """
        if scenario.fidelity == "packet":
            return None
        from repro.fidelity import TierController

        controller = TierController(
            scenario,
            topology,
            program,
            duration_ns,
            time_scale=self.time_scale,
            observed=plane is not None,
        )
        # Exposed for diagnostics and the fidelity bench (not part of the
        # report pipeline).
        topology.tier_controller = controller
        return controller

    @staticmethod
    def _advance(topology, plane, horizon_ns: int, controller=None) -> None:
        """Run the event loop to *horizon_ns*, under the profiler if armed.

        ``measure_total`` brackets the whole dispatch loop so the profiler
        can attribute the un-instrumented residue to event dispatch.  A
        tier controller, when present, takes the place of the raw
        ``run_until`` and interleaves fluid jumps with packet stretches.
        """
        step = controller.advance if controller is not None else topology.run_until
        if plane is not None and plane.profiler is not None:
            with plane.profiler.measure_total():
                step(horizon_ns)
        else:
            step(horizon_ns)

    @staticmethod
    def _pp_counter_snapshot(program: SwitchProgram):
        if not isinstance(program, PayloadParkProgram):
            return {}
        return {
            name: counters.as_dict()
            for name, counters in program.counters.counters.items()
        }

    def _report_for_attachment(
        self,
        scenario: ScenarioConfig,
        deployment: DeploymentKind,
        attachment,
        window_ns: int,
        warm_snapshot,
        end_snapshot,
        warm_pp_counters,
        end_pp_counters,
        warm_latency_count: int,
    ) -> DeploymentReport:
        name = attachment.binding.name
        gen_delta = _delta(end_snapshot[f"pktgen.{name}"], warm_snapshot[f"pktgen.{name}"])
        server_delta = _delta(end_snapshot[f"server.{name}"], warm_snapshot[f"server.{name}"])
        link_delta = _delta(end_snapshot[f"links.{name}"], warm_snapshot[f"links.{name}"])
        pp_delta = _delta(end_pp_counters, warm_pp_counters)

        latency: LatencyRecorder = attachment.pktgen.latency.since(warm_latency_count)
        sent = int(gen_delta.get("packets_sent", 0))
        received = int(gen_delta.get("packets_received", 0))
        chain_dropped = int(server_delta.get("chain_dropped_packets", 0))
        # Unintentional drops observed inside the measurement window: link
        # egress-buffer overflows, NIC/server overflows, and PayloadPark
        # packets lost to premature evictions or corrupted tags.  Packets the
        # NF chain deliberately dropped (firewall policy) and frames lost to
        # *injected* faults (link outages, loss windows — deliberate scenario
        # conditions, attributed by their own counters) do not count against
        # the §6.3.1 health criterion, or a peak-goodput search under a fault
        # schedule would collapse regardless of actual system health.
        dropped = int(
            link_delta.get("dropped_frames", 0)
            - link_delta.get("fault_drops", 0)
            + server_delta.get("overflow_drops", 0)
            + pp_delta.get("premature_evictions", 0)
            + pp_delta.get("tag_validation_failures", 0)
        )

        # Goodput from the switch's perspective: useful header bytes examined
        # by the NF server per second (§6.1 measures the data the NFs see).
        processed = server_delta.get("processed_packets", 0)
        useful_bytes_to_nf = processed * 42.0
        goodput_to_nf = useful_bytes_to_nf * 8.0 / window_ns
        delivered_goodput = gen_delta.get("useful_bytes_received", 0) * 8.0 / window_ns
        offered = gen_delta.get("bytes_sent", 0) * 8.0 / window_ns
        # Throughput counts every delivered useful byte, duplicates
        # included; it equals goodput exactly until a closed-loop
        # transport retransmits.
        throughput = (
            gen_delta.get("useful_bytes_received", 0)
            + gen_delta.get("duplicate_bytes_received", 0)
        ) * 8.0 / window_ns
        pcie_bytes = server_delta.get("pcie_rx_bytes", 0) + server_delta.get("pcie_tx_bytes", 0)

        report = DeploymentReport(
            deployment=deployment.value,
            send_rate_gbps=scenario.send_rate_gbps,
            duration_ns=window_ns,
            packets_sent=sent,
            packets_delivered=received,
            packets_dropped=dropped,
            goodput_to_nf_gbps=goodput_to_nf,
            delivered_goodput_gbps=delivered_goodput,
            offered_gbps=offered,
            avg_latency_us=latency.mean_us(),
            p99_latency_us=latency.percentile_us(99),
            max_latency_us=latency.max_us(),
            jitter_us=latency.jitter_us(),
            pcie_gbps=pcie_bytes * 8.0 / window_ns,
            nf_packets_processed=int(server_delta.get("processed_packets", 0)),
            premature_evictions=int(pp_delta.get("premature_evictions", 0)),
            evictions=int(pp_delta.get("evictions", 0)),
            splits=int(pp_delta.get("splits", 0)),
            merges=int(pp_delta.get("merges", 0)),
            explicit_drops=int(pp_delta.get("explicit_drops", 0)),
            split_disabled=int(
                pp_delta.get("split_disabled_small_payload", 0)
                + pp_delta.get("split_disabled_table_occupied", 0)
            ),
            peak_queue_bytes=max(
                (
                    stats.peak_queue_bytes
                    for link in (*attachment.gen_links, attachment.server_link)
                    for stats in link.direction_counters()
                ),
                default=0,
            ),
            retransmitted_packets=int(gen_delta.get("retransmitted_packets", 0)),
            retransmitted_bytes=int(gen_delta.get("retransmitted_bytes", 0)),
            duplicate_packets=int(gen_delta.get("duplicate_packets_received", 0)),
            throughput_gbps=throughput,
            drop_breakdown={
                "server_overflow": int(server_delta.get("overflow_drops", 0)),
                "chain_dropped": chain_dropped,
                # Disjoint link categories: organic buffer overflows vs
                # injected fault losses (their sum is Link.total_drops()).
                "link_drops": sum(
                    link.buffer_drops() for link in attachment.gen_links
                )
                + attachment.server_link.buffer_drops(),
                "link_fault_drops": sum(
                    link.fault_drops() for link in attachment.gen_links
                )
                + attachment.server_link.fault_drops(),
            },
        )
        return report


def _delta(end: dict, start: dict) -> dict:
    """Element-wise ``end - start`` for counter snapshots."""
    return {key: end.get(key, 0) - start.get(key, 0) for key in end}


def _aggregate_reports(
    reports: List[DeploymentReport], scenario: ScenarioConfig, deployment: DeploymentKind
) -> DeploymentReport:
    """Sum/average per-server reports into one chip-level report."""
    if not reports:
        raise ValueError("cannot aggregate an empty report list")
    total = DeploymentReport(
        deployment=deployment.value,
        send_rate_gbps=scenario.send_rate_gbps,
        duration_ns=reports[0].duration_ns,
    )
    for report in reports:
        total.packets_sent += report.packets_sent
        total.packets_delivered += report.packets_delivered
        total.packets_dropped += report.packets_dropped
        total.goodput_to_nf_gbps += report.goodput_to_nf_gbps
        total.delivered_goodput_gbps += report.delivered_goodput_gbps
        total.offered_gbps += report.offered_gbps
        total.pcie_gbps += report.pcie_gbps
        total.nf_packets_processed += report.nf_packets_processed
        total.premature_evictions += report.premature_evictions
        total.evictions += report.evictions
        total.splits += report.splits
        total.merges += report.merges
        total.explicit_drops += report.explicit_drops
        total.split_disabled += report.split_disabled
        total.peak_queue_bytes = max(total.peak_queue_bytes, report.peak_queue_bytes)
        total.retransmitted_packets += report.retransmitted_packets
        total.retransmitted_bytes += report.retransmitted_bytes
        total.duplicate_packets += report.duplicate_packets
        total.throughput_gbps += report.throughput_gbps
    total.avg_latency_us = sum(r.avg_latency_us for r in reports) / len(reports)
    total.p99_latency_us = max(r.p99_latency_us for r in reports)
    total.max_latency_us = max(r.max_latency_us for r in reports)
    total.jitter_us = max(r.jitter_us for r in reports)
    return total
