"""Chain factories used across the evaluation.

Each factory builds a *fresh* chain (NFs hold state — NAT bindings,
firewall counters — so every simulation run gets its own instances).
The chains mirror §6.1: the three-NF chain's firewall has 20 rules, the
two-NF chain's firewall has a single rule, the load balancer is
Maglev-based and the NAT is MazuNAT-style.
"""

from __future__ import annotations

from typing import Callable

from repro.nf.chain import NfChain
from repro.nf.firewall import Firewall
from repro.nf.loadbalancer import MaglevLoadBalancer
from repro.nf.macswap import MacSwapper
from repro.nf.nat import Nat
from repro.nf.synthetic import SyntheticNf

ChainFactory = Callable[[], NfChain]


def firewall_only(rule_count: int = 1) -> ChainFactory:
    """A single firewall NF (Fig. 8/9's "Firewall" series)."""

    def build() -> NfChain:
        return NfChain([Firewall.with_rule_count(rule_count)], name="Firewall")

    return build


def nat_only() -> ChainFactory:
    """A single NAT NF (Fig. 8/9's "NAT" series)."""

    def build() -> NfChain:
        return NfChain([Nat()], name="NAT")

    return build


def fw_nat(rule_count: int = 1) -> ChainFactory:
    """The two-NF chain: Firewall → NAT (single firewall rule, §6.1)."""

    def build() -> NfChain:
        return NfChain(
            [Firewall.with_rule_count(rule_count), Nat()], name="FW -> NAT"
        )

    return build


def fw_nat_lb(rule_count: int = 20, backend_count: int = 8) -> ChainFactory:
    """The three-NF chain: Firewall (20 rules) → NAT → Maglev LB (§6.1)."""

    def build() -> NfChain:
        return NfChain(
            [
                Firewall.with_rule_count(rule_count),
                Nat(),
                MaglevLoadBalancer.with_backend_count(backend_count),
            ],
            name="FW -> NAT -> LB",
        )

    return build


def mac_swapper() -> ChainFactory:
    """A lone MAC swapper (functional equivalence, multi-server setup)."""

    def build() -> NfChain:
        return NfChain([MacSwapper()], name="MACSwap")

    return build


def synthetic(cycles: int, label: str) -> ChainFactory:
    """A synthetic NF with a fixed per-packet cycle budget (§6.3.3)."""

    def build() -> NfChain:
        return NfChain([SyntheticNf(cycles, name=label)], name=label)

    return build
