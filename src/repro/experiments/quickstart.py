"""The quickstart experiment exposed as :func:`repro.quickstart`.

A small FW → NAT comparison behind a 10 GbE NIC with the enterprise
packet mix — enough to see PayloadPark's goodput gain and PCIe savings
in a few seconds of wall-clock time.
"""

from __future__ import annotations

from repro.experiments import chains
from repro.experiments.runner import ExperimentRunner, ScenarioConfig
from repro.experiments.scenarios import MACRO_PP_CONFIG
from repro.netsim.nic import NIC_10GE
from repro.nf.framework import OPENNETVM
from repro.telemetry.report import ComparisonReport
from repro.traffic.workload import Workload


def quickstart_scenario(send_rate_gbps: float = 9.5) -> ScenarioConfig:
    """A small but representative operating point."""
    return ScenarioConfig(
        name="quickstart-fw-nat-10ge",
        chain_factory=chains.fw_nat(rule_count=1),
        framework=OPENNETVM,
        nic=NIC_10GE,
        workload=Workload.enterprise(),
        send_rate_gbps=send_rate_gbps,
        payloadpark=MACRO_PP_CONFIG,
        duration_us=4_000.0,
        warmup_us=1_000.0,
    )


def run_quickstart(send_rate_gbps: float = 9.5) -> ComparisonReport:
    """Run the quickstart comparison and return the report."""
    runner = ExperimentRunner()
    result = runner.compare(quickstart_scenario(send_rate_gbps))
    return result.comparison
