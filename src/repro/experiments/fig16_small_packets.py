"""Fig. 16: goodput and latency with 512-byte packets (FW → NAT, 40 GbE).

With small fixed-size packets the baseline is capped by how many bytes
the NIC/PCIe path can move (≈ 34 Gb/s of 512-byte frames), while
PayloadPark keeps processing packets at higher send rates because each
frame crossing the NIC is 153 bytes lighter.  Before the baseline
saturates, PayloadPark's latency is lower; past saturation both curves'
latencies climb because the NF server itself is the next bottleneck.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import small_packet_40ge
from repro.telemetry.report import render_table

#: Send rates swept in Fig. 16 (Gbps); the baseline link capacity is 40 Gbps.
DEFAULT_RATES_GBPS = (10.0, 20.0, 28.0, 33.0, 36.0, 40.0, 44.0)


def run(rates_gbps: Sequence[float] = DEFAULT_RATES_GBPS,
        runner: Optional[ExperimentRunner] = None) -> List[Dict[str, object]]:
    """One row per send rate: goodput and latency under both deployments."""
    runner = runner or ExperimentRunner()
    rows = []
    for rate in rates_gbps:
        comparison = runner.compare(small_packet_40ge(send_rate_gbps=rate)).comparison
        rows.append(
            {
                "send_rate_gbps": rate,
                "baseline_goodput_gbps": round(comparison.baseline.goodput_to_nf_gbps, 4),
                "payloadpark_goodput_gbps": round(
                    comparison.payloadpark.goodput_to_nf_gbps, 4
                ),
                "baseline_latency_us": round(comparison.baseline.avg_latency_us, 2),
                "payloadpark_latency_us": round(comparison.payloadpark.avg_latency_us, 2),
                "baseline_healthy": comparison.baseline.healthy,
                "payloadpark_healthy": comparison.payloadpark.healthy,
            }
        )
    return rows


def main() -> None:
    """Print the Fig. 16 reproduction."""
    print("Fig. 16 — 512-byte packets, FW -> NAT, 40 GbE NIC")
    print(render_table(run()))


if __name__ == "__main__":
    main()
