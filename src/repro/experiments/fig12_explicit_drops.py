"""Fig. 12: payload eviction policies vs. Explicit Drop notifications.

The firewall drops a configurable fraction of traffic.  Without Explicit
Drops, the parked payloads of dropped packets sit in the lookup table
until the expiry threshold evicts them; a conservative threshold
(EXP=10) therefore wastes table space and loses goodput, while an
aggressive one (EXP=2) stays close to the Explicit-Drop ground truth.
Explicit Drops combined with a conservative threshold recover the
aggressive policy's goodput at the cost of a ~50-line framework change.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import DeploymentKind, ExperimentRunner
from repro.experiments.scenarios import explicit_drop_scenario
from repro.telemetry.report import render_table

#: Fraction of traffic aimed at blacklisted sources (controls the firewall drop rate).
DEFAULT_DROP_FRACTIONS = (0.0, 0.02, 0.05, 0.10)

#: (expiry threshold, explicit drops enabled) combinations shown in Fig. 12.
DEFAULT_POLICIES = (
    (2, False),
    (10, False),
    (2, True),
    (10, True),
)


def run(
    drop_fractions: Sequence[float] = DEFAULT_DROP_FRACTIONS,
    policies: Sequence = DEFAULT_POLICIES,
    send_rate_gbps: float = 10.5,
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (drop fraction, policy), plus a baseline row per drop fraction."""
    runner = runner or ExperimentRunner()
    rows = []
    for fraction in drop_fractions:
        baseline_scenario = explicit_drop_scenario(
            expiry_threshold=2,
            explicit_drop=False,
            blacklisted_fraction=fraction,
            send_rate_gbps=send_rate_gbps,
        )
        baseline = runner.run_deployment(baseline_scenario, DeploymentKind.BASELINE)
        rows.append(
            {
                "firewall_drop_fraction": fraction,
                "policy": "baseline",
                "goodput_gbps": round(baseline.goodput_to_nf_gbps, 4),
                "splits_disabled": 0,
                "explicit_drops": 0,
            }
        )
        for expiry_threshold, explicit in policies:
            scenario = explicit_drop_scenario(
                expiry_threshold=expiry_threshold,
                explicit_drop=explicit,
                blacklisted_fraction=fraction,
                send_rate_gbps=send_rate_gbps,
            )
            report = runner.run_deployment(scenario, DeploymentKind.PAYLOADPARK)
            label = f"{'Explicit' if explicit else 'No Explicit'} EXP={expiry_threshold}"
            rows.append(
                {
                    "firewall_drop_fraction": fraction,
                    "policy": label,
                    "goodput_gbps": round(report.goodput_to_nf_gbps, 4),
                    "splits_disabled": report.split_disabled,
                    "explicit_drops": report.explicit_drops,
                }
            )
    return rows


def main() -> None:
    """Print the Fig. 12 reproduction."""
    print("Fig. 12 — goodput with/without Explicit Drops (FW -> NAT, enterprise mix)")
    print(render_table(run()))


if __name__ == "__main__":
    main()
