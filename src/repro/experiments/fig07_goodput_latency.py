"""Fig. 7 (and the §6.2.1 40 GbE result): goodput and latency vs. send rate.

The FW → NAT → LB chain runs on NetBricks behind a 10 GbE NIC while the
traffic generator sweeps its offered rate; PayloadPark keeps goodput
climbing past the point where the baseline's switch → NF-server link
saturates, without a latency penalty.  The paper reports a 13 % goodput
gain for this chain at the baseline's saturation point and a 15.6 % gain
(plus 12 % PCIe savings) for FW → NAT on the 40 GbE NIC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import fw_nat_40ge_enterprise
from repro.orchestrator import CampaignExecutor, CampaignSpec
from repro.orchestrator.aggregate import fig07_rows
from repro.telemetry.report import render_table

#: Send rates swept in Fig. 7 (Gbps); the baseline link capacity is 10 Gbps.
DEFAULT_RATES_GBPS = (2.0, 4.0, 6.0, 8.0, 9.5, 10.5, 12.0)


def campaign(rates_gbps: Sequence[float] = DEFAULT_RATES_GBPS,
             time_scale: float = 1.0) -> CampaignSpec:
    """The Fig. 7 rate sweep as an orchestrator campaign."""
    return CampaignSpec(
        name="fig07-rate-sweep",
        scenario="fw_nat_lb_10ge",
        grid={"send_rate_gbps": list(rates_gbps)},
        time_scale=time_scale,
        description="Fig. 7 — goodput/latency vs. send rate, FW -> NAT -> LB, 10 GbE",
    )


def run(rates_gbps: Sequence[float] = DEFAULT_RATES_GBPS,
        runner: Optional[ExperimentRunner] = None,
        workers: int = 1) -> List[Dict[str, object]]:
    """Sweep send rates for the Fig. 7 scenario; one row per rate.

    Execution is delegated to the campaign orchestrator; *runner* only
    contributes its ``time_scale`` (worker processes build their own
    runners from the run descriptors).
    """
    runner = runner or ExperimentRunner()
    spec = campaign(rates_gbps, time_scale=runner.time_scale)
    summary = CampaignExecutor(workers=workers).run_campaign(spec)
    summary.raise_on_failure()
    return fig07_rows(spec.expand(), summary.records)


def run_40ge_fw_nat(send_rate_gbps: float = 30.0,
                    runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """The §6.2.1 text result: FW → NAT on the 40 GbE NIC with OpenNetVM."""
    runner = runner or ExperimentRunner()
    result = runner.compare(fw_nat_40ge_enterprise(send_rate_gbps=send_rate_gbps))
    comparison = result.comparison
    return {
        "send_rate_gbps": send_rate_gbps,
        "goodput_gain_percent": round(comparison.goodput_gain_percent, 2),
        "pcie_savings_percent": round(comparison.pcie_savings_percent, 2),
        "latency_delta_us": round(comparison.latency_delta_us, 2),
        "paper_goodput_gain_percent": 15.6,
        "paper_pcie_savings_percent": 12.0,
    }


def main() -> None:
    """Print the Fig. 7 reproduction."""
    print("Fig. 7 — FW -> NAT -> LB on NetBricks, 10 GbE NIC")
    print(render_table(run()))
    print()
    print("§6.2.1 — FW -> NAT on OpenNetVM, 40 GbE NIC")
    row = run_40ge_fw_nat()
    print(render_table([row]))


if __name__ == "__main__":
    main()
