"""Preset scenarios matching the paper's evaluation setups (§6.1).

Each helper returns a :class:`~repro.experiments.runner.ScenarioConfig`
pre-filled with the chain, framework, NIC and workload the corresponding
experiment used; the caller only varies the swept parameter (offered
rate, packet size, expiry threshold, reserved memory, …).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.config import PayloadParkConfig
from repro.experiments import chains
from repro.experiments.runner import ScenarioConfig
from repro.netsim.nic import NIC_10GE, NIC_40GE
from repro.nf.framework import NETBRICKS, OPENNETVM
from repro.nf.synthetic import NF_HEAVY_CYCLES, NF_LIGHT_CYCLES, NF_MEDIUM_CYCLES
from repro.traffic.workload import Workload

#: Macro-benchmark defaults (§6.1): ≈26 % of switch memory, expiry threshold 1.
MACRO_PP_CONFIG = PayloadParkConfig(sram_fraction=0.26, expiry_threshold=1)


def fw_nat_lb_10ge(send_rate_gbps: float = 8.0) -> ScenarioConfig:
    """Fig. 7 / Fig. 13 setup: FW → NAT → LB on NetBricks behind a 10 GbE NIC."""
    return ScenarioConfig(
        name="fw-nat-lb-10ge-netbricks",
        chain_factory=chains.fw_nat_lb(rule_count=20),
        framework=NETBRICKS,
        nic=NIC_10GE,
        workload=Workload.enterprise(),
        send_rate_gbps=send_rate_gbps,
        payloadpark=MACRO_PP_CONFIG,
    )


def fw_nat_lb_10ge_recirculation(send_rate_gbps: float = 8.0) -> ScenarioConfig:
    """Fig. 13: the same chain with recirculation parking 384 bytes."""
    scenario = fw_nat_lb_10ge(send_rate_gbps)
    return replace(
        scenario,
        name="fw-nat-lb-10ge-recirculation",
        payloadpark=PayloadParkConfig.with_recirculation(
            sram_fraction=MACRO_PP_CONFIG.sram_fraction,
            expiry_threshold=MACRO_PP_CONFIG.expiry_threshold,
        ),
    )


def fw_nat_40ge_enterprise(send_rate_gbps: float = 30.0) -> ScenarioConfig:
    """§6.2.1's 40 GbE run: FW → NAT on OpenNetVM with the enterprise mix."""
    return ScenarioConfig(
        name="fw-nat-40ge-opennetvm",
        chain_factory=chains.fw_nat(rule_count=1),
        framework=OPENNETVM,
        nic=NIC_40GE,
        workload=Workload.enterprise(),
        send_rate_gbps=send_rate_gbps,
        payloadpark=MACRO_PP_CONFIG,
    )


def fixed_size_40ge(chain_name: str, packet_size: int,
                    send_rate_gbps: float = 38.0) -> ScenarioConfig:
    """Fig. 8 / Fig. 9 setup: fixed packet sizes on the 40 GbE NIC (OpenNetVM).

    ``chain_name`` is one of ``firewall``, ``nat`` or ``fw_nat``.
    """
    factories = {
        "firewall": chains.firewall_only(rule_count=1),
        "nat": chains.nat_only(),
        "fw_nat": chains.fw_nat(rule_count=1),
    }
    if chain_name not in factories:
        raise ValueError(f"unknown chain {chain_name!r}; expected one of {sorted(factories)}")
    return ScenarioConfig(
        name=f"{chain_name}-{packet_size}B-40ge",
        chain_factory=factories[chain_name],
        framework=OPENNETVM,
        nic=NIC_40GE,
        workload=Workload.fixed_size(packet_size),
        send_rate_gbps=send_rate_gbps,
        payloadpark=MACRO_PP_CONFIG,
    )


def multi_server_384b(server_count: int = 8, send_rate_gbps: float = 9.0) -> ScenarioConfig:
    """Fig. 10 / Fig. 11 setup: MAC-swapping servers, 384-byte packets, sliced memory."""
    return ScenarioConfig(
        name=f"multi-server-{server_count}x-384B",
        chain_factory=chains.mac_swapper(),
        framework=OPENNETVM,
        nic=NIC_10GE,
        workload=Workload.fixed_size(384),
        send_rate_gbps=send_rate_gbps,
        payloadpark=PayloadParkConfig(sram_fraction=0.40, expiry_threshold=1),
        server_count=server_count,
        cpu_ghz=2.4,
    )


def explicit_drop_scenario(
    expiry_threshold: int,
    explicit_drop: bool,
    blacklisted_fraction: float = 0.05,
    send_rate_gbps: float = 8.0,
) -> ScenarioConfig:
    """Fig. 12 setup: FW → NAT with firewall drops and eviction-policy knobs."""
    suffix = "explicit" if explicit_drop else "no-explicit"
    return ScenarioConfig(
        name=f"fw-nat-exp{expiry_threshold}-{suffix}",
        chain_factory=chains.fw_nat(rule_count=1),
        framework=OPENNETVM,
        nic=NIC_10GE,
        workload=Workload.enterprise(blacklisted_fraction=blacklisted_fraction),
        send_rate_gbps=send_rate_gbps,
        payloadpark=PayloadParkConfig(
            sram_fraction=0.26, expiry_threshold=expiry_threshold
        ),
        explicit_drop=explicit_drop,
    )


def memory_sweep_scenario(sram_fraction: float, send_rate_gbps: float = 20.0) -> ScenarioConfig:
    """Fig. 14 setup: 384-byte packets, FW → NAT, EXP=1, varying reserved memory."""
    return ScenarioConfig(
        name=f"memory-{sram_fraction:.2f}",
        chain_factory=chains.fw_nat(rule_count=1),
        framework=OPENNETVM,
        nic=NIC_40GE,
        workload=Workload.fixed_size(384),
        send_rate_gbps=send_rate_gbps,
        payloadpark=PayloadParkConfig(sram_fraction=sram_fraction, expiry_threshold=1),
    )


def nf_cycles_scenario(nf_kind: str, packet_size: int,
                       send_rate_gbps: float = 30.0) -> ScenarioConfig:
    """Fig. 15 setup: synthetic NF-Light/Medium/Heavy at various packet sizes."""
    cycle_map = {
        "light": (NF_LIGHT_CYCLES, "NF-Light"),
        "medium": (NF_MEDIUM_CYCLES, "NF-Medium"),
        "heavy": (NF_HEAVY_CYCLES, "NF-Heavy"),
    }
    if nf_kind not in cycle_map:
        raise ValueError(f"unknown NF kind {nf_kind!r}; expected one of {sorted(cycle_map)}")
    cycles, label = cycle_map[nf_kind]
    return ScenarioConfig(
        name=f"{label}-{packet_size}B",
        chain_factory=chains.synthetic(cycles, label),
        framework=OPENNETVM,
        nic=NIC_40GE,
        workload=Workload.fixed_size(packet_size),
        send_rate_gbps=send_rate_gbps,
        payloadpark=MACRO_PP_CONFIG,
    )


def small_packet_40ge(send_rate_gbps: float = 30.0) -> ScenarioConfig:
    """Fig. 16 setup: 512-byte packets, FW → NAT, OpenNetVM, 40 GbE NIC."""
    return ScenarioConfig(
        name="fw-nat-512B-40ge",
        chain_factory=chains.fw_nat(rule_count=1),
        framework=OPENNETVM,
        nic=NIC_40GE,
        workload=Workload.fixed_size(512),
        send_rate_gbps=send_rate_gbps,
        payloadpark=MACRO_PP_CONFIG,
    )


#: Chain names accepted by :func:`workload_scenario`.
_WORKLOAD_CHAINS = {
    "fw_nat": lambda: chains.fw_nat(rule_count=1),
    "fw_nat_lb": lambda: chains.fw_nat_lb(rule_count=20),
    "firewall": lambda: chains.firewall_only(rule_count=1),
    "nat": chains.nat_only,
    "macswap": chains.mac_swapper,
}


def workload_scenario(
    workload: str = "enterprise-poisson",
    send_rate_gbps: Optional[float] = None,
    chain: str = "fw_nat",
) -> ScenarioConfig:
    """A named workload from the registry behind the standard macro setup.

    This is the entry point campaigns use to sweep workload × rate ×
    memory grids: ``workload`` names a registered generative or replay
    model, ``send_rate_gbps`` rescales its mean offered load (defaulting
    to the workload's nominal rate), and every other campaign override
    (``sram_fraction``, ``expiry_threshold``, …) applies as usual.
    """
    from repro.workloads.registry import get_workload

    spec = get_workload(workload)
    if chain not in _WORKLOAD_CHAINS:
        raise ValueError(f"unknown chain {chain!r}; expected one of {sorted(_WORKLOAD_CHAINS)}")
    rate = send_rate_gbps if send_rate_gbps is not None else spec.nominal_rate_gbps()
    return ScenarioConfig(
        name=f"workload-{spec.name}",
        chain_factory=_WORKLOAD_CHAINS[chain](),
        framework=OPENNETVM,
        nic=NIC_10GE,
        workload=spec.workload(),
        send_rate_gbps=rate,
        payloadpark=MACRO_PP_CONFIG,
        traffic_model=spec.traffic_model(rate),
        burst_size=spec.burst_size,
    )


def functional_equivalence_scenario(send_rate_gbps: float = 4.0) -> ScenarioConfig:
    """§6.2.6 setup: a MAC-swapping NF fed with the enterprise mix."""
    return ScenarioConfig(
        name="functional-equivalence-macswap",
        chain_factory=chains.mac_swapper(),
        framework=OPENNETVM,
        nic=NIC_10GE,
        workload=Workload.enterprise(),
        send_rate_gbps=send_rate_gbps,
        payloadpark=MACRO_PP_CONFIG,
        service_jitter=0.0,
    )
