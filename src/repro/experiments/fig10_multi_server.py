"""Fig. 10: per-server goodput when 8 NF servers share the switch.

The switch reserves ≈ 40 % of its memory, statically sliced between the
two NF servers on each pipe; every server runs a MAC swapper fed with
384-byte packets from its own traffic generator.  The paper reports a
consistent per-server goodput gain (31.22 % on average) showing that
static slicing preserves performance isolation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.scenarios import multi_server_384b
from repro.telemetry.report import render_table


def run_comparison(
    server_count: int = 8,
    send_rate_gbps: float = 9.0,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Run the multi-server scenario once under both deployments."""
    runner = runner or ExperimentRunner()
    scenario = multi_server_384b(server_count=server_count, send_rate_gbps=send_rate_gbps)
    return runner.compare_multi_server(scenario)


def rows_from_result(result: ExperimentResult) -> List[Dict[str, object]]:
    """Fig. 10 rows: per-server goodput under both deployments."""
    rows = []
    for index, comparison in enumerate(result.per_server, start=1):
        rows.append(
            {
                "server": index,
                "baseline_goodput_gbps": round(comparison.baseline.goodput_to_nf_gbps, 4),
                "payloadpark_goodput_gbps": round(
                    comparison.payloadpark.goodput_to_nf_gbps, 4
                ),
                "goodput_gain_percent": round(comparison.goodput_gain_percent, 2),
            }
        )
    return rows


def run(server_count: int = 8, send_rate_gbps: float = 9.0,
        runner: Optional[ExperimentRunner] = None) -> List[Dict[str, object]]:
    """Convenience wrapper returning the Fig. 10 rows directly."""
    return rows_from_result(
        run_comparison(server_count=server_count, send_rate_gbps=send_rate_gbps, runner=runner)
    )


def main() -> None:
    """Print the Fig. 10 reproduction."""
    result = run_comparison()
    rows = rows_from_result(result)
    print("Fig. 10 — per-server goodput, 8 NF servers, 384-byte packets")
    print(render_table(rows))
    average_gain = sum(row["goodput_gain_percent"] for row in rows) / len(rows)
    print(f"average goodput gain: {average_gain:.2f}% (paper: 31.22%)")


if __name__ == "__main__":
    main()
