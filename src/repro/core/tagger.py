"""The packet tagger (Algorithm 1, stage 1).

Every packet considered for Split gets a unique tag built from two
registers: a table index that walks the lookup table as a circular
buffer, and a generation clock that disambiguates successive occupants
of the same slot.  Both counters are 2-byte registers; the atomic
read-modify-write of the stateful ALU guarantees that back-to-back
packets in the pipeline receive distinct indices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.switchsim.context import PipelinePacket
from repro.switchsim.pipeline import Pipeline
from repro.switchsim.registers import RegisterArray


@dataclass(frozen=True)
class Tag:
    """The (table index, clock) pair produced by the tagger for one packet."""

    tbl_idx: int
    clk: int


class PacketTagger:
    """Owns the table-index and clock registers of one NF-server binding."""

    def __init__(
        self,
        name: str,
        pipeline: Pipeline,
        table_entries: int,
        clock_max: int = 65_536,
        stage_index: int = 0,
    ) -> None:
        if table_entries <= 0:
            raise ValueError("table_entries must be positive")
        if clock_max < 2:
            raise ValueError("clock_max must be at least 2")
        self.table_entries = table_entries
        self.clock_max = clock_max
        stage = pipeline.stage(stage_index)
        self._tbl_idx: RegisterArray = stage.add_register_array(
            name=f"{name}.tbl_idx", size=1, width_bits=16, initial=table_entries - 1
        )
        self._clk: RegisterArray = stage.add_register_array(
            name=f"{name}.clk", size=1, width_bits=16, initial=clock_max - 1
        )

    def next_tag(self, ctx: PipelinePacket) -> Tag:
        """Advance both counters for the packet in *ctx* and return its tag.

        Matches Algorithm 1 lines 4–7: each counter is incremented and
        wrapped with a single stateful access, and the post-increment
        values become the packet's metadata.
        """
        tbl_idx = self._tbl_idx.read_modify_write(
            ctx, 0, lambda value: (value + 1) % self.table_entries
        )
        clk = self._clk.read_modify_write(ctx, 0, lambda value: (value + 1) % self.clock_max)
        return Tag(tbl_idx=tbl_idx, clk=clk)

    # Control-plane helpers ------------------------------------------------

    def peek(self) -> Tag:
        """Control-plane read of the current counter values."""
        return Tag(tbl_idx=self._tbl_idx.peek(0), clk=self._clk.peek(0))

    def reset(self) -> None:
        """Reset both counters to their initial values (control plane)."""
        self._tbl_idx.poke(0, self.table_entries - 1)
        self._clk.poke(0, self.clock_max - 1)
