"""The lookup table: metadata + payload register arrays (§3.3, Fig. 4).

PayloadPark layers a lookup-table abstraction over the raw register API:

* the **metadata table** is a register array whose entries hold the
  generation clock of the packet occupying a slot plus the expiry
  threshold counting down toward eviction, and
* the **payload table** is a two-dimensional array whose columns (payload
  blocks) are MAT-local register arrays striped across the pipeline's
  stages; row *i* of every column together holds the parked payload of
  the packet tagged with table index *i*.

All dataplane accesses go through the owning packet's context so the
single-stateful-access-per-array-per-pass restriction is enforced by the
switch substrate, exactly as on the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.switchsim.context import PipelinePacket
from repro.switchsim.pipeline import Pipeline
from repro.switchsim.registers import RegisterArray


@dataclass(frozen=True)
class MetadataEntry:
    """One metadata-table slot: the occupant's clock and the expiry countdown.

    ``exp == 0`` means the slot is free; any non-zero value means it is
    occupied and will be evicted after ``exp`` more probes by the Split
    stage's table index.
    """

    clk: int = 0
    exp: int = 0

    @property
    def occupied(self) -> bool:
        """True when a parked payload currently owns this slot."""
        return self.exp > 0


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of a Split-stage probe of the metadata table."""

    claimed: bool
    evicted: bool
    previous: MetadataEntry


@dataclass(frozen=True)
class ReleaseResult:
    """Outcome of a Merge-stage validation of the metadata table."""

    valid: bool
    previous: MetadataEntry


@dataclass(frozen=True)
class PayloadBlockSlot:
    """Placement of one payload block: which stage holds which byte range."""

    block_index: int
    stage_index: int
    pass_number: int
    offset: int
    length: int


class LookupTable:
    """Metadata table plus striped payload table for one NF-server binding.

    Parameters
    ----------
    name:
        Unique prefix for the register arrays (one lookup table per
        NF-server binding may share a pipe with others).
    pipeline:
        The pipe's match-action pipeline; register arrays are allocated
        from its stages' SRAM budgets.
    entries:
        Capacity ``M`` of the table.
    parked_bytes:
        Total payload bytes parked per packet.
    block_bytes:
        Payload-block width (bytes stored per register array).
    metadata_stage:
        Stage holding the metadata array (stage 1 in the paper).
    first_payload_stage:
        First stage available for payload blocks (stage 2 in the paper).
    allow_second_pass:
        Whether blocks that do not fit in the first pass may be placed
        for a recirculation pass (striped across *all* stages, mirroring
        the paper's use of a second pipe's stages).
    """

    METADATA_ENTRY_BITS = 32  # 16-bit clock + 16-bit expiry threshold

    def __init__(
        self,
        name: str,
        pipeline: Pipeline,
        entries: int,
        parked_bytes: int,
        block_bytes: int = 16,
        metadata_stage: int = 1,
        first_payload_stage: int = 2,
        allow_second_pass: bool = False,
    ) -> None:
        if entries <= 0:
            raise ValueError("lookup table needs a positive number of entries")
        if entries > 0xFFFF:
            raise ValueError(
                f"lookup table capacity {entries} exceeds the 16-bit table index"
            )
        self.name = name
        self.entries = entries
        self.parked_bytes = parked_bytes
        self.block_bytes = block_bytes
        self.metadata_stage = metadata_stage
        self.first_payload_stage = first_payload_stage
        self._pipeline = pipeline

        self.metadata = pipeline.stage(metadata_stage).add_register_array(
            name=f"{name}.meta_tbl",
            size=entries,
            width_bits=self.METADATA_ENTRY_BITS,
            initial=MetadataEntry(),
        )

        self.block_slots: List[PayloadBlockSlot] = self._plan_blocks(
            pipeline, parked_bytes, block_bytes, first_payload_stage, allow_second_pass
        )
        self.block_arrays: List[RegisterArray] = []
        for slot in self.block_slots:
            array = pipeline.stage(slot.stage_index).add_register_array(
                name=f"{name}.pload_tbl[{slot.block_index}]",
                size=entries,
                width_bits=slot.length * 8,
                initial=b"",
            )
            self.block_arrays.append(array)

    # ------------------------------------------------------------------ #
    # Layout planning
    # ------------------------------------------------------------------ #

    @staticmethod
    def _plan_blocks(
        pipeline: Pipeline,
        parked_bytes: int,
        block_bytes: int,
        first_payload_stage: int,
        allow_second_pass: bool,
    ) -> List[PayloadBlockSlot]:
        """Assign each payload block to a stage and a pipeline pass.

        First-pass blocks occupy one register array per stage from
        ``first_payload_stage`` to the end of the pipeline (10 stages →
        160 bytes with 16-byte blocks).  Remaining bytes require a
        recirculation pass and are striped round-robin across *all*
        stages, which corresponds to the paper storing the extra 224
        bytes across the stages reached via recirculation.
        """
        slots: List[PayloadBlockSlot] = []
        remaining = parked_bytes
        offset = 0
        block_index = 0

        first_pass_stages = list(range(first_payload_stage, pipeline.stage_count))
        for stage_index in first_pass_stages:
            if remaining <= 0:
                break
            length = min(block_bytes, remaining)
            slots.append(
                PayloadBlockSlot(
                    block_index=block_index,
                    stage_index=stage_index,
                    pass_number=0,
                    offset=offset,
                    length=length,
                )
            )
            block_index += 1
            offset += length
            remaining -= length

        if remaining > 0:
            if not allow_second_pass:
                capacity = len(first_pass_stages) * block_bytes
                raise ValueError(
                    f"parking {parked_bytes} bytes needs recirculation: a single pass "
                    f"stores at most {capacity} bytes with {block_bytes}-byte blocks"
                )
            second_pass_stages = list(range(pipeline.stage_count))
            stage_cursor = 0
            while remaining > 0:
                # Round-robin across all stages; a stage may host more than
                # one second-pass block (multiple MATs execute in parallel).
                stage_index = second_pass_stages[stage_cursor % len(second_pass_stages)]
                length = min(block_bytes, remaining)
                slots.append(
                    PayloadBlockSlot(
                        block_index=block_index,
                        stage_index=stage_index,
                        pass_number=1,
                        offset=offset,
                        length=length,
                    )
                )
                block_index += 1
                offset += length
                remaining -= length
                stage_cursor += 1
        return slots

    @property
    def uses_second_pass(self) -> bool:
        """True when some payload blocks are only reachable via recirculation."""
        return any(slot.pass_number > 0 for slot in self.block_slots)

    def blocks_for_pass(self, pass_number: int) -> List[Tuple[PayloadBlockSlot, RegisterArray]]:
        """Return ``(slot, array)`` pairs handled during *pass_number*."""
        return [
            (slot, array)
            for slot, array in zip(self.block_slots, self.block_arrays)
            if slot.pass_number == pass_number
        ]

    # ------------------------------------------------------------------ #
    # Metadata-table dataplane operations
    # ------------------------------------------------------------------ #

    def probe_and_claim(
        self, ctx: PipelinePacket, index: int, clk: int, max_exp: int
    ) -> ProbeResult:
        """Algorithm 1, stage 2: one stateful access to the metadata table.

        If the probed slot is occupied its expiry threshold is
        decremented; if the slot is (or becomes) free it is claimed for
        this packet by writing the clock and resetting the threshold.
        """
        outcome = {}

        def update(entry: MetadataEntry) -> MetadataEntry:
            exp = entry.exp
            if exp >= 1:
                exp -= 1
            if exp == 0:
                outcome["claimed"] = True
                outcome["evicted"] = entry.occupied
                outcome["previous"] = entry
                return MetadataEntry(clk=clk, exp=max_exp)
            outcome["claimed"] = False
            outcome["evicted"] = False
            outcome["previous"] = entry
            return MetadataEntry(clk=entry.clk, exp=exp)

        self.metadata.read_modify_write(ctx, index, update)
        return ProbeResult(
            claimed=outcome["claimed"],
            evicted=outcome["evicted"],
            previous=outcome["previous"],
        )

    def validate_and_release(self, ctx: PipelinePacket, index: int, clk: int) -> ReleaseResult:
        """Algorithm 2, stage 2: one stateful access validating a Merge request.

        The request is valid when the slot is occupied and its stored
        clock matches the tag; in that case the slot is freed.  A
        mismatch means the payload was prematurely evicted (or the slot
        was re-used), so the slot is left untouched.
        """
        outcome = {}

        def update(entry: MetadataEntry) -> MetadataEntry:
            if entry.occupied and entry.clk == clk:
                outcome["valid"] = True
                outcome["previous"] = entry
                return MetadataEntry(clk=0, exp=0)
            outcome["valid"] = False
            outcome["previous"] = entry
            return entry

        self.metadata.read_modify_write(ctx, index, update)
        return ReleaseResult(valid=outcome["valid"], previous=outcome["previous"])

    # ------------------------------------------------------------------ #
    # Payload-table dataplane operations
    # ------------------------------------------------------------------ #

    def store_block(
        self,
        ctx: PipelinePacket,
        slot: PayloadBlockSlot,
        array: RegisterArray,
        index: int,
        parked_payload: bytes,
    ) -> None:
        """Write the slice of *parked_payload* belonging to *slot*."""
        data = parked_payload[slot.offset : slot.offset + slot.length]
        array.write(ctx, index, data)

    def load_and_clear_block(
        self, ctx: PipelinePacket, array: RegisterArray, index: int
    ) -> bytes:
        """Read one payload block and clear it with a single stateful access."""
        value = array.exchange(ctx, index, b"")
        return value if isinstance(value, bytes) else b""

    # ------------------------------------------------------------------ #
    # Control-plane introspection
    # ------------------------------------------------------------------ #

    def occupancy(self) -> int:
        """Number of occupied slots (control-plane view)."""
        return self.metadata.occupancy(lambda entry: entry.occupied)

    def occupancy_fraction(self) -> float:
        """Occupied fraction of the table."""
        return self.occupancy() / self.entries

    def peek_metadata(self, index: int) -> MetadataEntry:
        """Control-plane read of a metadata slot."""
        return self.metadata.peek(index)

    def peek_payload(self, index: int) -> bytes:
        """Control-plane reconstruction of the payload parked at *index*."""
        parts = []
        for slot, array in zip(self.block_slots, self.block_arrays):
            value = array.peek(index)
            parts.append(value if isinstance(value, bytes) else b"")
        return b"".join(parts)

    def sram_bytes(self) -> int:
        """Total SRAM footprint of this lookup table."""
        total = self.metadata.sram_bytes
        total += sum(array.sram_bytes for array in self.block_arrays)
        return total

    def occupied_indices(self) -> List[int]:
        """Indices of currently occupied slots (control-plane scan)."""
        return [
            index for index in range(self.entries)
            if self.metadata.peek(index).occupied
        ]

    def drain_slot(self, index: int) -> bool:
        """Control-plane reclamation of one slot: free metadata *and* payload.

        Returns True when the slot was occupied.  The caller is
        responsible for the accounting (the control plane records each
        drained payload as an eviction, exactly as the expiry policy
        would have) — draining without accounting orphans the payload,
        which the validation subsystem's no-orphaned-payload invariant
        detects.
        """
        if not self.metadata.peek(index).occupied:
            return False
        self.metadata.poke(index, MetadataEntry())
        for array in self.block_arrays:
            array.poke(index, b"")
        return True

    def clear(self) -> None:
        """Reset the whole table (control plane; used between experiment runs)."""
        self.metadata.clear()
        for array in self.block_arrays:
            array.clear()
