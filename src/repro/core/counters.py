"""Monitoring counters maintained by the PayloadPark dataplane (§5).

The prototype keeps eight counters spread over the first three stages;
they drive the evaluation's health checks (zero premature evictions is a
prerequisite for functional equivalence) and the Fig. 12/14 analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PayloadParkCounters:
    """Per-binding PayloadPark counters.

    Attributes
    ----------
    splits:
        Packets whose payload was successfully parked (ENB set to 1).
    split_disabled_small_payload:
        Split skipped because the payload was smaller than the minimum
        parking size (160 bytes in the prototype).
    split_disabled_table_occupied:
        Split skipped because the probed lookup-table slot was occupied
        and not yet eligible for eviction.
    merges:
        Packets whose parked payload was successfully merged back.
    explicit_drops:
        Explicit Drop notifications processed (OP = 1).
    merge_enb_zero:
        Packets received back from the NF server with ENB = 0 (nothing
        to merge; the PayloadPark header is simply removed).
    evictions:
        Parked payloads evicted by the expiry policy (space reclaimed by
        a later Split).
    premature_evictions:
        Merge requests whose payload had already been evicted; the packet
        is dropped and this counter incremented.
    tag_validation_failures:
        Merge requests whose header CRC did not validate.
    """

    splits: int = 0
    split_disabled_small_payload: int = 0
    split_disabled_table_occupied: int = 0
    merges: int = 0
    explicit_drops: int = 0
    merge_enb_zero: int = 0
    evictions: int = 0
    premature_evictions: int = 0
    tag_validation_failures: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return every counter keyed by name."""
        return {
            "splits": self.splits,
            "split_disabled_small_payload": self.split_disabled_small_payload,
            "split_disabled_table_occupied": self.split_disabled_table_occupied,
            "merges": self.merges,
            "explicit_drops": self.explicit_drops,
            "merge_enb_zero": self.merge_enb_zero,
            "evictions": self.evictions,
            "premature_evictions": self.premature_evictions,
            "tag_validation_failures": self.tag_validation_failures,
        }

    @property
    def split_attempts(self) -> int:
        """Packets that reached the Split stage on an enabled port."""
        return (
            self.splits
            + self.split_disabled_small_payload
            + self.split_disabled_table_occupied
        )

    @property
    def outstanding_payloads(self) -> int:
        """Parked payloads not yet merged, dropped or evicted."""
        return self.splits - self.merges - self.explicit_drops - self.evictions

    def reset(self) -> None:
        """Zero every counter (control plane)."""
        for name in self.as_dict():
            setattr(self, name, 0)

    def merge_from(self, other: "PayloadParkCounters") -> None:
        """Accumulate another counter set into this one (for multi-binding reports)."""
        for name, value in other.as_dict().items():
            setattr(self, name, getattr(self, name) + value)


@dataclass
class CounterBank:
    """A named collection of :class:`PayloadParkCounters`, one per NF-server binding."""

    counters: Dict[str, PayloadParkCounters] = field(default_factory=dict)

    def for_binding(self, name: str) -> PayloadParkCounters:
        """Return (creating if needed) the counters of binding *name*."""
        if name not in self.counters:
            self.counters[name] = PayloadParkCounters()
        return self.counters[name]

    def total(self) -> PayloadParkCounters:
        """Aggregate counters across all bindings."""
        total = PayloadParkCounters()
        for counters in self.counters.values():
            total.merge_from(counters)
        return total
