"""Complete switch programs: PayloadPark and the baseline.

A *switch program* owns a :class:`~repro.switchsim.asic.TofinoAsic`,
installs its tables and register arrays into the pipes that serve its
NF-server bindings, and processes packets arriving on front-panel ports.
Two programs are provided:

* :class:`PayloadParkProgram` — the paper's contribution: Split/Merge
  with payload parking, eviction, Explicit Drops and per-binding memory
  slicing; and
* :class:`BaselineProgram` — plain L2 forwarding between the traffic
  ports and the NF server, the non-PayloadPark deployment used as the
  comparison point throughout §6.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.counters import CounterBank, PayloadParkCounters
from repro.core.l2fwd import L2ForwardingTable
from repro.core.lookup_table import LookupTable
from repro.core.merge import MergePath
from repro.core.split import SplitPath
from repro.core.tagger import PacketTagger
from repro.packet.ethernet import MacAddress
from repro.packet.packet import Packet
from repro.switchsim.asic import AsicConfig, TofinoAsic
from repro.switchsim.context import PipelinePacket
from repro.switchsim.mat import MatchActionTable
from repro.switchsim.pipe import Pipe
from repro.switchsim.resources import ResourceReport


class SwitchProgram:
    """Common behaviour of the PayloadPark and baseline programs."""

    #: True when every table the program installs is stateless, i.e. a
    #: packet's pipeline outcome depends only on its ingress port and
    #: destination MAC.  Such programs may memoize whole-pipe outcomes in
    #: the fast path (see :meth:`process`); stateful programs (PayloadPark)
    #: always walk their tables.
    decision_cacheable = False

    def __init__(
        self,
        bindings: List[NfServerBinding],
        asic: Optional[TofinoAsic] = None,
        asic_config: Optional[AsicConfig] = None,
    ) -> None:
        if not bindings:
            raise ValueError("a switch program needs at least one NF-server binding")
        self.asic = asic or TofinoAsic(asic_config)
        self.bindings = list(bindings)
        self.l2 = L2ForwardingTable()
        self.fast_path = False
        #: (ingress_port, dst MAC) -> cached pipe outcome; only populated
        #: for decision-cacheable programs with the fast path enabled.
        self._decision_cache: Dict[tuple, "_CachedDecision"] = {}
        self._validate_bindings()

    # ------------------------------------------------------------------ #
    # Fast path control
    # ------------------------------------------------------------------ #

    def enable_fast_path(self, enabled: bool = True) -> None:
        """Switch the program (and its pipes) to the optimized walk.

        The fast path is behaviour-preserving: compiled table walks,
        port-gated match skips and (for stateless programs) whole-pipe
        decision caching all reproduce the reference path's packet
        outcomes and counters exactly — the golden-figure suite runs
        every experiment in both modes and diffs the tables.
        """
        if enabled and self.decision_cacheable:
            stateful = [
                table.name
                for pipe in self.asic.pipes
                for stage in pipe.pipeline.stages
                for table in stage.tables
                if table.stateful
            ]
            if stateful:
                raise ValueError(
                    f"{type(self).__name__} declares decision_cacheable but installs "
                    f"stateful tables: {stateful}"
                )
        self.fast_path = enabled
        for pipe in self.asic.pipes:
            pipe.fast_path = enabled
            for stage in pipe.pipeline.stages:
                for array in stage.register_arrays:
                    array.guard_enabled = not enabled
        self.invalidate_fast_path()

    def invalidate_fast_path(self) -> None:
        """Drop memoized pipeline outcomes.

        Control-plane mutations that change forwarding behaviour (L2
        entries, table installs, state resets) call this so the next
        packet re-walks the pipeline; it is also the explicit hook for
        external controllers that mutate program state directly.
        """
        self._decision_cache.clear()

    # ------------------------------------------------------------------ #
    # Binding / port helpers
    # ------------------------------------------------------------------ #

    def _validate_bindings(self) -> None:
        seen_ports: Dict[int, str] = {}
        for binding in self.bindings:
            ports = list(binding.ingress_ports) + [binding.nf_port]
            for port in ports:
                self.asic.pipe_for_port(port)  # raises on out-of-range ports
                if port in seen_ports:
                    raise ValueError(
                        f"port {port} is used by both {seen_ports[port]!r} and "
                        f"{binding.name!r}"
                    )
                seen_ports[port] = binding.name
            pipe = self.asic.pipe_for_port(binding.nf_port)
            for port in binding.ingress_ports:
                if self.asic.pipe_for_port(port) is not pipe:
                    raise ValueError(
                        f"binding {binding.name!r}: ingress port {port} and NF port "
                        f"{binding.nf_port} must share a pipe (pipes do not share "
                        f"stateful memory)"
                    )

    def binding_for_port(self, port: int) -> Optional[NfServerBinding]:
        """Return the binding that owns *port* (ingress or NF side)."""
        for binding in self.bindings:
            if port in binding.ingress_ports or port == binding.nf_port:
                return binding
        return None

    def bindings_in_pipe(self, pipe: Pipe) -> List[NfServerBinding]:
        """Bindings whose ports live in *pipe*."""
        return [
            binding
            for binding in self.bindings
            if self.asic.pipe_for_port(binding.nf_port) is pipe
        ]

    def add_l2_entry(self, mac: str, port: int) -> None:
        """Install a destination-MAC forwarding entry (control plane)."""
        self.l2.add_entry(MacAddress.from_string(mac), port)
        self.invalidate_fast_path()

    def _egress_for(self, ctx: PipelinePacket, binding: NfServerBinding) -> int:
        """Egress decision for a packet heading away from the NF server."""
        port = self.l2.lookup(ctx.packet.eth.dst, default=None)
        if port is not None:
            return port
        return binding.default_egress_port

    # ------------------------------------------------------------------ #
    # Forwarding tables shared by both programs
    # ------------------------------------------------------------------ #

    def _install_forwarding(self, pipe: Pipe, binding: NfServerBinding) -> None:
        last_stage = pipe.pipeline.stage_count - 1
        ingress_ports = frozenset(binding.ingress_ports)

        def match_from_traffic(ctx: PipelinePacket) -> bool:
            return ctx.ingress_port in ingress_ports

        def forward_to_nf(ctx: PipelinePacket) -> None:
            ctx.forward_to(binding.nf_port)

        def match_from_nf(ctx: PipelinePacket) -> bool:
            return ctx.ingress_port == binding.nf_port

        def forward_from_nf(ctx: PipelinePacket) -> None:
            ctx.forward_to(self._egress_for(ctx, binding))

        pipe.pipeline.stage(last_stage).add_table(
            MatchActionTable(
                name=f"{binding.name}.l2_fwd_to_nf",
                match=match_from_traffic,
                action=forward_to_nf,
                match_bits=16,
                vliw_slots=1,
                ingress_ports=ingress_ports,
                stateful=False,
                port_implies_match=True,
            )
        )
        pipe.pipeline.stage(last_stage).add_table(
            MatchActionTable(
                name=f"{binding.name}.l2_fwd_from_nf",
                match=match_from_nf,
                action=forward_from_nf,
                match_bits=64,
                entries=64,
                vliw_slots=1,
                ingress_ports=frozenset((binding.nf_port,)),
                stateful=False,
                port_implies_match=True,
            )
        )

    # ------------------------------------------------------------------ #
    # Packet processing
    # ------------------------------------------------------------------ #

    def process(self, packet: Packet, ingress_port: int) -> PipelinePacket:
        """Run *packet* through the pipe owning *ingress_port*.

        Decision-cacheable programs on the fast path memoize the pipe
        outcome per ``(ingress_port, dst MAC)`` header-shape signature:
        repeated identical shapes skip the per-stage walk entirely while
        replaying the same per-table hit/miss accounting the walk would
        have produced.  The cache is invalidated by pipeline version
        bumps (table installs) and :meth:`invalidate_fast_path`.
        """
        if self.fast_path and self.decision_cacheable:
            signature = (ingress_port, packet.eth.dst.value)
            cached = self._decision_cache.get(signature)
            if cached is not None:
                ctx = cached.replay(self.asic, packet, ingress_port)
                if ctx is not None:
                    return ctx
                del self._decision_cache[signature]  # stale pipeline version
            ctx, entry = _CachedDecision.record(self.asic, packet, ingress_port)
            if entry is not None:
                self._decision_cache[signature] = entry
            return ctx
        return self.asic.process(packet, ingress_port)

    def extra_latency_ns(self, ctx: PipelinePacket) -> int:
        """Program-specific latency beyond the base pipeline latency."""
        pipe = self.asic.pipe_for_port(ctx.ingress_port)
        return pipe.recirculation_latency_ns(ctx)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def resource_report(self, pipe_index: int = 0) -> ResourceReport:
        """Table-1-style resource utilization of one pipe."""
        return self.asic.pipes[pipe_index].resource_report()


class BaselineProgram(SwitchProgram):
    """The non-PayloadPark deployment: L2 forwarding only (§6.1).

    Traffic-generator ports forward to the NF server; packets coming back
    from the NF server are forwarded by destination MAC (falling back to
    the binding's default egress port).

    Every table is stateless, so the fast path may memoize whole-pipe
    outcomes per (ingress port, dst MAC) header shape.
    """

    decision_cacheable = True

    def __init__(
        self,
        bindings: List[NfServerBinding],
        asic: Optional[TofinoAsic] = None,
        asic_config: Optional[AsicConfig] = None,
    ) -> None:
        super().__init__(bindings, asic=asic, asic_config=asic_config)
        self.name = "baseline"
        for binding in self.bindings:
            pipe = self.asic.pipe_for_port(binding.nf_port)
            self._declare_phv(pipe)
            self._install_forwarding(pipe, binding)

    @staticmethod
    def _declare_phv(pipe: Pipe) -> None:
        pipe.phv.declare("ethernet", 112)
        pipe.phv.declare("ipv4", 160)
        pipe.phv.declare("udp", 64)
        pipe.phv.declare("bridge_metadata", 16)


class PayloadParkProgram(SwitchProgram):
    """The PayloadPark dataplane program (Algorithms 1 and 2).

    Parameters
    ----------
    config:
        Deployment parameters (parked bytes, expiry threshold, reserved
        memory fraction, …).  ``config.bindings`` may list the NF-server
        bindings, or they can be passed separately via *bindings*.
    bindings:
        Overrides ``config.bindings`` when given.
    asic / asic_config:
        An existing simulated ASIC to install into, or the configuration
        for a fresh one.
    """

    def __init__(
        self,
        config: PayloadParkConfig,
        bindings: Optional[List[NfServerBinding]] = None,
        asic: Optional[TofinoAsic] = None,
        asic_config: Optional[AsicConfig] = None,
    ) -> None:
        resolved_bindings = list(bindings) if bindings is not None else list(config.bindings)
        super().__init__(resolved_bindings, asic=asic, asic_config=asic_config)
        self.name = "payloadpark"
        self.config = config
        self.counters = CounterBank()
        self.lookup_tables: Dict[str, LookupTable] = {}
        self.taggers: Dict[str, PacketTagger] = {}
        self._merge_paths: List[MergePath] = []
        self._split_paths: List[SplitPath] = []
        self._install()

    # ------------------------------------------------------------------ #
    # Installation
    # ------------------------------------------------------------------ #

    def _install(self) -> None:
        pipes_seen = []
        for binding in self.bindings:
            pipe = self.asic.pipe_for_port(binding.nf_port)
            if pipe not in pipes_seen:
                pipes_seen.append(pipe)
                self._declare_phv(pipe)
                self._install_deparser(pipe)
            share = self._memory_share(binding, pipe)
            entries = self.config.derived_table_entries(
                stage_sram_bytes=pipe.budget.sram_bytes, memory_weight_share=share
            )
            lookup = LookupTable(
                name=binding.name,
                pipeline=pipe.pipeline,
                entries=entries,
                parked_bytes=self.config.parked_bytes,
                block_bytes=self.config.payload_block_bytes,
                allow_second_pass=self.config.enable_recirculation,
            )
            tagger = PacketTagger(
                name=binding.name,
                pipeline=pipe.pipeline,
                table_entries=entries,
                clock_max=self.config.clock_max,
            )
            counters = self.counters.for_binding(binding.name)
            split = SplitPath(
                binding=binding,
                config=self.config,
                pipeline=pipe.pipeline,
                lookup=lookup,
                tagger=tagger,
                counters=counters,
            )
            merge = MergePath(
                binding=binding,
                config=self.config,
                pipeline=pipe.pipeline,
                lookup=lookup,
                counters=counters,
            )
            split.install()
            merge.install()
            self._install_forwarding(pipe, binding)
            self.lookup_tables[binding.name] = lookup
            self.taggers[binding.name] = tagger
            self._split_paths.append(split)
            self._merge_paths.append(merge)

    def _memory_share(self, binding: NfServerBinding, pipe: Pipe) -> float:
        """Static memory slicing: this binding's share of the pipe's reservation."""
        peers = self.bindings_in_pipe(pipe) or [binding]
        total_weight = sum(peer.memory_weight for peer in peers)
        return binding.memory_weight / total_weight

    def _declare_phv(self, pipe: Pipe) -> None:
        pipe.phv.declare("ethernet", 112)
        pipe.phv.declare("ipv4", 160)
        pipe.phv.declare("udp", 64)
        pipe.phv.declare("payloadpark_header", 56)
        pipe.phv.declare("pp_metadata", 48)
        first_pass_bytes = min(
            self.config.parked_bytes,
            self.config.first_pass_capacity_bytes(pipe.pipeline.stage_count - 2),
        )
        pipe.phv.declare("payload_blocks", first_pass_bytes * 8)

    def _install_deparser(self, pipe: Pipe) -> None:
        def deparse(ctx: PipelinePacket) -> None:
            for merge_path in self._merge_paths:
                merge_path.deparse(ctx)

        pipe.deparser.hook = deparse

    # ------------------------------------------------------------------ #
    # Control-plane introspection
    # ------------------------------------------------------------------ #

    def lookup_table(self, binding_name: Optional[str] = None) -> LookupTable:
        """Return the lookup table of *binding_name* (or the only one)."""
        if binding_name is None:
            if len(self.lookup_tables) != 1:
                raise ValueError("binding_name required when multiple bindings exist")
            return next(iter(self.lookup_tables.values()))
        return self.lookup_tables[binding_name]

    def counters_for(self, binding_name: Optional[str] = None) -> PayloadParkCounters:
        """Counters of one binding, or the aggregate when omitted."""
        if binding_name is None:
            return self.counters.total()
        return self.counters.for_binding(binding_name)

    def total_parked_bytes_capacity(self) -> int:
        """Bytes of payload the deployment can park simultaneously."""
        return sum(
            table.entries * self.config.parked_bytes for table in self.lookup_tables.values()
        )

    def reset_state(self) -> None:
        """Clear lookup tables, taggers and counters between runs (control plane)."""
        for table in self.lookup_tables.values():
            table.clear()
        for tagger in self.taggers.values():
            tagger.reset()
        for counters in self.counters.counters.values():
            counters.reset()
        self.asic.reset_counters()
        self.invalidate_fast_path()


class _CachedDecision:
    """Memoized outcome of one pipe pass for a stateless program.

    Records the egress decision plus the per-table hit/miss deltas the
    walk produced, so replays leave every observable counter (table
    hits, parser/deparser counts, ASIC totals) exactly as a live walk
    would have.  Entries carry the pipeline version they were recorded
    against; a version bump (control-plane table install) makes them
    report stale and the caller re-records.
    """

    __slots__ = (
        "pipe",
        "version",
        "egress_port",
        "dropped",
        "drop_reason",
        "recirculations",
        "counter_deltas",
    )

    def __init__(self, pipe, version, egress_port, dropped, drop_reason,
                 recirculations, counter_deltas):
        self.pipe = pipe
        self.version = version
        self.egress_port = egress_port
        self.dropped = dropped
        self.drop_reason = drop_reason
        self.recirculations = recirculations
        self.counter_deltas = counter_deltas

    @classmethod
    def record(cls, asic: TofinoAsic, packet: Packet, ingress_port: int):
        """Run one live walk and capture its outcome + counter effects."""
        pipe = asic.pipe_for_port(ingress_port)
        if pipe.parser.hook is not None or pipe.deparser.hook is not None:
            # Hooks may have effects the replay cannot reproduce; process
            # live and skip caching for this pipe.
            return asic.process(packet, ingress_port), None
        version = pipe.pipeline.version
        tables = [entry[0] for entry in pipe.pipeline.compiled_tables()]
        if any(table.stateful for table in tables):
            # A stateful table installed after enable_fast_path()'s scan
            # (the control plane may add tables at any time): replays
            # cannot reproduce stateful actions, so stop caching for
            # this pipe rather than silently freeze its state.
            return asic.process(packet, ingress_port), None
        before = [(table.hit_count, table.miss_count) for table in tables]
        ctx = asic.process(packet, ingress_port)
        deltas = []
        for table, (hits, misses) in zip(tables, before):
            hit_delta = table.hit_count - hits
            miss_delta = table.miss_count - misses
            if hit_delta or miss_delta:
                deltas.append((table, hit_delta, miss_delta))
        entry = cls(
            pipe=pipe,
            version=version,
            egress_port=ctx.egress_port,
            dropped=ctx.dropped,
            drop_reason=ctx.drop_reason,
            recirculations=ctx.recirculations,
            counter_deltas=tuple(deltas),
        )
        return ctx, entry

    def replay(self, asic: TofinoAsic, packet: Packet, ingress_port: int):
        """Reproduce the recorded outcome, or None if the entry is stale."""
        pipe = self.pipe
        if pipe.pipeline.version != self.version:
            return None
        ctx = PipelinePacket(packet=packet, ingress_port=ingress_port)
        ctx.egress_port = self.egress_port
        ctx.recirculations = self.recirculations
        for table, hit_delta, miss_delta in self.counter_deltas:
            table.hit_count += hit_delta
            table.miss_count += miss_delta
        passes = self.recirculations + 1
        pipe.parser.parsed_packets += passes
        pipe.deparser.deparsed_packets += passes
        pipe.recirculated_packets += self.recirculations
        asic.processed_packets += 1
        if self.dropped:
            ctx.dropped = True
            ctx.drop_reason = self.drop_reason
            asic.dropped_packets += 1
            asic.drop_reasons[self.drop_reason] = (
                asic.drop_reasons.get(self.drop_reason, 0) + 1
            )
        return ctx
