"""Complete switch programs: PayloadPark and the baseline.

A *switch program* owns a :class:`~repro.switchsim.asic.TofinoAsic`,
installs its tables and register arrays into the pipes that serve its
NF-server bindings, and processes packets arriving on front-panel ports.
Two programs are provided:

* :class:`PayloadParkProgram` — the paper's contribution: Split/Merge
  with payload parking, eviction, Explicit Drops and per-binding memory
  slicing; and
* :class:`BaselineProgram` — plain L2 forwarding between the traffic
  ports and the NF server, the non-PayloadPark deployment used as the
  comparison point throughout §6.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.counters import CounterBank, PayloadParkCounters
from repro.core.l2fwd import L2ForwardingTable
from repro.core.lookup_table import LookupTable
from repro.core.merge import MergePath
from repro.core.split import SplitPath
from repro.core.tagger import PacketTagger
from repro.packet.ethernet import MacAddress
from repro.packet.packet import Packet
from repro.switchsim.asic import AsicConfig, TofinoAsic
from repro.switchsim.context import PipelinePacket
from repro.switchsim.mat import MatchActionTable
from repro.switchsim.pipe import Pipe
from repro.switchsim.resources import ResourceReport


class SwitchProgram:
    """Common behaviour of the PayloadPark and baseline programs."""

    def __init__(
        self,
        bindings: List[NfServerBinding],
        asic: Optional[TofinoAsic] = None,
        asic_config: Optional[AsicConfig] = None,
    ) -> None:
        if not bindings:
            raise ValueError("a switch program needs at least one NF-server binding")
        self.asic = asic or TofinoAsic(asic_config)
        self.bindings = list(bindings)
        self.l2 = L2ForwardingTable()
        self._validate_bindings()

    # ------------------------------------------------------------------ #
    # Binding / port helpers
    # ------------------------------------------------------------------ #

    def _validate_bindings(self) -> None:
        seen_ports: Dict[int, str] = {}
        for binding in self.bindings:
            ports = list(binding.ingress_ports) + [binding.nf_port]
            for port in ports:
                self.asic.pipe_for_port(port)  # raises on out-of-range ports
                if port in seen_ports:
                    raise ValueError(
                        f"port {port} is used by both {seen_ports[port]!r} and "
                        f"{binding.name!r}"
                    )
                seen_ports[port] = binding.name
            pipe = self.asic.pipe_for_port(binding.nf_port)
            for port in binding.ingress_ports:
                if self.asic.pipe_for_port(port) is not pipe:
                    raise ValueError(
                        f"binding {binding.name!r}: ingress port {port} and NF port "
                        f"{binding.nf_port} must share a pipe (pipes do not share "
                        f"stateful memory)"
                    )

    def binding_for_port(self, port: int) -> Optional[NfServerBinding]:
        """Return the binding that owns *port* (ingress or NF side)."""
        for binding in self.bindings:
            if port in binding.ingress_ports or port == binding.nf_port:
                return binding
        return None

    def bindings_in_pipe(self, pipe: Pipe) -> List[NfServerBinding]:
        """Bindings whose ports live in *pipe*."""
        return [
            binding
            for binding in self.bindings
            if self.asic.pipe_for_port(binding.nf_port) is pipe
        ]

    def add_l2_entry(self, mac: str, port: int) -> None:
        """Install a destination-MAC forwarding entry (control plane)."""
        self.l2.add_entry(MacAddress.from_string(mac), port)

    def _egress_for(self, ctx: PipelinePacket, binding: NfServerBinding) -> int:
        """Egress decision for a packet heading away from the NF server."""
        port = self.l2.lookup(ctx.packet.eth.dst, default=None)
        if port is not None:
            return port
        return binding.default_egress_port

    # ------------------------------------------------------------------ #
    # Forwarding tables shared by both programs
    # ------------------------------------------------------------------ #

    def _install_forwarding(self, pipe: Pipe, binding: NfServerBinding) -> None:
        last_stage = pipe.pipeline.stage_count - 1
        ingress_ports = frozenset(binding.ingress_ports)

        def match_from_traffic(ctx: PipelinePacket) -> bool:
            return ctx.ingress_port in ingress_ports

        def forward_to_nf(ctx: PipelinePacket) -> None:
            ctx.forward_to(binding.nf_port)

        def match_from_nf(ctx: PipelinePacket) -> bool:
            return ctx.ingress_port == binding.nf_port

        def forward_from_nf(ctx: PipelinePacket) -> None:
            ctx.forward_to(self._egress_for(ctx, binding))

        pipe.pipeline.stage(last_stage).add_table(
            MatchActionTable(
                name=f"{binding.name}.l2_fwd_to_nf",
                match=match_from_traffic,
                action=forward_to_nf,
                match_bits=16,
                vliw_slots=1,
            )
        )
        pipe.pipeline.stage(last_stage).add_table(
            MatchActionTable(
                name=f"{binding.name}.l2_fwd_from_nf",
                match=match_from_nf,
                action=forward_from_nf,
                match_bits=64,
                entries=64,
                vliw_slots=1,
            )
        )

    # ------------------------------------------------------------------ #
    # Packet processing
    # ------------------------------------------------------------------ #

    def process(self, packet: Packet, ingress_port: int) -> PipelinePacket:
        """Run *packet* through the pipe owning *ingress_port*."""
        return self.asic.process(packet, ingress_port)

    def extra_latency_ns(self, ctx: PipelinePacket) -> int:
        """Program-specific latency beyond the base pipeline latency."""
        pipe = self.asic.pipe_for_port(ctx.ingress_port)
        return pipe.recirculation_latency_ns(ctx)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def resource_report(self, pipe_index: int = 0) -> ResourceReport:
        """Table-1-style resource utilization of one pipe."""
        return self.asic.pipes[pipe_index].resource_report()


class BaselineProgram(SwitchProgram):
    """The non-PayloadPark deployment: L2 forwarding only (§6.1).

    Traffic-generator ports forward to the NF server; packets coming back
    from the NF server are forwarded by destination MAC (falling back to
    the binding's default egress port).
    """

    def __init__(
        self,
        bindings: List[NfServerBinding],
        asic: Optional[TofinoAsic] = None,
        asic_config: Optional[AsicConfig] = None,
    ) -> None:
        super().__init__(bindings, asic=asic, asic_config=asic_config)
        self.name = "baseline"
        for binding in self.bindings:
            pipe = self.asic.pipe_for_port(binding.nf_port)
            self._declare_phv(pipe)
            self._install_forwarding(pipe, binding)

    @staticmethod
    def _declare_phv(pipe: Pipe) -> None:
        pipe.phv.declare("ethernet", 112)
        pipe.phv.declare("ipv4", 160)
        pipe.phv.declare("udp", 64)
        pipe.phv.declare("bridge_metadata", 16)


class PayloadParkProgram(SwitchProgram):
    """The PayloadPark dataplane program (Algorithms 1 and 2).

    Parameters
    ----------
    config:
        Deployment parameters (parked bytes, expiry threshold, reserved
        memory fraction, …).  ``config.bindings`` may list the NF-server
        bindings, or they can be passed separately via *bindings*.
    bindings:
        Overrides ``config.bindings`` when given.
    asic / asic_config:
        An existing simulated ASIC to install into, or the configuration
        for a fresh one.
    """

    def __init__(
        self,
        config: PayloadParkConfig,
        bindings: Optional[List[NfServerBinding]] = None,
        asic: Optional[TofinoAsic] = None,
        asic_config: Optional[AsicConfig] = None,
    ) -> None:
        resolved_bindings = list(bindings) if bindings is not None else list(config.bindings)
        super().__init__(resolved_bindings, asic=asic, asic_config=asic_config)
        self.name = "payloadpark"
        self.config = config
        self.counters = CounterBank()
        self.lookup_tables: Dict[str, LookupTable] = {}
        self.taggers: Dict[str, PacketTagger] = {}
        self._merge_paths: List[MergePath] = []
        self._split_paths: List[SplitPath] = []
        self._install()

    # ------------------------------------------------------------------ #
    # Installation
    # ------------------------------------------------------------------ #

    def _install(self) -> None:
        pipes_seen = []
        for binding in self.bindings:
            pipe = self.asic.pipe_for_port(binding.nf_port)
            if pipe not in pipes_seen:
                pipes_seen.append(pipe)
                self._declare_phv(pipe)
                self._install_deparser(pipe)
            share = self._memory_share(binding, pipe)
            entries = self.config.derived_table_entries(
                stage_sram_bytes=pipe.budget.sram_bytes, memory_weight_share=share
            )
            lookup = LookupTable(
                name=binding.name,
                pipeline=pipe.pipeline,
                entries=entries,
                parked_bytes=self.config.parked_bytes,
                block_bytes=self.config.payload_block_bytes,
                allow_second_pass=self.config.enable_recirculation,
            )
            tagger = PacketTagger(
                name=binding.name,
                pipeline=pipe.pipeline,
                table_entries=entries,
                clock_max=self.config.clock_max,
            )
            counters = self.counters.for_binding(binding.name)
            split = SplitPath(
                binding=binding,
                config=self.config,
                pipeline=pipe.pipeline,
                lookup=lookup,
                tagger=tagger,
                counters=counters,
            )
            merge = MergePath(
                binding=binding,
                config=self.config,
                pipeline=pipe.pipeline,
                lookup=lookup,
                counters=counters,
            )
            split.install()
            merge.install()
            self._install_forwarding(pipe, binding)
            self.lookup_tables[binding.name] = lookup
            self.taggers[binding.name] = tagger
            self._split_paths.append(split)
            self._merge_paths.append(merge)

    def _memory_share(self, binding: NfServerBinding, pipe: Pipe) -> float:
        """Static memory slicing: this binding's share of the pipe's reservation."""
        peers = self.bindings_in_pipe(pipe) or [binding]
        total_weight = sum(peer.memory_weight for peer in peers)
        return binding.memory_weight / total_weight

    def _declare_phv(self, pipe: Pipe) -> None:
        pipe.phv.declare("ethernet", 112)
        pipe.phv.declare("ipv4", 160)
        pipe.phv.declare("udp", 64)
        pipe.phv.declare("payloadpark_header", 56)
        pipe.phv.declare("pp_metadata", 48)
        first_pass_bytes = min(
            self.config.parked_bytes,
            self.config.first_pass_capacity_bytes(pipe.pipeline.stage_count - 2),
        )
        pipe.phv.declare("payload_blocks", first_pass_bytes * 8)

    def _install_deparser(self, pipe: Pipe) -> None:
        def deparse(ctx: PipelinePacket) -> None:
            for merge_path in self._merge_paths:
                merge_path.deparse(ctx)

        pipe.deparser.hook = deparse

    # ------------------------------------------------------------------ #
    # Control-plane introspection
    # ------------------------------------------------------------------ #

    def lookup_table(self, binding_name: Optional[str] = None) -> LookupTable:
        """Return the lookup table of *binding_name* (or the only one)."""
        if binding_name is None:
            if len(self.lookup_tables) != 1:
                raise ValueError("binding_name required when multiple bindings exist")
            return next(iter(self.lookup_tables.values()))
        return self.lookup_tables[binding_name]

    def counters_for(self, binding_name: Optional[str] = None) -> PayloadParkCounters:
        """Counters of one binding, or the aggregate when omitted."""
        if binding_name is None:
            return self.counters.total()
        return self.counters.for_binding(binding_name)

    def total_parked_bytes_capacity(self) -> int:
        """Bytes of payload the deployment can park simultaneously."""
        return sum(
            table.entries * self.config.parked_bytes for table in self.lookup_tables.values()
        )

    def reset_state(self) -> None:
        """Clear lookup tables, taggers and counters between runs (control plane)."""
        for table in self.lookup_tables.values():
            table.clear()
        for tagger in self.taggers.values():
            tagger.reset()
        for counters in self.counters.counters.values():
            counters.reset()
        self.asic.reset_counters()
