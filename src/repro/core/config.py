"""Configuration for PayloadPark deployments.

The prototype exposes a handful of policy knobs (§5, §6.1): which ports
are PayloadPark-enabled, how much switch SRAM is reserved, the expiry
threshold, how many payload bytes are parked per packet (160, or 384
with recirculation), and the minimum payload size worth splitting.
:class:`PayloadParkConfig` collects them; :class:`NfServerBinding` maps
traffic ports to the NF server they feed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Bytes of payload the prototype parks per packet without recirculation.
DEFAULT_PARKED_BYTES = 160

#: Bytes parked when one recirculation pass is used (§6.2.5).
RECIRCULATION_PARKED_BYTES = 384


@dataclass(frozen=True)
class NfServerBinding:
    """Binds PayloadPark-enabled traffic ports to one NF server port.

    Attributes
    ----------
    name:
        Human-readable binding name (used to key counters).
    ingress_ports:
        Front-panel ports whose traffic is split and forwarded to the NF
        server (the paper uses two traffic-generator ports per server so
        the generator can saturate the server-facing link).
    nf_port:
        Port connected to the NF server.  Packets arriving on it are
        treated as Merge (or Explicit Drop) requests.
    default_egress_port:
        Where merged packets go when no L2 entry matches their
        destination MAC (in the paper's testbed, back to the traffic
        generator that measures goodput).
    memory_weight:
        Relative share of the pipe's reserved lookup-table memory this
        binding receives under static slicing (§6.2.3).
    """

    name: str
    ingress_ports: Tuple[int, ...]
    nf_port: int
    default_egress_port: int
    memory_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.ingress_ports:
            raise ValueError(f"binding {self.name!r} needs at least one ingress port")
        if self.nf_port in self.ingress_ports:
            raise ValueError(f"binding {self.name!r}: NF port cannot also be an ingress port")
        if self.memory_weight <= 0:
            raise ValueError(f"binding {self.name!r}: memory_weight must be positive")


@dataclass
class PayloadParkConfig:
    """Tunable parameters of a PayloadPark deployment.

    Attributes
    ----------
    parked_bytes:
        Payload bytes parked per packet (160 without recirculation,
        384 with one recirculation pass).
    min_split_payload:
        Payloads smaller than this are not split (the prototype uses the
        parked size, 160 bytes, to avoid wasting a whole table slot on a
        partial payload).
    expiry_threshold:
        MAX_EXP — how many times the table index must revisit an occupied
        slot before its payload is evicted (1 = aggressive, 10 =
        conservative).
    sram_fraction:
        Fraction of the pipe's stateful SRAM reserved for the lookup
        table (the paper's macro-benchmarks use ≈ 26 %; the 8-server
        setup uses ≈ 40 %).
    table_entries:
        Explicit lookup-table capacity (entries).  When ``None`` the
        capacity is derived from ``sram_fraction`` and the stage budget.
    payload_block_bytes:
        Width of one payload block, i.e. the bytes stored per MAT-local
        register array (the 2-D payload table's cell size).
    enable_recirculation:
        Allow a second pipeline pass to park bytes beyond the first
        pass's capacity.
    enable_explicit_drops:
        Accept OP=1 packets from a (lightly modified) NF framework that
        explicitly releases parked payloads of dropped packets.
    clock_max:
        MAX_CLK — generation counter wrap-around value.
    split_enabled:
        Master switch; with ``False`` the program behaves exactly like
        the baseline except for header overhead accounting (useful for
        fallback-mode tests).
    """

    parked_bytes: int = DEFAULT_PARKED_BYTES
    min_split_payload: int = DEFAULT_PARKED_BYTES
    expiry_threshold: int = 1
    sram_fraction: float = 0.26
    table_entries: Optional[int] = None
    payload_block_bytes: int = 16
    enable_recirculation: bool = False
    enable_explicit_drops: bool = False
    clock_max: int = 65_536
    split_enabled: bool = True
    bindings: List[NfServerBinding] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.parked_bytes <= 0:
            raise ValueError("parked_bytes must be positive")
        if self.payload_block_bytes <= 0:
            raise ValueError("payload_block_bytes must be positive")
        if self.expiry_threshold < 1:
            raise ValueError("expiry_threshold must be at least 1")
        if not 0.0 < self.sram_fraction <= 1.0:
            raise ValueError("sram_fraction must be in (0, 1]")
        if self.table_entries is not None and self.table_entries <= 0:
            raise ValueError("table_entries must be positive when given")
        if self.clock_max < 2:
            raise ValueError("clock_max must be at least 2")
        if self.min_split_payload < 0:
            raise ValueError("min_split_payload cannot be negative")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def payload_blocks(self) -> int:
        """Number of payload blocks needed to hold ``parked_bytes``."""
        return -(-self.parked_bytes // self.payload_block_bytes)

    def first_pass_capacity_bytes(self, payload_stage_count: int) -> int:
        """Bytes that fit in one pipeline pass given *payload_stage_count* stages."""
        return payload_stage_count * self.payload_block_bytes

    def requires_recirculation(self, payload_stage_count: int) -> bool:
        """True when ``parked_bytes`` cannot be stored in a single pass."""
        return self.parked_bytes > self.first_pass_capacity_bytes(payload_stage_count)

    @classmethod
    def with_recirculation(cls, **kwargs) -> "PayloadParkConfig":
        """Convenience constructor for the §6.2.5 recirculation setup."""
        kwargs.setdefault("parked_bytes", RECIRCULATION_PARKED_BYTES)
        kwargs.setdefault("enable_recirculation", True)
        return cls(**kwargs)

    def derived_table_entries(self, stage_sram_bytes: int, memory_weight_share: float = 1.0) -> int:
        """Compute the lookup-table capacity for one binding.

        The payload table is striped across the payload stages, so each
        stage holds ``entries * payload_block_bytes`` bytes of payload
        plus (in the metadata stage) ``entries * 4`` bytes of clock +
        expiry state.  We size entries so a payload stage consumes
        ``sram_fraction`` of its SRAM budget, then apply the binding's
        share under static slicing.

        Parameters
        ----------
        stage_sram_bytes:
            SRAM budget of a single stage.
        memory_weight_share:
            This binding's fraction of the reserved memory (1.0 when the
            pipe serves a single NF server).
        """
        if self.table_entries is not None:
            entries = int(self.table_entries * memory_weight_share)
        else:
            reserved_per_stage = self.sram_fraction * stage_sram_bytes
            entries = int(reserved_per_stage // self.payload_block_bytes * memory_weight_share)
        return max(entries, 1)
