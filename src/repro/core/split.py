"""The Split operation (Algorithm 1), expressed as match-action tables.

Split runs on packets arriving at a PayloadPark-enabled ingress port:

* **Stage 1** (pipeline stage 0 here, 0-indexed): the packet tagger
  advances the table-index and clock registers and records the values in
  the packet's user metadata.
* **Stage 2**: the metadata table is probed at the table index.  A free
  (or newly evicted) slot is claimed; the PayloadPark header is added
  with ENB=1 and the tag, and the payload bytes to be parked are removed
  from the packet.  If the slot is occupied, or the payload is smaller
  than the minimum parking size, the header is added with every field
  zeroed (ENB=0) and the packet continues unmodified.
* **Stages 3..N**: the parked payload is striped block-by-block into the
  MAT-local payload register arrays.  When the configured parked size
  exceeds one pass's capacity, the packet is recirculated and the
  remaining blocks are written during the second pass.
* A final forwarding table steers the (now header-mostly) packet to the
  binding's NF-server port.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.counters import PayloadParkCounters
from repro.core.header import OP_MERGE, PayloadParkHeader
from repro.core.lookup_table import LookupTable
from repro.core.tagger import PacketTagger
from repro.switchsim.context import PipelinePacket
from repro.switchsim.mat import MatchActionTable
from repro.switchsim.pipeline import Pipeline

#: Metadata keys used to pass information between Split stages, mirroring
#: the paper's user-defined ``meta`` struct.
META_TAG_TBL_IDX = "split.tag_tbl_idx"
META_TAG_CLK = "split.tag_clk"
META_PARKED_PAYLOAD = "split.parked_payload"


class SplitPath:
    """Installs and implements the Split tables for one NF-server binding."""

    def __init__(
        self,
        binding: NfServerBinding,
        config: PayloadParkConfig,
        pipeline: Pipeline,
        lookup: LookupTable,
        tagger: PacketTagger,
        counters: PayloadParkCounters,
        tagger_stage: int = 0,
        probe_stage: int = 1,
    ) -> None:
        self.binding = binding
        self.config = config
        self.pipeline = pipeline
        self.lookup = lookup
        self.tagger = tagger
        self.counters = counters
        self.tagger_stage = tagger_stage
        self.probe_stage = probe_stage
        self._ingress_ports = frozenset(binding.ingress_ports)
        #: Flight-recorder hook (repro.obs); None keeps the path lean.
        self.obs_recorder = None

    # ------------------------------------------------------------------ #
    # Table installation
    # ------------------------------------------------------------------ #

    def install(self) -> None:
        """Create the Split MATs and place them into their stages."""
        self.pipeline.stage(self.tagger_stage).add_table(
            MatchActionTable(
                name=f"{self.binding.name}.split_tagger",
                match=self._match_split_candidate,
                action=self._action_tag,
                match_bits=16,
                vliw_slots=2,
                ingress_ports=self._ingress_ports,
            )
        )
        self.pipeline.stage(self.probe_stage).add_table(
            MatchActionTable(
                name=f"{self.binding.name}.split_probe",
                match=self._match_split_ingress,
                action=self._action_probe,
                match_bits=16,
                vliw_slots=4,
                ingress_ports=self._ingress_ports,
            )
        )
        for slot, array in self.lookup.blocks_for_pass(0):
            self.pipeline.stage(slot.stage_index).add_table(
                MatchActionTable(
                    name=f"{self.binding.name}.split_store[{slot.block_index}]",
                    match=self._match_store_pass(0),
                    action=self._make_store_action(slot, array),
                    match_bits=17,
                    vliw_slots=1,
                    ingress_ports=self._ingress_ports,
                )
            )
        if self.lookup.uses_second_pass:
            last_stage = self.pipeline.stage_count - 1
            self.pipeline.stage(last_stage).add_table(
                MatchActionTable(
                    name=f"{self.binding.name}.split_recirculate",
                    match=self._match_recirculation_request,
                    action=lambda ctx: ctx.request_recirculation(),
                    match_bits=17,
                    vliw_slots=1,
                    ingress_ports=self._ingress_ports,
                )
            )
            for slot, array in self.lookup.blocks_for_pass(1):
                self.pipeline.stage(slot.stage_index).add_table(
                    MatchActionTable(
                        name=f"{self.binding.name}.split_store[{slot.block_index}]",
                        match=self._match_store_pass(1),
                        action=self._make_store_action(slot, array),
                        match_bits=17,
                        vliw_slots=1,
                        ingress_ports=self._ingress_ports,
                    )
                )

    # ------------------------------------------------------------------ #
    # Match predicates
    # ------------------------------------------------------------------ #

    # The predicates below are flat (no helper-call chains) because they
    # run for every packet on every pass; they read exactly the same
    # fields the original nested helpers did.

    def _is_split_ingress(self, ctx: PipelinePacket) -> bool:
        return ctx.ingress_port in self._ingress_ports

    def _match_split_ingress(self, ctx: PipelinePacket) -> bool:
        return ctx.ingress_port in self._ingress_ports and ctx.recirculations == 0

    def _match_split_candidate(self, ctx: PipelinePacket) -> bool:
        """Packets worth splitting: enabled port, big enough payload."""
        return (
            ctx.ingress_port in self._ingress_ports
            and ctx.recirculations == 0
            and self.config.split_enabled
            and len(ctx.packet.payload) >= self.config.min_split_payload
        )

    def _match_store_pass(self, pass_number: int):
        ingress_ports = self._ingress_ports

        def match(ctx: PipelinePacket) -> bool:
            pp = ctx.packet.pp
            return (
                ctx.recirculations == pass_number
                and ctx.ingress_port in ingress_ports
                and pp is not None
                and pp.enb == 1
            )

        return match

    def _match_recirculation_request(self, ctx: PipelinePacket) -> bool:
        pp = ctx.packet.pp
        return (
            ctx.recirculations == 0
            and ctx.ingress_port in self._ingress_ports
            and pp is not None
            and pp.enb == 1
        )

    # ------------------------------------------------------------------ #
    # Actions
    # ------------------------------------------------------------------ #

    def _action_tag(self, ctx: PipelinePacket) -> None:
        """Stage-1 action: advance the tagger and stash the tag in metadata."""
        tag = self.tagger.next_tag(ctx)
        ctx.meta[META_TAG_TBL_IDX] = tag.tbl_idx
        ctx.meta[META_TAG_CLK] = tag.clk

    def _action_probe(self, ctx: PipelinePacket) -> None:
        """Stage-2 action: probe the metadata table and add the header."""
        packet = ctx.packet
        if not self.config.split_enabled:
            packet.pp = PayloadParkHeader.disabled()
            return
        if META_TAG_TBL_IDX not in ctx.meta:
            # The tagger did not run: the payload is too small to park.
            self.counters.split_disabled_small_payload += 1
            packet.pp = PayloadParkHeader.disabled()
            return

        tbl_idx = ctx.meta[META_TAG_TBL_IDX]
        clk = ctx.meta[META_TAG_CLK]
        probe = self.lookup.probe_and_claim(
            ctx, tbl_idx, clk, max_exp=self.config.expiry_threshold
        )
        recorder = self.obs_recorder
        if probe.evicted:
            self.counters.evictions += 1
            if recorder is not None:
                recorder.slot_evicted(self.binding.name, tbl_idx)
        if not probe.claimed:
            self.counters.split_disabled_table_occupied += 1
            packet.pp = PayloadParkHeader.disabled()
            return

        parked_len = min(self.config.parked_bytes, packet.payload_length)
        parked_payload = packet.park_leading_payload(parked_len)
        ctx.meta[META_PARKED_PAYLOAD] = parked_payload
        packet.pp = PayloadParkHeader(
            enb=1, op=OP_MERGE, tbl_idx=tbl_idx, clk=clk
        ).seal()
        self.counters.splits += 1
        if recorder is not None:
            recorder.payload_parked(
                self.binding.name, tbl_idx, clk, packet.meta.get("obs_pkt")
            )

    def _make_store_action(self, slot, array):
        def action(ctx: PipelinePacket) -> None:
            parked_payload: Optional[bytes] = ctx.meta.get(META_PARKED_PAYLOAD)
            if parked_payload is None:
                return
            self.lookup.store_block(
                ctx, slot, array, ctx.packet.pp.tbl_idx, parked_payload
            )

        return action
