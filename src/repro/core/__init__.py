"""PayloadPark: the paper's primary contribution.

The core package implements the PayloadPark dataplane program — the
Split and Merge operations of Algorithms 1 and 2, the packet tagger, the
lookup table (metadata + payload register arrays), the payload evictor,
Explicit Drops and the monitoring counters — on top of the RMT switch
substrate in :mod:`repro.switchsim`, plus the baseline L2-forwarding
program used for comparison throughout the evaluation.
"""

from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.counters import PayloadParkCounters
from repro.core.header import OP_EXPLICIT_DROP, OP_MERGE, PayloadParkHeader
from repro.core.lookup_table import LookupTable, MetadataEntry
from repro.core.program import BaselineProgram, PayloadParkProgram, SwitchProgram
from repro.core.tagger import PacketTagger

__all__ = [
    "PayloadParkConfig",
    "NfServerBinding",
    "PayloadParkHeader",
    "OP_MERGE",
    "OP_EXPLICIT_DROP",
    "PayloadParkCounters",
    "LookupTable",
    "MetadataEntry",
    "PacketTagger",
    "PayloadParkProgram",
    "BaselineProgram",
    "SwitchProgram",
]
