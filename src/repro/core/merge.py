"""The Merge operation (Algorithm 2), expressed as match-action tables.

Merge runs on packets arriving from the NF server:

* **Stage 1**: packets whose Split was disabled (ENB=0) just have the
  PayloadPark header removed; nothing was parked for them.
* **Stage 2**: packets with ENB=1 are validated — the tag CRC must check
  out and the generation clock in the header must match the one stored
  in the metadata table.  A match frees the slot and flags the packet
  for payload restoration; a mismatch means the payload was prematurely
  evicted, so the packet is dropped and counted.  Explicit Drop requests
  (OP=1) reclaim the slot and then drop the packet — they are a
  memory-release notification, not user traffic.
* **Stages 3..N**: each payload block is read back (and cleared) from
  its register array; when the parked size spans two passes the packet
  recirculates to collect the second pass's blocks.  The deparser
  prepends the collected bytes to the packet's payload.
"""

from __future__ import annotations

from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.counters import PayloadParkCounters
from repro.core.header import OP_EXPLICIT_DROP
from repro.core.lookup_table import LookupTable
from repro.switchsim.context import PipelinePacket
from repro.switchsim.mat import MatchActionTable
from repro.switchsim.pipeline import Pipeline

#: Metadata keys used to pass information between Merge stages.
META_IS_PP_ENB = "merge.is_pp_enb"
META_MERGE_TBL_IDX = "merge.tbl_idx"
META_MERGE_BLOCKS = "merge.blocks"
META_RESTORED = "merge.restored"


class MergePath:
    """Installs and implements the Merge tables for one NF-server binding."""

    def __init__(
        self,
        binding: NfServerBinding,
        config: PayloadParkConfig,
        pipeline: Pipeline,
        lookup: LookupTable,
        counters: PayloadParkCounters,
        enb_zero_stage: int = 0,
        validate_stage: int = 1,
    ) -> None:
        self.binding = binding
        self.config = config
        self.pipeline = pipeline
        self.lookup = lookup
        self.counters = counters
        self.enb_zero_stage = enb_zero_stage
        self.validate_stage = validate_stage
        self._nf_ports = frozenset((binding.nf_port,))
        #: Flight-recorder hook (repro.obs); None keeps the path lean.
        self.obs_recorder = None

    # ------------------------------------------------------------------ #
    # Table installation
    # ------------------------------------------------------------------ #

    def install(self) -> None:
        """Create the Merge MATs and place them into their stages."""
        self.pipeline.stage(self.enb_zero_stage).add_table(
            MatchActionTable(
                name=f"{self.binding.name}.merge_enb_zero",
                match=self._match_enb_zero,
                action=self._action_remove_header,
                match_bits=17,
                vliw_slots=1,
                ingress_ports=self._nf_ports,
            )
        )
        self.pipeline.stage(self.validate_stage).add_table(
            MatchActionTable(
                name=f"{self.binding.name}.merge_validate",
                match=self._match_enb_one,
                action=self._action_validate,
                match_bits=17,
                vliw_slots=4,
                ingress_ports=self._nf_ports,
            )
        )
        for slot, array in self.lookup.blocks_for_pass(0):
            self.pipeline.stage(slot.stage_index).add_table(
                MatchActionTable(
                    name=f"{self.binding.name}.merge_load[{slot.block_index}]",
                    match=self._match_load_pass(0),
                    action=self._make_load_action(slot, array),
                    match_bits=17,
                    vliw_slots=1,
                    ingress_ports=self._nf_ports,
                )
            )
        if self.lookup.uses_second_pass:
            last_stage = self.pipeline.stage_count - 1
            self.pipeline.stage(last_stage).add_table(
                MatchActionTable(
                    name=f"{self.binding.name}.merge_recirculate",
                    match=self._match_recirculation_request,
                    action=lambda ctx: ctx.request_recirculation(),
                    match_bits=17,
                    vliw_slots=1,
                    ingress_ports=self._nf_ports,
                )
            )
            for slot, array in self.lookup.blocks_for_pass(1):
                self.pipeline.stage(slot.stage_index).add_table(
                    MatchActionTable(
                        name=f"{self.binding.name}.merge_load[{slot.block_index}]",
                        match=self._match_load_pass(1),
                        action=self._make_load_action(slot, array),
                        match_bits=17,
                        vliw_slots=1,
                        ingress_ports=self._nf_ports,
                    )
                )

    # ------------------------------------------------------------------ #
    # Match predicates
    # ------------------------------------------------------------------ #

    # Flat predicates (no helper-call chains): they run for every packet
    # on every pass and read the same fields the nested helpers did.

    def _is_merge_ingress(self, ctx: PipelinePacket) -> bool:
        return ctx.ingress_port == self.binding.nf_port

    def _match_enb_zero(self, ctx: PipelinePacket) -> bool:
        pp = ctx.packet.pp
        return (
            ctx.ingress_port == self.binding.nf_port
            and ctx.recirculations == 0
            and pp is not None
            and pp.enb == 0
        )

    def _match_enb_one(self, ctx: PipelinePacket) -> bool:
        pp = ctx.packet.pp
        return (
            ctx.ingress_port == self.binding.nf_port
            and ctx.recirculations == 0
            and pp is not None
            and pp.enb == 1
        )

    def _match_load_pass(self, pass_number: int):
        nf_port = self.binding.nf_port

        def match(ctx: PipelinePacket) -> bool:
            return (
                ctx.recirculations == pass_number
                and ctx.ingress_port == nf_port
                and ctx.meta.get(META_IS_PP_ENB) == 1
            )

        return match

    def _match_recirculation_request(self, ctx: PipelinePacket) -> bool:
        return (
            ctx.recirculations == 0
            and ctx.ingress_port == self.binding.nf_port
            and ctx.meta.get(META_IS_PP_ENB) == 1
        )

    # ------------------------------------------------------------------ #
    # Actions
    # ------------------------------------------------------------------ #

    def _action_remove_header(self, ctx: PipelinePacket) -> None:
        """ENB=0: nothing was parked, simply strip the PayloadPark header."""
        ctx.packet.pp = None
        self.counters.merge_enb_zero += 1

    def _action_validate(self, ctx: PipelinePacket) -> None:
        """Validate the tag, reclaim the slot and flag the payload restore."""
        header = ctx.packet.pp
        recorder = self.obs_recorder
        if not header.tag_is_valid():
            self.counters.tag_validation_failures += 1
            ctx.drop("payloadpark-tag-corrupt")
            return

        result = self.lookup.validate_and_release(ctx, header.tbl_idx, header.clk)
        if not result.valid:
            self.counters.premature_evictions += 1
            if recorder is not None:
                recorder.premature_eviction(
                    self.binding.name, header.tbl_idx,
                    ctx.packet.meta.get("obs_pkt"),
                )
            ctx.drop("payloadpark-premature-eviction")
            return

        if header.op == OP_EXPLICIT_DROP:
            # The NF framework told us it dropped the packet: the slot is
            # reclaimed (above) and the notification itself goes no further.
            self.counters.explicit_drops += 1
            if recorder is not None:
                recorder.slot_released(
                    self.binding.name, header.tbl_idx, "explicit-drop"
                )
            ctx.packet.pp = None
            ctx.drop("payloadpark-explicit-drop")
            return

        ctx.meta[META_IS_PP_ENB] = 1
        ctx.meta[META_MERGE_TBL_IDX] = header.tbl_idx
        ctx.meta[META_MERGE_BLOCKS] = {}
        ctx.packet.pp = None
        self.counters.merges += 1
        if recorder is not None:
            recorder.slot_merged(self.binding.name, header.tbl_idx)

    def _make_load_action(self, slot, array):
        def action(ctx: PipelinePacket) -> None:
            index = ctx.meta[META_MERGE_TBL_IDX]
            block = self.lookup.load_and_clear_block(ctx, array, index)
            ctx.meta[META_MERGE_BLOCKS][slot.block_index] = block

        return action

    # ------------------------------------------------------------------ #
    # Deparser hook
    # ------------------------------------------------------------------ #

    def deparse(self, ctx: PipelinePacket) -> None:
        """Prepend the collected payload blocks once the last pass is done.

        Called from the program's deparser hook.  The restore is skipped
        while another pass is pending and performed at most once.
        """
        if ctx.meta.get(META_IS_PP_ENB) != 1 or ctx.dropped:
            return
        if ctx.recirculate_requested:
            return
        if ctx.meta.get(META_RESTORED):
            return
        blocks = ctx.meta.get(META_MERGE_BLOCKS, {})
        payload = b"".join(blocks[i] for i in sorted(blocks))
        ctx.packet.restore_leading_payload(payload)
        ctx.meta[META_RESTORED] = True
