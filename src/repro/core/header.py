"""The PayloadPark header (Fig. 2 of the paper).

The header is inserted between the UDP header and the (remaining)
payload of every packet that arrives on a PayloadPark-enabled port:

====== ======= =========================================================
Field  Width   Meaning
====== ======= =========================================================
ENB    1 bit   payload successfully parked in the switch
OP     1 bit   opcode: 0 = Merge, 1 = Explicit Drop
ALIGN  6 bits  padding for byte alignment
TAG    48 bits table index (16) + generation clock (16) + CRC (16)
====== ======= =========================================================

The CRC covers the table index and clock so that the Merge stage can
reject corrupted or forged tags before touching the lookup table.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.packet.crc import crc16

#: Opcode values for the OP bit.
OP_MERGE = 0
OP_EXPLICIT_DROP = 1

PP_HEADER_LEN = 7  # 1 byte of flags/align + 6 bytes of tag

#: (tbl_idx << 16 | clk) -> CRC-16, shared across headers; the tag space
#: is bounded by table entries × clock generations, the limit is a
#: safety net for pathological configurations.
_TAG_CRC_MEMO = {}
_TAG_CRC_MEMO_LIMIT = 1 << 20


@dataclass
class PayloadParkHeader:
    """The 7-byte PayloadPark header."""

    enb: int = 0
    op: int = OP_MERGE
    tbl_idx: int = 0
    clk: int = 0
    crc: int = 0

    HEADER_LEN = PP_HEADER_LEN

    def __post_init__(self) -> None:
        if self.enb not in (0, 1):
            raise ValueError(f"ENB must be 0 or 1, got {self.enb}")
        if self.op not in (OP_MERGE, OP_EXPLICIT_DROP):
            raise ValueError(f"OP must be 0 or 1, got {self.op}")
        if not 0 <= self.tbl_idx <= 0xFFFF:
            raise ValueError(f"table index out of range: {self.tbl_idx}")
        if not 0 <= self.clk <= 0xFFFF:
            raise ValueError(f"clock out of range: {self.clk}")

    # ------------------------------------------------------------------ #
    # Tag integrity
    # ------------------------------------------------------------------ #

    def compute_crc(self) -> int:
        """CRC-16 over the table index and clock (memoized).

        Split seals and Merge validates one tag per packet, but the
        (tbl_idx, clk) space is tiny — table entries × generation clocks
        — so the CRC is computed lazily once per distinct tag and then
        served from the memo.
        """
        key = (self.tbl_idx << 16) | self.clk
        crc = _TAG_CRC_MEMO.get(key)
        if crc is None:
            crc = crc16(struct.pack("!HH", self.tbl_idx, self.clk))
            if len(_TAG_CRC_MEMO) >= _TAG_CRC_MEMO_LIMIT:
                _TAG_CRC_MEMO.clear()
            _TAG_CRC_MEMO[key] = crc
        return crc

    def seal(self) -> "PayloadParkHeader":
        """Fill in the CRC field from the current tag values."""
        self.crc = self.compute_crc()
        return self

    def tag_is_valid(self) -> bool:
        """True when the stored CRC matches the tag fields."""
        return self.crc == self.compute_crc()

    # ------------------------------------------------------------------ #
    # Wire format
    # ------------------------------------------------------------------ #

    def byte_length(self) -> int:
        """Bytes this header occupies on the wire."""
        return PP_HEADER_LEN

    def to_bytes(self) -> bytes:
        """Serialize: flags/align byte then the 48-bit tag."""
        flags = ((self.enb & 0x1) << 7) | ((self.op & 0x1) << 6)
        return struct.pack("!BHHH", flags, self.tbl_idx, self.clk, self.crc)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PayloadParkHeader":
        """Parse the first 7 bytes of *data* as a PayloadPark header."""
        if len(data) < PP_HEADER_LEN:
            raise ValueError(f"PayloadPark header needs {PP_HEADER_LEN} bytes, got {len(data)}")
        flags, tbl_idx, clk, crc = struct.unpack("!BHHH", data[:PP_HEADER_LEN])
        return cls(
            enb=(flags >> 7) & 0x1,
            op=(flags >> 6) & 0x1,
            tbl_idx=tbl_idx,
            clk=clk,
            crc=crc,
        )

    @classmethod
    def disabled(cls) -> "PayloadParkHeader":
        """An all-zero header: Split was not performed (ENB=0)."""
        return cls(enb=0, op=OP_MERGE, tbl_idx=0, clk=0, crc=0)

    def copy(self) -> "PayloadParkHeader":
        """Return an independent copy of this header."""
        return PayloadParkHeader(
            enb=self.enb, op=self.op, tbl_idx=self.tbl_idx, clk=self.clk, crc=self.crc
        )
