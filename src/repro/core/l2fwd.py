"""L2 forwarding used by both the PayloadPark and the baseline programs.

The switch forwards packets by destination MAC address (Fig. 3's "L2
FWD" block); entries are installed by the control plane.  Traffic from a
PayloadPark-enabled ingress port is steered to its NF server regardless
of MAC (the NF server is a bump-in-the-wire middlebox), while packets
returning from the NF server are forwarded by MAC with a per-binding
default egress (in the paper's testbed, the traffic generator's port).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.packet.ethernet import MacAddress


class L2ForwardingTable:
    """A MAC-address to egress-port map with per-binding defaults."""

    def __init__(self) -> None:
        self._entries: Dict[int, int] = {}
        self.lookups = 0
        self.hits = 0

    def add_entry(self, mac: MacAddress, port: int) -> None:
        """Install (or overwrite) a MAC → port entry."""
        self._entries[mac.value] = port

    def remove_entry(self, mac: MacAddress) -> None:
        """Remove an entry if present."""
        self._entries.pop(mac.value, None)

    def lookup(self, mac: MacAddress, default: Optional[int] = None) -> Optional[int]:
        """Return the egress port for *mac*, or *default* on a miss."""
        self.lookups += 1
        port = self._entries.get(mac.value)
        if port is not None:
            self.hits += 1
            return port
        return default

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, mac: MacAddress) -> bool:
        return mac.value in self._entries
