"""PayloadPark reproduction library.

This package reproduces *Parking Packet Payload with P4* (Goswami et al.,
CoNEXT 2020).  The paper's contribution — parking packet payloads in the
stateful memory of an RMT switch so that only headers traverse the
switch ↔ NF-server link — lives in :mod:`repro.core`.  Everything the paper
depends on (a Tofino-like RMT pipeline, an NF framework with firewall /
NAT / Maglev load-balancer NFs, a discrete-event network with NICs and a
PCIe model, traffic generation, and telemetry) is implemented as substrate
subpackages so the full evaluation can be regenerated on a laptop.

Quickstart
----------
>>> from repro import quickstart
>>> report = quickstart()                      # doctest: +SKIP
>>> report.goodput_gain_percent                # doctest: +SKIP
"""

from repro.core.config import PayloadParkConfig
from repro.core.header import PayloadParkHeader
from repro.core.program import BaselineProgram, PayloadParkProgram

__all__ = [
    "PayloadParkConfig",
    "PayloadParkHeader",
    "PayloadParkProgram",
    "BaselineProgram",
    "ExperimentRunner",
    "ExperimentResult",
    "ScenarioConfig",
    "quickstart",
    "__version__",
]

__version__ = "1.0.0"

_EXPERIMENT_EXPORTS = ("ExperimentRunner", "ExperimentResult", "ScenarioConfig")


def __getattr__(name):
    """Lazily expose the experiment-harness classes.

    The experiment runner pulls in the whole simulation stack; deferring
    its import keeps ``import repro`` cheap for users who only need the
    dataplane classes.
    """
    if name in _EXPERIMENT_EXPORTS:
        from repro.experiments import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def quickstart():
    """Run a small PayloadPark-vs-baseline comparison and return the report.

    This is the programmatic equivalent of ``examples/quickstart.py``: a
    FW → NAT chain behind a 10 GbE link fed with the enterprise packet-size
    mix, simulated for a few milliseconds under both deployments.
    """
    from repro.experiments.quickstart import run_quickstart

    return run_quickstart()
