"""Command-line interface: regenerate any figure or table from a shell.

Usage::

    python -m repro list                     # show available experiments
    python -m repro run fig07                # regenerate Fig. 7
    python -m repro run table1
    python -m repro quickstart --rate 10.5   # one-off comparison

The CLI is a thin wrapper over the modules in :mod:`repro.experiments`;
each experiment prints the same rows the corresponding benchmark does.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    fig06_packet_size_cdf,
    fig07_goodput_latency,
    fig08_fixed_sizes,
    fig09_pcie,
    fig10_multi_server,
    fig11_multi_server_latency,
    fig12_explicit_drops,
    fig13_recirculation,
    fig14_memory_sweep,
    fig15_nf_cycles,
    fig16_small_packets,
    functional_equivalence,
    table1_resources,
)

#: Experiment name → (description, main-function) registry.
EXPERIMENTS: Dict[str, tuple] = {
    "fig06": ("Enterprise packet-size CDF", fig06_packet_size_cdf.main),
    "fig07": ("Goodput/latency vs. rate, FW->NAT->LB, 10GbE", fig07_goodput_latency.main),
    "fig08": ("Goodput vs. fixed packet size, 40GbE", fig08_fixed_sizes.main),
    "fig09": ("PCIe bandwidth vs. packet size", fig09_pcie.main),
    "fig10": ("Per-server goodput, 8 NF servers", fig10_multi_server.main),
    "fig11": ("Per-server latency, 8 NF servers", fig11_multi_server_latency.main),
    "fig12": ("Eviction policies vs. Explicit Drops", fig12_explicit_drops.main),
    "fig13": ("Recirculation (384 parked bytes)", fig13_recirculation.main),
    "fig14": ("Peak goodput vs. reserved memory", fig14_memory_sweep.main),
    "fig15": ("NF CPU cost vs. benefit", fig15_nf_cycles.main),
    "fig16": ("512-byte packets, FW->NAT, 40GbE", fig16_small_packets.main),
    "table1": ("Switch resource utilization", table1_resources.main),
    "equivalence": ("Functional equivalence check (§6.2.6)", functional_equivalence.main),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PayloadPark reproduction: regenerate the paper's figures and tables.",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment by name")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")

    quick_parser = subparsers.add_parser(
        "quickstart", help="run a single PayloadPark-vs-baseline comparison"
    )
    quick_parser.add_argument(
        "--rate", type=float, default=10.5, help="offered load in Gbps (default 10.5)"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            description, _runner = EXPERIMENTS[name]
            print(f"{name.ljust(width)}  {description}")
        return 0

    if args.command == "run":
        _description, runner = EXPERIMENTS[args.experiment]
        runner()
        return 0

    if args.command == "quickstart":
        from repro.experiments.quickstart import run_quickstart
        from repro.telemetry.report import render_table

        report = run_quickstart(send_rate_gbps=args.rate)
        print(render_table([report.baseline.as_row(), report.payloadpark.as_row()]))
        print(f"goodput gain: {report.goodput_gain_percent:+.2f}%  "
              f"PCIe savings: {report.pcie_savings_percent:+.2f}%")
        return 0

    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
