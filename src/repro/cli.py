"""Command-line interface: regenerate any figure or table from a shell.

Usage::

    python -m repro list                     # show available experiments
    python -m repro run fig07                # regenerate Fig. 7
    python -m repro run fig07 --json         # machine-readable rows
    python -m repro run fig06 --seed 3       # reproducible sampling
    python -m repro quickstart --rate 10.5   # one-off comparison
    python -m repro campaign run sweep.yaml  # parallel declarative sweep
    python -m repro campaign status sweep.yaml
    python -m repro campaign report sweep.yaml
    python -m repro workload list            # named generative/replay workloads
    python -m repro workload describe bursty-mmpp
    python -m repro workload preview incast-sync --packets 5000
    python -m repro faults list              # named fault-injection profiles
    python -m repro faults preview chaos-mix --horizon-us 6000
    python -m repro run fig07 --faults link-flap  # inject faults into a figure
    python -m repro run fig07 --slow-path    # reference simulation path
    python -m repro bench --quick --check    # fast-vs-slow speedup smoke
    python -m repro validate run --scenario workload -p workload=bursty-mmpp
    python -m repro validate fuzz --budget 30s --seed 0
    python -m repro validate replay          # re-run the shrunk-repro corpus
    python -m repro observe run --faults link-flap --out observations/
    python -m repro observe trace --format chrome   # chrome://tracing export
    python -m repro observe profile          # wall-time per engine stage
    python -m repro run chaos --trace --metrics     # figures with the plane on
    python -m repro bench --quick --obs-check       # observability overhead gate
    python -m repro run fig07 --fidelity auto       # fluid tier on steady segments
    python -m repro bench --quick --fidelity-check  # fluid speedup + agreement gate
    python -m repro --log-level debug run fig07     # verbose stderr diagnostics

The ``run``/``quickstart`` commands are thin wrappers over the modules in
:mod:`repro.experiments`; ``campaign`` drives the
:mod:`repro.orchestrator` subsystem (grid expansion, multi-process
execution, resumable JSONL result store).
"""

from __future__ import annotations

import argparse
import inspect
import json
import logging
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    chaos,
    fig06_packet_size_cdf,
    fig07_goodput_latency,
    fig08_fixed_sizes,
    fig09_pcie,
    fig10_multi_server,
    fig11_multi_server_latency,
    fig12_explicit_drops,
    fig13_recirculation,
    fig14_memory_sweep,
    fig15_nf_cycles,
    fig16_small_packets,
    functional_equivalence,
    table1_resources,
)
from repro.experiments.runner import default_seed

#: Every repro logger hangs off the ``repro`` root name; the CLI installs
#: one stderr handler on it so library code logs structured diagnostics
#: without polluting stdout (which carries the machine-readable results).
logger = logging.getLogger("repro.cli")

LOG_LEVELS = ("debug", "info", "warning", "error")


def configure_logging(level_name: str = "info") -> None:
    """Install the package-wide stderr log handler at *level_name*.

    Replaces any previous handler on the ``repro`` logger (rather than
    appending), so repeated CLI invocations in one process — the test
    suite, notebooks — neither duplicate output nor keep writing to a
    stale stream.
    """
    if level_name not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level_name!r}; expected one of {LOG_LEVELS}"
        )
    root = logging.getLogger("repro")
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    root.handlers[:] = [handler]
    root.setLevel(getattr(logging, level_name.upper()))
    root.propagate = False


#: Experiment name → (description, main-function) registry.
EXPERIMENTS: Dict[str, tuple] = {
    "fig06": ("Enterprise packet-size CDF", fig06_packet_size_cdf.main),
    "fig07": ("Goodput/latency vs. rate, FW->NAT->LB, 10GbE", fig07_goodput_latency.main),
    "fig08": ("Goodput vs. fixed packet size, 40GbE", fig08_fixed_sizes.main),
    "fig09": ("PCIe bandwidth vs. packet size", fig09_pcie.main),
    "fig10": ("Per-server goodput, 8 NF servers", fig10_multi_server.main),
    "fig11": ("Per-server latency, 8 NF servers", fig11_multi_server_latency.main),
    "fig12": ("Eviction policies vs. Explicit Drops", fig12_explicit_drops.main),
    "fig13": ("Recirculation (384 parked bytes)", fig13_recirculation.main),
    "fig14": ("Peak goodput vs. reserved memory", fig14_memory_sweep.main),
    "fig15": ("NF CPU cost vs. benefit", fig15_nf_cycles.main),
    "fig16": ("512-byte packets, FW->NAT, 40GbE", fig16_small_packets.main),
    "table1": ("Switch resource utilization", table1_resources.main),
    "equivalence": ("Functional equivalence check (§6.2.6)", functional_equivalence.main),
    "chaos": ("Fault profiles vs. static run (repro-original)", chaos.main),
}

#: Experiment name → function returning JSON-serializable result data.
JSON_RUNNERS: Dict[str, Callable] = {
    "fig06": fig06_packet_size_cdf.run,
    "fig07": fig07_goodput_latency.run,
    "fig08": fig08_fixed_sizes.run,
    "fig09": fig09_pcie.run,
    "fig10": fig10_multi_server.run,
    "fig11": fig11_multi_server_latency.run,
    "fig12": fig12_explicit_drops.run,
    "fig13": fig13_recirculation.run,
    "fig14": fig14_memory_sweep.run,
    "fig15": fig15_nf_cycles.run,
    "fig16": fig16_small_packets.run,
    "table1": table1_resources.run,
    "equivalence": functional_equivalence.run,
    "chaos": chaos.run,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PayloadPark reproduction: regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug-level diagnostics on stderr (same as --log-level debug)",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="info",
        help="stderr diagnostic verbosity for every subcommand (default info)",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment by name")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run_parser.add_argument(
        "--json", action="store_true", help="emit the experiment's rows as JSON"
    )
    run_parser.add_argument(
        "--seed", type=int, default=None,
        help="override the default simulation seed for reproducible runs",
    )
    run_parser.add_argument(
        "--slow-path", action="store_true",
        help="run on the reference simulation path instead of the fast path "
             "(results are identical; see the golden-figure suite)",
    )
    run_parser.add_argument(
        "--time-scale", type=float, default=None,
        help="scale every scenario's simulated duration (e.g. 0.1 for a "
             "quick reduced-fidelity pass)",
    )
    run_parser.add_argument(
        "--fidelity", choices=("packet", "fluid", "auto"), default=None,
        help="simulation fidelity tier: packet (default) simulates every "
             "packet, auto batch-advances steady traffic segments as fluid "
             "flows where provably safe, fluid additionally fails when a "
             "scenario admits no steady segment (see repro.fidelity)",
    )
    run_parser.add_argument(
        "--faults", default=None, metavar="PROFILE",
        help="inject a fault profile into every scenario the experiment "
             "builds (see 'repro faults list')",
    )
    run_parser.add_argument(
        "--metrics", action="store_true",
        help="sample time-series metrics during every run the experiment "
             "performs and export them under --obs-dir",
    )
    run_parser.add_argument(
        "--trace", action="store_true",
        help="record packet-lifecycle traces (JSONL + Chrome trace-event) "
             "during every run and export them under --obs-dir",
    )
    run_parser.add_argument(
        "--profile", action="store_true",
        help="attribute wall-time to engine stages during every run and "
             "export the reports under --obs-dir",
    )
    run_parser.add_argument(
        "--obs-dir", default="observations",
        help="directory for --metrics/--trace/--profile exports "
             "(default observations/)",
    )

    quick_parser = subparsers.add_parser(
        "quickstart", help="run a single PayloadPark-vs-baseline comparison"
    )
    quick_parser.add_argument(
        "--rate", type=float, default=10.5, help="offered load in Gbps (default 10.5)"
    )

    campaign_parser = subparsers.add_parser(
        "campaign", help="declarative sweep campaigns (parallel, resumable)"
    )
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command")

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("spec", help="campaign spec file (.yaml/.yml/.json)")
        sub.add_argument(
            "--store", default=None,
            help="result store path (default results/<campaign>.jsonl)",
        )
        sub.add_argument(
            "--shards", type=int, default=None, metavar="N",
            help="split the store into N hash-keyed shard files "
                 "(<name>.shard-NN.jsonl); existing shards are detected "
                 "automatically, so this mainly matters on first write",
        )
        sub.add_argument(
            "--time-scale", type=float, default=None,
            help="override the campaign's simulated-time scale "
                 "(part of each run's identity, so status/report need the "
                 "same value the runs used)",
        )

    campaign_run = campaign_sub.add_parser("run", help="execute every pending grid point")
    add_common(campaign_run)
    campaign_run.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: CPU count; 1 = serial)",
    )
    campaign_run.add_argument(
        "--serial", action="store_true", help="force serial in-process execution"
    )
    campaign_run.add_argument(
        "--no-resume", action="store_true",
        help="re-execute grid points that already have records",
    )
    campaign_run.add_argument(
        "--json", action="store_true", help="emit the run summary as JSON"
    )
    campaign_run.add_argument(
        "--no-bus", action="store_true",
        help="disable the telemetry bus (no live events sidecar; "
             "'repro campaign serve' can then only attach post-hoc)",
    )
    campaign_run.add_argument(
        "--heartbeat", type=float, default=5.0, metavar="SECONDS",
        help="seconds between per-cell worker heartbeats on the bus (default 5)",
    )
    campaign_run.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock deadline under parallel dispatch; a cell "
             "past it loses its worker and is retried (default: none)",
    )
    campaign_run.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="retry budget per cell across crashes, timeouts and recorded "
             "failures; at the budget the cell is stamped 'exhausted' "
             "(default 3; 0 retries forever)",
    )
    campaign_run.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="SECONDS",
        help="base of the exponential backoff between cell retries "
             "(default 0.5)",
    )

    campaign_status = campaign_sub.add_parser(
        "status", help="show completed/pending/failed counts"
    )
    add_common(campaign_status)

    campaign_serve = campaign_sub.add_parser(
        "serve",
        help="HTTP endpoints over campaign state: /status /cells "
             "/violations /events /metrics (live tail or post-hoc)",
    )
    add_common(campaign_serve)
    campaign_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    campaign_serve.add_argument(
        "--port", type=int, default=8765,
        help="bind port (default 8765; 0 picks a free port)",
    )
    campaign_serve.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="store/events tail poll interval while following a live "
             "campaign (default 0.5)",
    )
    campaign_serve.add_argument(
        "--no-follow", action="store_true",
        help="serve a frozen post-hoc snapshot instead of tailing the "
             "store and events sidecar",
    )
    campaign_serve.add_argument(
        "--max-seconds", type=float, default=None,
        help="stop serving after this many seconds (default: until Ctrl-C)",
    )

    campaign_report = campaign_sub.add_parser(
        "report", help="aggregate stored records into a table"
    )
    add_common(campaign_report)
    campaign_report.add_argument(
        "--json", action="store_true", help="emit the aggregated rows as JSON"
    )
    campaign_report.add_argument(
        "--columns", default=None,
        help="comma-separated metric columns (default: all)",
    )

    workload_parser = subparsers.add_parser(
        "workload", help="inspect and preview named traffic workloads"
    )
    workload_sub = workload_parser.add_subparsers(dest="workload_command")

    workload_list = workload_sub.add_parser("list", help="list registered workloads")
    workload_list.add_argument(
        "--names", action="store_true", help="print bare names only, one per line"
    )

    workload_describe = workload_sub.add_parser(
        "describe", help="show one workload's composition"
    )
    workload_describe.add_argument("name", help="workload name (see 'workload list')")
    workload_describe.add_argument(
        "--pcap", default=None,
        help="replay this capture instead of the built-in one (pcap-replay only)",
    )

    workload_preview = workload_sub.add_parser(
        "preview",
        help="materialize the first N packets and print summary statistics "
             "(no simulation run)",
    )
    workload_preview.add_argument("name", help="workload name (see 'workload list')")
    workload_preview.add_argument(
        "--packets", type=int, default=2000, help="trace length (default 2000)"
    )
    workload_preview.add_argument(
        "--seed", type=int, default=None,
        help="trace seed (default: the experiments' default seed)",
    )
    workload_preview.add_argument(
        "--rate", type=float, default=None,
        help="rescale the workload's mean offered rate (Gbps)",
    )
    workload_preview.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    workload_preview.add_argument(
        "--pcap", default=None,
        help="replay this capture instead of the built-in one (pcap-replay only)",
    )

    faults_parser = subparsers.add_parser(
        "faults", help="inspect and preview fault-injection profiles"
    )
    faults_sub = faults_parser.add_subparsers(dest="faults_command")

    faults_list = faults_sub.add_parser("list", help="list registered fault profiles")
    faults_list.add_argument(
        "--names", action="store_true", help="print bare names only, one per line"
    )

    faults_describe = faults_sub.add_parser(
        "describe", help="show one profile's events and generators"
    )
    faults_describe.add_argument("name", help="profile name (see 'faults list')")

    faults_preview = faults_sub.add_parser(
        "preview",
        help="materialize a profile against a horizon and print the event "
             "timeline (no simulation run)",
    )
    faults_preview.add_argument("name", help="profile name (see 'faults list')")
    faults_preview.add_argument(
        "--horizon-us", type=float, default=6_000.0,
        help="run horizon the schedule resolves against (default 6000)",
    )
    faults_preview.add_argument(
        "--seed", type=int, default=None,
        help="materialization seed (default: the experiments' default seed)",
    )
    faults_preview.add_argument(
        "--json", action="store_true", help="emit the event timeline as JSON"
    )

    validate_parser = subparsers.add_parser(
        "validate",
        help="invariant engine, metamorphic checks and the scenario fuzzer",
    )
    validate_sub = validate_parser.add_subparsers(dest="validate_command")

    validate_run = validate_sub.add_parser(
        "run", help="check invariants/relations on one scenario"
    )
    validate_run.add_argument(
        "descriptor", nargs="?", default=None,
        help="scenario descriptor JSON (a corpus entry); omit to use --scenario",
    )
    validate_run.add_argument(
        "--scenario", default="fw_nat_lb_10ge",
        help="registry scenario name (default fw_nat_lb_10ge)",
    )
    validate_run.add_argument(
        "-p", "--param", action="append", default=[], metavar="KEY=VALUE",
        help="scenario parameter override (repeatable; values parsed as JSON)",
    )
    validate_run.add_argument(
        "--relations", default=None,
        help="comma-separated metamorphic relations "
             "(fast_slow, determinism, time_scale, rate_monotonicity; '' = none; "
             "default: a descriptor file's recorded relations, else fast_slow)",
    )
    validate_run.add_argument(
        "--time-scale", type=float, default=1.0,
        help="simulated-duration multiplier for the checked runs",
    )
    validate_run.add_argument(
        "--json", action="store_true", help="emit the validation report as JSON"
    )

    validate_fuzz = validate_sub.add_parser(
        "fuzz", help="differential scenario fuzzing with shrinking"
    )
    validate_fuzz.add_argument(
        "--seed", type=int, default=0, help="fuzz seed (default 0)"
    )
    validate_fuzz.add_argument(
        "--scenarios", type=int, default=None,
        help="number of scenarios to generate (default 50 when no --budget)",
    )
    validate_fuzz.add_argument(
        "--budget", default=None,
        help="wall-clock budget, e.g. 30s or 2m (checked between scenarios)",
    )
    validate_fuzz.add_argument(
        "--corpus", default=None,
        help="directory for shrunk repros (default tests/validation_corpus)",
    )
    validate_fuzz.add_argument(
        "--no-corpus", action="store_true",
        help="do not write failing repros anywhere",
    )
    validate_fuzz.add_argument(
        "--relations", default="fast_slow",
        help="comma-separated relations applied to every scenario",
    )
    validate_fuzz.add_argument(
        "--no-shrink", action="store_true", help="skip shrinking failures"
    )
    validate_fuzz.add_argument(
        "--json", action="store_true", help="emit the fuzz summary as JSON"
    )

    validate_replay = validate_sub.add_parser(
        "replay", help="re-execute every corpus repro"
    )
    validate_replay.add_argument(
        "--corpus", default=None,
        help="corpus directory (default tests/validation_corpus)",
    )
    validate_replay.add_argument(
        "--json", action="store_true", help="emit the replay summary as JSON"
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="measure simulated-packets/sec on the fast vs the slow path",
    )
    bench_parser.add_argument(
        "--scenario", default=None,
        help="bench scenario (default fig07; see repro.bench.BENCH_SCENARIOS)",
    )
    bench_parser.add_argument(
        "--rate", type=float, default=None, help="offered load in Gbps",
    )
    bench_parser.add_argument(
        "--time-scale", type=float, default=None,
        help="simulated-duration multiplier (longer runs amortize caches)",
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=1,
        help="measurements per mode; the best is reported (default 1)",
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="short smoke measurement (time_scale 0.25) for CI",
    )
    bench_parser.add_argument(
        "--check", action="store_true",
        help="compare the speedup against benchmarks/fastpath_baseline.json "
             "and exit non-zero on regression",
    )
    bench_parser.add_argument(
        "--baseline", default=None,
        help="baseline JSON path (default benchmarks/fastpath_baseline.json)",
    )
    bench_parser.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fractional regression for --check (default 0.30)",
    )
    bench_parser.add_argument(
        "--json", action="store_true", help="emit the measurement as JSON"
    )
    bench_parser.add_argument(
        "--obs-check", action="store_true",
        help="also measure observability-plane overhead and fail when the "
             "disabled plane costs more than the budget (see --obs-tolerance)",
    )
    bench_parser.add_argument(
        "--obs-tolerance", type=float, default=None,
        help="allowed disabled-observability throughput loss for --obs-check "
             "(default 0.02)",
    )
    bench_parser.add_argument(
        "--no-artifact", action="store_true",
        help="do not write benchmarks/obs_overhead.json or append to "
             "benchmarks/bench_history.jsonl",
    )
    bench_parser.add_argument(
        "--bus-check", action="store_true",
        help="also measure campaign telemetry-bus overhead and fail when a "
             "bus-enabled campaign costs more than the budget "
             "(see --bus-tolerance)",
    )
    bench_parser.add_argument(
        "--bus-tolerance", type=float, default=None,
        help="allowed bus-enabled campaign throughput loss for --bus-check "
             "(default 0.02)",
    )
    bench_parser.add_argument(
        "--fidelity-check", action="store_true",
        help="also measure the fluid fidelity tier (fidelity: auto vs "
             "packet) on a long steady horizon; fail on a figure-tolerance "
             "breach or a speedup below --fidelity-min-speedup",
    )
    bench_parser.add_argument(
        "--fidelity-min-speedup", type=float, default=None,
        help="minimum packet/auto wall-clock speedup for --fidelity-check "
             "(default 5.0)",
    )

    bench_sub = bench_parser.add_subparsers(dest="bench_command")
    bench_trend = bench_sub.add_parser(
        "trend",
        help="sliding-window regression detection over the bench history",
    )
    bench_trend.add_argument(
        "--history", default=None,
        help="bench history JSONL (default benchmarks/bench_history.jsonl)",
    )
    bench_trend.add_argument(
        "--kind", default="fastpath",
        help="history entry kind to analyse (default fastpath)",
    )
    bench_trend.add_argument(
        "--metric", default="fast.packets_per_sec",
        help="dotted metric path inside each entry "
             "(default fast.packets_per_sec)",
    )
    bench_trend.add_argument(
        "--window", type=int, default=3,
        help="trailing samples that must all regress to flag (default 3)",
    )
    bench_trend.add_argument(
        "--threshold", type=float, default=0.25,
        help="fractional drop below the pre-window median that counts as "
             "regressed (default 0.25)",
    )
    bench_trend.add_argument(
        "--json", action="store_true", help="emit the analysis as JSON"
    )

    obs_parser = subparsers.add_parser(
        "obs",
        help="cross-run observability: diff metrics exports, list campaign runs",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command")

    obs_diff = obs_sub.add_parser(
        "diff",
        help="metric-by-metric delta between two repro.metrics/v1 exports",
    )
    obs_diff.add_argument(
        "run_a", help="metrics export file, or a directory with exactly one"
    )
    obs_diff.add_argument(
        "run_b", help="metrics export file, or a directory with exactly one"
    )
    obs_diff.add_argument(
        "--top", type=int, default=None,
        help="show only the N biggest movers per section",
    )
    obs_diff.add_argument(
        "--json", action="store_true", help="emit the structured diff as JSON"
    )

    obs_runs = obs_sub.add_parser(
        "runs", help="summarize every campaign store under the results root"
    )
    obs_runs.add_argument(
        "--root", default="results",
        help="directory holding campaign stores (default results/)",
    )
    obs_runs.add_argument(
        "--json", action="store_true", help="emit the run index as JSON"
    )

    observe_parser = subparsers.add_parser(
        "observe",
        help="observability plane: metrics time-series, packet traces, "
             "phase profiles",
    )
    observe_sub = observe_parser.add_subparsers(dest="observe_command")

    def add_observe_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scenario", default="fw_nat_lb_10ge",
            help="registry scenario name (default fw_nat_lb_10ge; see "
                 "repro.orchestrator.spec.SCENARIO_REGISTRY)",
        )
        sub.add_argument(
            "-p", "--param", action="append", default=[], metavar="KEY=VALUE",
            help="scenario parameter override (repeatable; values parsed as JSON)",
        )
        sub.add_argument(
            "--deployment", choices=("both", "baseline", "payloadpark"),
            default="payloadpark",
            help="which deployment(s) to run (default payloadpark)",
        )
        sub.add_argument(
            "--faults", default=None, metavar="PROFILE",
            help="inject a fault profile (see 'repro faults list')",
        )
        sub.add_argument(
            "--seed", type=int, default=None, help="override the scenario seed"
        )
        sub.add_argument(
            "--time-scale", type=float, default=1.0,
            help="simulated-duration multiplier (default 1.0)",
        )
        sub.add_argument(
            "--sample-every", type=int, default=None, metavar="N",
            help="trace every Nth generated packet (default 1 = all)",
        )
        sub.add_argument(
            "--interval-us", type=float, default=None,
            help="metrics sampling interval in simulated microseconds "
                 "(default 50)",
        )

    observe_run = observe_sub.add_parser(
        "run",
        help="run one scenario with the full plane armed and export "
             "metrics + traces + profile",
    )
    add_observe_common(observe_run)
    observe_run.add_argument(
        "--out", default="observations",
        help="export directory (default observations/)",
    )
    observe_run.add_argument(
        "--json", action="store_true", help="emit the run summaries as JSON"
    )

    observe_metrics = observe_sub.add_parser(
        "metrics", help="run one scenario and emit its metrics export"
    )
    add_observe_common(observe_metrics)
    observe_metrics.add_argument(
        "--out", default=None, help="write to this file instead of stdout"
    )

    observe_trace = observe_sub.add_parser(
        "trace", help="run one scenario and emit its packet-lifecycle trace"
    )
    add_observe_common(observe_trace)
    observe_trace.add_argument(
        "--format", choices=("jsonl", "chrome"), default="jsonl",
        help="trace output format (default jsonl; chrome loads in "
             "chrome://tracing / Perfetto)",
    )
    observe_trace.add_argument(
        "--out", default=None, help="write to this file instead of stdout"
    )

    observe_profile = observe_sub.add_parser(
        "profile", help="run one scenario and emit its phase-profiler report"
    )
    add_observe_common(observe_profile)
    observe_profile.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    observe_profile.add_argument(
        "--out", default=None, help="write the JSON report to this file too"
    )
    return parser


def _run_experiment(
    name: str,
    as_json: bool,
    seed: Optional[int],
    slow_path: bool = False,
    time_scale: Optional[float] = None,
    faults: Optional[str] = None,
    fidelity: Optional[str] = None,
    observe=None,
    obs_dir: Optional[str] = None,
) -> int:
    """Execute one experiment, optionally as JSON and/or with overrides."""
    from contextlib import ExitStack

    from repro.experiments.runner import (
        default_fast_path,
        default_faults,
        default_fidelity,
        default_time_scale,
    )

    payload = None
    obs_sink = None
    with ExitStack() as stack:
        if seed is not None:
            stack.enter_context(default_seed(seed))
        if slow_path:
            stack.enter_context(default_fast_path(False))
        if time_scale is not None:
            stack.enter_context(default_time_scale(time_scale))
        if faults is not None:
            stack.enter_context(default_faults(faults))
        if fidelity is not None:
            stack.enter_context(default_fidelity(fidelity))
        if observe is not None:
            from repro.experiments.runner import default_observe
            from repro.obs.session import ObservationSink, observation_sink

            obs_sink = ObservationSink()
            stack.enter_context(default_observe(observe))
            stack.enter_context(observation_sink(obs_sink))
        if not as_json:
            _description, runner = EXPERIMENTS[name]
            runner()
        else:
            runner = JSON_RUNNERS[name]
            kwargs = {}
            if seed is not None and "seed" in inspect.signature(runner).parameters:
                kwargs["seed"] = seed
            payload = runner(**kwargs)
    if obs_sink is not None:
        _export_observations(obs_sink.observations, Path(obs_dir or "observations"))
    if as_json:
        json.dump(
            {"experiment": name, "result": payload}, sys.stdout, indent=2, default=str
        )
        print()
    return 0


def _export_observations(observations, out_dir: Path) -> List[Path]:
    """Write every observation's exports to *out_dir*; log the paths."""
    from repro.obs.export import observation_stem, write_observation

    written: List[Path] = []
    for index, observation in enumerate(observations):
        stem = observation_stem(observation, index)
        written.extend(write_observation(observation, out_dir, stem))
    if written:
        logger.info(
            "wrote %d observability export(s) for %d run(s) to %s",
            len(written), len(observations), out_dir,
        )
        for path in written:
            logger.debug("export: %s", path)
    else:
        logger.warning("observability was armed but no runs were observed")
    return written


def _bench(args) -> int:
    from pathlib import Path as _Path

    from repro import bench

    time_scale = args.time_scale
    if time_scale is None:
        time_scale = bench.QUICK_TIME_SCALE if args.quick else bench.DEFAULT_TIME_SCALE
    scenario = args.scenario or bench.DEFAULT_SCENARIO
    rate = args.rate if args.rate is not None else bench.DEFAULT_RATE_GBPS
    result = bench.run_bench(
        scenario=scenario, rate_gbps=rate, time_scale=time_scale, repeat=args.repeat
    )
    obs_result = None
    if args.obs_check:
        obs_result = bench.run_obs_overhead(
            scenario=scenario, rate_gbps=rate, time_scale=time_scale,
            repeat=args.repeat,
        )
    bus_result = None
    if args.bus_check:
        bus_result = bench.run_bus_overhead(repeat=max(args.repeat, 3))
    fidelity_result = None
    if args.fidelity_check:
        # The fidelity bench defaults to stable underload (see
        # FIDELITY_BENCH_RATE_GBPS) unless a rate was given explicitly.
        fidelity_rate = (
            args.rate if args.rate is not None else bench.FIDELITY_BENCH_RATE_GBPS
        )
        fidelity_result = bench.run_fidelity_bench(
            scenario=scenario, rate_gbps=fidelity_rate, time_scale=time_scale,
            repeat=args.repeat,
        )
    if args.json:
        payload = dict(result)
        if obs_result is not None:
            payload["obs_overhead"] = obs_result
        if bus_result is not None:
            payload["bus_overhead"] = bus_result
        if fidelity_result is not None:
            payload["fidelity"] = fidelity_result
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        print(bench.format_result(result))
        if obs_result is not None:
            print(bench.format_obs_overhead(obs_result))
        if bus_result is not None:
            print(bench.format_bus_overhead(bus_result))
        if fidelity_result is not None:
            print(bench.format_fidelity(fidelity_result))
    if not args.no_artifact:
        history = bench.append_history(result, kind="fastpath")
        logger.info("appended fastpath measurement to %s", history)
        if obs_result is not None:
            artifact = bench.write_bench_artifact(obs_result, kind="obs_overhead")
            logger.info("wrote observability-overhead artifact %s", artifact)
        if bus_result is not None:
            bus_history = bench.append_history(bus_result, kind="campaign_bus")
            logger.info("appended campaign-bus measurement to %s", bus_history)
        if fidelity_result is not None:
            fid_history = bench.append_history(fidelity_result, kind="fidelity")
            logger.info("appended fidelity measurement to %s", fid_history)
    exit_code = 0
    if obs_result is not None:
        obs_tolerance = (
            args.obs_tolerance if args.obs_tolerance is not None
            else bench.OBS_OVERHEAD_TOLERANCE
        )
        ok, message = bench.check_obs_overhead(obs_result, tolerance=obs_tolerance)
        (logger.info if ok else logger.error)("%s", message)
        if not ok:
            exit_code = 3
    if bus_result is not None:
        bus_tolerance = (
            args.bus_tolerance if args.bus_tolerance is not None
            else bench.BUS_OVERHEAD_TOLERANCE
        )
        ok, message = bench.check_bus_overhead(bus_result, tolerance=bus_tolerance)
        (logger.info if ok else logger.error)("%s", message)
        if not ok:
            exit_code = 3
    if fidelity_result is not None:
        min_speedup = (
            args.fidelity_min_speedup if args.fidelity_min_speedup is not None
            else bench.FIDELITY_MIN_SPEEDUP
        )
        ok, message = bench.check_fidelity(fidelity_result, min_speedup=min_speedup)
        (logger.info if ok else logger.error)("%s", message)
        if not ok:
            exit_code = 3
    if args.check:
        baseline_path = _Path(args.baseline) if args.baseline else None
        baseline = bench.load_baseline(baseline_path)
        tolerance = (
            args.tolerance if args.tolerance is not None else bench.DEFAULT_TOLERANCE
        )
        ok, message = bench.check_result(result, baseline, tolerance=tolerance)
        (logger.info if ok else logger.error)("%s", message)
        if not ok:
            exit_code = 3
    return exit_code


def _bench_trend(args) -> int:
    from pathlib import Path as _Path

    from repro.orchestrator.ledger import RunLedger, detect_regression, format_trend

    ledger = RunLedger(
        history_path=_Path(args.history) if args.history else None
    )
    values = ledger.bench_series(kind=args.kind, metric=args.metric)
    result = detect_regression(
        values, window=args.window, threshold=args.threshold
    )
    result["kind"] = args.kind
    result["metric"] = args.metric
    if args.json:
        json.dump(result, sys.stdout, indent=2)
        print()
    else:
        print(format_trend(result, args.kind, args.metric))
    return 3 if result["regressed"] else 0


# ---------------------------------------------------------------------- #
# Obs subcommands (cross-run)
# ---------------------------------------------------------------------- #


def _obs_diff(args) -> int:
    from repro.obs.diff import diff_metrics, format_diff, load_metrics_export

    export_a = load_metrics_export(args.run_a)
    export_b = load_metrics_export(args.run_b)
    diff = diff_metrics(export_a, export_b)
    if args.json:
        json.dump(diff, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(f"metrics diff: a={args.run_a} b={args.run_b}")
        print(format_diff(diff, top=args.top))
    return 0


def _obs_runs(args) -> int:
    from repro.orchestrator.ledger import RunLedger
    from repro.telemetry.report import render_table

    rows = RunLedger(results_root=Path(args.root)).campaign_runs()
    if args.json:
        json.dump({"runs": rows}, sys.stdout, indent=2)
        print()
    elif not rows:
        print(f"no campaign stores under {args.root}/")
    else:
        print(render_table(rows))
    return 0


# ---------------------------------------------------------------------- #
# Observe subcommands
# ---------------------------------------------------------------------- #


def _observe_spec(args, metrics: bool, trace: bool, profile: bool):
    from repro.obs.config import ObserveSpec

    overrides = {"metrics": metrics, "trace": trace, "profile": profile}
    if args.sample_every is not None:
        overrides["trace_sample_every"] = args.sample_every
    if args.interval_us is not None:
        overrides["sample_interval_us"] = args.interval_us
    return ObserveSpec(**overrides)


def _observe_execute(args, spec) -> list:
    """Run the requested scenario under *spec*; return the observations."""
    import dataclasses

    from repro.experiments.runner import DeploymentKind, ExperimentRunner
    from repro.obs.session import ObservationSink, observation_sink
    from repro.orchestrator.spec import RunSpec, build_scenario

    run = RunSpec(
        scenario=args.scenario,
        params=_parse_params(args.param),
        time_scale=args.time_scale,
    )
    scenario = build_scenario(run)
    replacements: Dict[str, object] = {"observe": spec}
    if args.faults is not None:
        replacements["faults"] = args.faults
    if args.seed is not None:
        replacements["seed"] = args.seed
    scenario = dataclasses.replace(scenario, **replacements)
    runner = ExperimentRunner(time_scale=args.time_scale)
    sink = ObservationSink()
    logger.info(
        "observing %s (deployment=%s, faults=%s, seed=%d)",
        args.scenario, args.deployment, args.faults, scenario.seed,
    )
    with observation_sink(sink):
        if args.deployment == "both":
            runner.compare(scenario)
        else:
            runner.run_deployment(scenario, DeploymentKind(args.deployment))
    return sink.observations


def _observe_run(args) -> int:
    spec = _observe_spec(args, metrics=True, trace=True, profile=True)
    observations = _observe_execute(args, spec)
    written = _export_observations(observations, Path(args.out))
    if args.json:
        json.dump(
            {
                "scenario": args.scenario,
                "observations": [obs.summary() for obs in observations],
                "files": [str(path) for path in written],
            },
            sys.stdout,
            indent=2,
        )
        print()
    else:
        for observation in observations:
            summary = observation.summary()
            profile = summary.get("profile") or {}
            print(
                f"{observation.deployment}: "
                f"{summary['metrics']['samples_taken']} metric sample(s), "
                f"trace {summary['trace']['summary_line']}, "
                f"top stage {profile.get('top_stage', 'n/a')}"
            )
        for path in written:
            print(f"wrote {path}")
    return 0


def _emit_text(text: str, out: Optional[str]) -> None:
    if out is None:
        sys.stdout.write(text)
        if not text.endswith("\n"):
            sys.stdout.write("\n")
    else:
        Path(out).parent.mkdir(parents=True, exist_ok=True)
        Path(out).write_text(text, encoding="utf-8")
        logger.info("wrote %s", out)


def _observe_metrics(args) -> int:
    from repro.obs.schema import validate_metrics

    observations = _observe_execute(
        args, _observe_spec(args, metrics=True, trace=False, profile=False)
    )
    exports = [obs.metrics for obs in observations if obs.metrics is not None]
    for export in exports:
        validate_metrics(export)
    payload = exports[0] if len(exports) == 1 else exports
    _emit_text(json.dumps(payload, indent=2, sort_keys=True), args.out)
    return 0


def _observe_trace(args) -> int:
    from repro.obs.schema import validate_chrome_trace, validate_trace_jsonl

    observations = _observe_execute(
        args, _observe_spec(args, metrics=False, trace=True, profile=False)
    )
    chunks = []
    for observation in observations:
        if args.format == "chrome":
            validate_chrome_trace(observation.chrome_trace)
            chunks.append(json.dumps(observation.chrome_trace, sort_keys=True))
        else:
            validate_trace_jsonl(observation.trace_jsonl)
            chunks.append(observation.trace_jsonl.rstrip("\n"))
    _emit_text("\n".join(chunks) + "\n", args.out)
    return 0


def _observe_profile(args) -> int:
    from repro.obs.export import format_profile
    from repro.obs.schema import validate_profile

    observations = _observe_execute(
        args, _observe_spec(args, metrics=False, trace=False, profile=True)
    )
    reports = [obs.profile for obs in observations if obs.profile is not None]
    for report in reports:
        validate_profile(report)
    if args.out is not None:
        payload = reports[0] if len(reports) == 1 else reports
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        logger.info("wrote %s", args.out)
    if args.json:
        payload = reports[0] if len(reports) == 1 else reports
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        for observation, report in zip(observations, reports):
            print(f"[{observation.deployment}]")
            print(format_profile(report))
    return 0


# ---------------------------------------------------------------------- #
# Campaign subcommands
# ---------------------------------------------------------------------- #


def _load_campaign(args):
    from repro.orchestrator import CampaignSpec, ResultStore, default_store_path

    campaign = CampaignSpec.from_file(args.spec)
    if getattr(args, "time_scale", None) is not None:
        campaign = campaign.with_time_scale(args.time_scale)
    store_path = Path(args.store) if args.store else default_store_path(campaign.name)
    return campaign, ResultStore(store_path, shards=getattr(args, "shards", None))


def _campaign_run(args) -> int:
    from repro.orchestrator import CampaignExecutor, TelemetryBus, events_path_for

    campaign, store = _load_campaign(args)
    workers = 1 if args.serial else args.workers

    def progress(record):
        status = record["status"]
        point = ", ".join(f"{k}={v}" for k, v in sorted(record["params"].items()))
        line = f"[{status}] {record['scenario']}({point}) {record['wall_time_s']:.2f}s"
        if status != "ok":
            line += f" — {record.get('error', 'unknown error')}"
        logger.info("%s", line)

    bus = None
    if not args.no_bus:
        # Bus on by default: workers stream telemetry into the events
        # sidecar so a separate `repro campaign serve` can attach live.
        events_path = events_path_for(store.path)
        bus = TelemetryBus(
            events_path=events_path, heartbeat_interval_s=args.heartbeat
        ).start()
        logger.info("telemetry bus -> %s", events_path)
    log_level = "debug" if args.verbose else args.log_level
    try:
        executor = CampaignExecutor(
            workers=workers,
            progress=None if args.json else progress,
            bus=bus,
            log_level=log_level,
            heartbeat_interval_s=args.heartbeat,
            cell_timeout_s=args.cell_timeout,
            max_attempts=args.max_attempts,
            retry_backoff_s=args.retry_backoff,
        )
        summary = executor.run_campaign(
            campaign, store=store, resume=not args.no_resume
        )
    finally:
        if bus is not None:
            bus.stop()
    if args.json:
        json.dump(summary.as_row(), sys.stdout, indent=2)
        print()
    else:
        failed = f"{summary.failed} failed"
        if summary.exhausted:
            failed += f", {summary.exhausted} exhausted"
        print(
            f"campaign {campaign.name!r}: {summary.total} points, "
            f"{summary.executed} executed ({failed}), "
            f"{summary.skipped} skipped, {summary.wall_time_s:.2f}s "
            f"-> {store.path}"
        )
    return 1 if summary.failed else 0


def _campaign_serve(args) -> int:
    import time as _time

    from repro.orchestrator import StoreFollower, events_path_for, monitor_from_store
    from repro.orchestrator.serve import CampaignServer

    campaign, store = _load_campaign(args)
    events_path = events_path_for(store.path)
    monitor = monitor_from_store(
        campaign, store, events_path if args.no_follow else None
    )
    follower = None
    if not args.no_follow:
        # Live mode: the monitor starts from the store snapshot and the
        # follower keeps folding in whatever a concurrently running
        # `repro campaign run` appends (events sidecar first, so
        # violations surface before the record lands).
        follower = StoreFollower(
            monitor, store.path, events_path, poll_interval_s=args.poll_interval
        )
        follower.poll_once()
        follower.start()
    server = CampaignServer(monitor, host=args.host, port=args.port)
    server.start()
    print(f"serving campaign {campaign.name!r} on {server.url}")
    print("  endpoints: /status /cells /violations /events /metrics")
    print(f"  store: {store.path}" + ("" if args.no_follow else " (following)"))
    try:
        if args.max_seconds is not None:
            _time.sleep(args.max_seconds)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        logger.info("interrupted; shutting down")
    finally:
        server.stop()
        if follower is not None:
            follower.stop()
    return 0


def _campaign_status(args) -> int:
    campaign, store = _load_campaign(args)
    specs = campaign.expand()
    latest = store.latest_by_hash()  # ok-wins: agrees with `campaign report`
    completed = store.completed_hashes()  # mirrors the executor's resume set
    done = sum(1 for spec in specs if spec.spec_hash in completed)
    exhausted = sum(
        1
        for spec in specs
        if latest.get(spec.spec_hash, {}).get("status") == "exhausted"
    )
    # Only count points whose attempts all failed; errors superseded by a
    # successful retry are history, not outstanding failures.
    failing = sum(
        1
        for spec in specs
        if spec.spec_hash in latest
        and spec.spec_hash not in completed
        and latest[spec.spec_hash].get("status") != "exhausted"
    )
    print(f"campaign:  {campaign.name} ({campaign.scenario}, mode={campaign.mode})")
    print(f"store:     {store.path}")
    if store.shards > 1:
        print(f"shards:    {store.shards}")
    print(f"points:    {len(specs)}")
    print(f"completed: {done}")
    print(f"pending:   {len(specs) - done - exhausted}")
    print(f"failing:   {failing} (latest attempt errored; retried on resume)")
    print(f"exhausted: {exhausted} (retry budget spent; re-run with --no-resume)")
    return 0


def _campaign_report(args) -> int:
    from repro.orchestrator.aggregate import campaign_rows
    from repro.telemetry.report import render_table

    campaign, store = _load_campaign(args)
    columns = None
    if args.columns:
        columns = [name.strip() for name in args.columns.split(",") if name.strip()]
    rows = campaign_rows(campaign, store.load(), metric_columns=columns)
    if args.json:
        json.dump({"campaign": campaign.name, "rows": rows}, sys.stdout, indent=2)
        print()
    elif not rows:
        print(f"no completed records for campaign {campaign.name!r} in {store.path}")
    else:
        print(render_table(rows))
    return 0


# ---------------------------------------------------------------------- #
# Validate subcommands
# ---------------------------------------------------------------------- #


def _parse_relations(text: str):
    from repro.validation import build_relations

    names = [name.strip() for name in (text or "").split(",") if name.strip()]
    return build_relations(names)


def _parse_params(pairs):
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"parameter {pair!r} is not KEY=VALUE")
        key, _, raw = pair.partition("=")
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        params[key.strip()] = value
    return params


def _print_violations(violations) -> None:
    for violation in violations:
        logger.warning("VIOLATION %s", violation)


def _validate_run(args) -> int:
    from repro.orchestrator.spec import RunSpec
    from repro.validation import (
        check_run,
        load_entry,
        run_spec_from_entry,
        validate_entry_names,
    )
    from repro.validation.corpus import entry_relation_names

    if args.descriptor is not None:
        entry = load_entry(args.descriptor)
        validate_entry_names(entry, source=args.descriptor)
        run = run_spec_from_entry(entry)
        if args.time_scale != 1.0:
            run = RunSpec(scenario=run.scenario, mode=run.mode,
                          params=dict(run.params), time_scale=args.time_scale)
        # Triage default: re-run the relations that originally fired, so
        # a determinism/time-scale repro reproduces here, not just in
        # `validate replay`.
        if args.relations is None:
            relations = _parse_relations(",".join(entry_relation_names(entry)))
        else:
            relations = _parse_relations(args.relations)
    else:
        relations = _parse_relations(
            args.relations if args.relations is not None else "fast_slow"
        )
        run = RunSpec(
            scenario=args.scenario,
            params=_parse_params(args.param),
            time_scale=args.time_scale,
        )
    violations = check_run(run, relations)
    if args.json:
        json.dump(
            {
                "scenario": run.scenario,
                "params": dict(run.params),
                "ok": not violations,
                "violations": [violation.as_dict() for violation in violations],
            },
            sys.stdout,
            indent=2,
        )
        print()
    else:
        point = ", ".join(f"{k}={v}" for k, v in sorted(run.params.items()))
        print(f"validate {run.scenario}({point})")
        print(f"relations: {[relation.name for relation in relations]}")
        if violations:
            _print_violations(violations)
        print(f"result: {'FAIL' if violations else 'ok'} "
              f"({len(violations)} violation(s))")
    return 4 if violations else 0


def _validate_fuzz(args) -> int:
    from repro.validation import DEFAULT_CORPUS_DIR, fuzz, parse_budget

    budget_s = parse_budget(args.budget) if args.budget else None
    corpus_dir = None if args.no_corpus else (args.corpus or DEFAULT_CORPUS_DIR)
    relation_names = [
        name.strip() for name in (args.relations or "").split(",") if name.strip()
    ]

    def progress(index, run, violations):
        point = ", ".join(f"{k}={v}" for k, v in sorted(run.params.items()))
        status = f"FAIL({len(violations)})" if violations else "ok"
        logger.info("[%s] #%d %s(%s)", status, index, run.scenario, point)

    result = fuzz(
        seed=args.seed,
        max_scenarios=args.scenarios,
        budget_s=budget_s,
        corpus_dir=str(corpus_dir) if corpus_dir is not None else None,
        relation_names=relation_names,
        progress=None if args.json else progress,
        shrink_failures=not args.no_shrink,
    )
    if args.json:
        json.dump(result.as_dict(), sys.stdout, indent=2)
        print()
    else:
        print(
            f"fuzz seed={result.seed}: {result.scenarios_checked} scenarios, "
            f"{len(result.failures)} failure(s), {result.wall_time_s:.1f}s"
        )
        for failure in result.failures:
            print(
                f"  shrunk {failure.original_size:.1f} -> {failure.shrunk_size:.1f}: "
                f"{failure.shrunk.scenario}({dict(failure.shrunk.params)})"
            )
            _print_violations(failure.violations[:3])
        for path in result.corpus_paths:
            print(f"  wrote {path}")
    return 4 if result.failures else 0


def _validate_replay(args) -> int:
    from repro.validation import replay_corpus

    summary = replay_corpus(args.corpus)
    if args.json:
        json.dump(summary, sys.stdout, indent=2)
        print()
    else:
        print(f"replayed {summary['entries']} corpus entr(ies); "
              f"{summary['failing']} still failing")
        for entry in summary["results"]:
            status = "ok" if entry["ok"] else "FAIL"
            print(f"  [{status}] {entry['path']}")
    return 4 if summary["failing"] else 0


# ---------------------------------------------------------------------- #
# Faults subcommands
# ---------------------------------------------------------------------- #


def _faults_list(args) -> int:
    from repro.faults import fault_profile_names, get_fault_profile

    names = fault_profile_names()
    if args.names:
        for name in names:
            print(name)
        return 0
    width = max(len(name) for name in names)
    for name in names:
        print(f"{name.ljust(width)}  {get_fault_profile(name).description}")
    return 0


def _faults_describe(args) -> int:
    from repro.faults import get_fault_profile

    info = get_fault_profile(args.name).describe()
    width = max(len(key) for key in info)
    for key, value in info.items():
        print(f"{key.ljust(width)}  {value}")
    return 0


def _faults_preview(args) -> int:
    from repro.experiments.runner import current_default_seed
    from repro.faults import get_fault_profile
    from repro.telemetry.report import render_table

    if args.horizon_us <= 0:
        raise ValueError("--horizon-us must be positive")
    seed = args.seed if args.seed is not None else current_default_seed()
    schedule = get_fault_profile(args.name)
    events = schedule.materialize(seed, int(args.horizon_us * 1_000))
    rows = [event.as_row() for event in events]
    if args.json:
        json.dump(
            {"profile": schedule.name, "seed": seed,
             "horizon_us": args.horizon_us, "events": rows},
            sys.stdout,
            indent=2,
        )
        print()
    elif not rows:
        print(f"profile {schedule.name!r}: no events inside {args.horizon_us:g} us")
    else:
        columns = ["at_us", "kind"]
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        print(render_table(rows, columns=columns))
        print(f"{len(rows)} event(s) over {args.horizon_us:g} us (seed {seed})")
    return 0


# ---------------------------------------------------------------------- #
# Workload subcommands
# ---------------------------------------------------------------------- #


def _resolve_workload(args):
    """The spec named on the command line (or an ad-hoc PCAP replay)."""
    from repro.workloads import PcapReplayWorkload, get_workload

    if getattr(args, "pcap", None):
        if args.name != "pcap-replay":
            raise ValueError("--pcap is only valid with the 'pcap-replay' workload")
        return PcapReplayWorkload.from_file(args.pcap)
    return get_workload(args.name)


def _workload_list(args) -> int:
    from repro.workloads import get_workload, workload_names

    names = workload_names()
    if args.names:
        for name in names:
            print(name)
        return 0
    width = max(len(name) for name in names)
    for name in names:
        spec = get_workload(name)
        print(f"{name.ljust(width)}  [{spec.kind}] {spec.description}")
    return 0


def _workload_describe(args) -> int:
    info = _resolve_workload(args).describe()
    width = max(len(key) for key in info)
    for key, value in info.items():
        print(f"{key.ljust(width)}  {value}")
    return 0


def _workload_preview(args) -> int:
    from repro.experiments.runner import current_default_seed
    from repro.telemetry.report import render_table
    from repro.workloads import summarize

    if args.packets <= 0:
        raise ValueError("--packets must be positive")
    if args.rate is not None and args.rate <= 0:
        raise ValueError("--rate must be positive")
    spec = _resolve_workload(args)
    seed = args.seed if args.seed is not None else current_default_seed()
    trace = spec.trace(seed, args.packets, rate_gbps=args.rate)
    summary = summarize(trace)
    # Closed-loop workloads also expose their modeled transport state
    # (windows, RTO floor, epoch rounds) alongside the packet summary.
    transport = None
    if hasattr(spec, "transport_preview"):
        transport = spec.transport_preview(seed, args.packets)
    if args.json:
        payload = {"workload": spec.name, "seed": seed, "summary": summary.as_row()}
        if transport is not None:
            payload["transport"] = transport
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        print(render_table([{"workload": spec.name, "seed": seed, **summary.as_row()}]))
        if transport is not None:
            print("closed-loop transport (idealized preview):")
            width = max(len(key) for key in transport)
            for key, value in transport.items():
                print(f"  {key.ljust(width)}  {value}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging("debug" if args.verbose else args.log_level)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            description, _runner = EXPERIMENTS[name]
            print(f"{name.ljust(width)}  {description}")
        return 0

    if args.command == "run":
        observe = None
        if args.metrics or args.trace or args.profile:
            from repro.obs.config import ObserveSpec

            observe = ObserveSpec(
                metrics=args.metrics, trace=args.trace, profile=args.profile
            )
        try:
            return _run_experiment(
                args.experiment,
                args.json,
                args.seed,
                slow_path=args.slow_path,
                time_scale=args.time_scale,
                faults=args.faults,
                fidelity=args.fidelity,
                observe=observe,
                obs_dir=args.obs_dir,
            )
        except ValueError as exc:
            logger.error("error: %s", exc)
            return 2

    if args.command == "quickstart":
        from repro.experiments.quickstart import run_quickstart
        from repro.telemetry.report import render_table

        report = run_quickstart(send_rate_gbps=args.rate)
        print(render_table([report.baseline.as_row(), report.payloadpark.as_row()]))
        print(f"goodput gain: {report.goodput_gain_percent:+.2f}%  "
              f"PCIe savings: {report.pcie_savings_percent:+.2f}%")
        return 0

    if args.command == "bench":
        try:
            if getattr(args, "bench_command", None) == "trend":
                return _bench_trend(args)
            return _bench(args)
        except (ValueError, RuntimeError, OSError) as exc:
            logger.error("error: %s", exc)
            return 2

    if args.command == "campaign":
        handlers = {
            "run": _campaign_run,
            "status": _campaign_status,
            "report": _campaign_report,
            "serve": _campaign_serve,
        }
        handler = handlers.get(args.campaign_command)
        if handler is None:
            parser.print_help()
            return 1
        try:
            return handler(args)
        except (ValueError, RuntimeError, OSError) as exc:
            logger.error("error: %s", exc)
            return 2

    if args.command == "obs":
        handlers = {
            "diff": _obs_diff,
            "runs": _obs_runs,
        }
        handler = handlers.get(args.obs_command)
        if handler is None:
            parser.print_help()
            return 1
        try:
            return handler(args)
        except (ValueError, RuntimeError, OSError) as exc:
            logger.error("error: %s", exc)
            return 2

    if args.command == "validate":
        handlers = {
            "run": _validate_run,
            "fuzz": _validate_fuzz,
            "replay": _validate_replay,
        }
        handler = handlers.get(args.validate_command)
        if handler is None:
            parser.print_help()
            return 1
        try:
            return handler(args)
        except (ValueError, RuntimeError, OSError) as exc:
            logger.error("error: %s", exc)
            return 2

    if args.command == "faults":
        handlers = {
            "list": _faults_list,
            "describe": _faults_describe,
            "preview": _faults_preview,
        }
        handler = handlers.get(args.faults_command)
        if handler is None:
            parser.print_help()
            return 1
        try:
            return handler(args)
        except (ValueError, RuntimeError, OSError) as exc:
            logger.error("error: %s", exc)
            return 2

    if args.command == "observe":
        handlers = {
            "run": _observe_run,
            "metrics": _observe_metrics,
            "trace": _observe_trace,
            "profile": _observe_profile,
        }
        handler = handlers.get(args.observe_command)
        if handler is None:
            parser.print_help()
            return 1
        try:
            return handler(args)
        except (KeyError, ValueError, RuntimeError, OSError) as exc:
            logger.error("error: %s", exc)
            return 2

    if args.command == "workload":
        handlers = {
            "list": _workload_list,
            "describe": _workload_describe,
            "preview": _workload_preview,
        }
        handler = handlers.get(args.workload_command)
        if handler is None:
            parser.print_help()
            return 1
        try:
            return handler(args)
        except (ValueError, RuntimeError, OSError) as exc:
            logger.error("error: %s", exc)
            return 2

    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
