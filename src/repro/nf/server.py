"""The NF server cost model.

The paper's NF server is a many-core Xeon running OpenNetVM or NetBricks
with a DPDK NIC.  For the simulation, what matters is (a) the per-packet
service time of the slowest stage of the framework pipeline (which sets
the compute-bound packets-per-second ceiling of §6.2.2/§6.3.3), (b) the
end-to-end processing latency through the chain, and (c) how many
packets can be buffered inside the server before its NIC starts
dropping.  :class:`NfServerModel` derives those three quantities from an
:class:`~repro.nf.chain.NfChain` and an
:class:`~repro.nf.framework.NfFramework` profile; the discrete-event
host in :mod:`repro.netsim.server_node` consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.nf.base import NfResult
from repro.nf.chain import NfChain
from repro.nf.framework import OPENNETVM, NfFramework
from repro.packet.packet import Packet


@dataclass
class NfServerConfig:
    """Static parameters of one NF server.

    Attributes
    ----------
    cpu_ghz:
        Core clock used to convert cycles to time (2.3 GHz Xeon E7-4870
        v2 in the paper's NF server).
    framework:
        NF framework profile (OpenNetVM / NetBricks).
    rx_ring_entries:
        NIC receive descriptor ring depth.
    per_hop_latency_ns:
        Fixed pipeline latency added per framework hop (polling and
        batching delay between rings); containers cost more than
        function calls.
    explicit_drop:
        When True (and the framework supports it) the server sends
        Explicit Drop notifications for packets its chain drops.
    service_jitter:
        Coefficient of variation applied to per-packet service times by
        the discrete-event host (models cache misses, batching and
        scheduling noise).
    nf_instances:
        How many cores each NF of the chain is scaled across (OpenNetVM
        and NetBricks both support running multiple instances of an NF;
        the paper's 60-core server has cores to spare).  The RX and TX
        threads are not scaled.
    """

    cpu_ghz: float = 2.3
    framework: NfFramework = field(default_factory=lambda: OPENNETVM)
    rx_ring_entries: int = 1024
    per_hop_latency_ns: int = 2_000
    explicit_drop: bool = False
    service_jitter: float = 0.3
    nf_instances: int = 2


class NfServerModel:
    """Derives timing and capacity figures for one NF server + chain."""

    def __init__(self, chain: NfChain, config: Optional[NfServerConfig] = None,
                 name: str = "nf-server") -> None:
        self.chain = chain
        self.config = config or NfServerConfig()
        self.name = name
        if self.config.explicit_drop and not self.config.framework.supports_explicit_drop:
            self.config.framework = self.config.framework.with_explicit_drop()

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #

    def stage_service_times_ns(self) -> List[float]:
        """Per-packet service time of each pipeline stage, in nanoseconds.

        The pipeline is: RX thread, one stage per NF (each including the
        framework's per-hop overhead), TX thread.  In OpenNetVM each of
        these runs on its own core, so the *throughput* of the chain is
        set by the slowest stage while every stage adds to latency.
        """
        ghz = self.config.cpu_ghz
        framework = self.config.framework
        instances = max(1, self.config.nf_instances)
        stages = [framework.rx_cycles / ghz]
        for nf_cycles in self.chain.stage_cycle_estimates():
            stages.append((nf_cycles + framework.per_nf_overhead_cycles) / ghz / instances)
        stages.append(framework.tx_cycles / ghz)
        return stages

    def bottleneck_service_ns(self) -> float:
        """Service time of the slowest pipeline stage (sets max pps)."""
        return max(self.stage_service_times_ns())

    def max_throughput_pps(self) -> float:
        """Compute-bound packet rate of the server."""
        return 1e9 / self.bottleneck_service_ns()

    def pipeline_latency_ns(self) -> float:
        """Zero-queueing latency through the whole framework pipeline."""
        stage_time = sum(self.stage_service_times_ns())
        hops = len(self.chain) + 1  # NIC→NF rings plus NF→TX ring
        return stage_time + hops * self.config.per_hop_latency_ns

    def buffer_capacity_packets(self) -> int:
        """Packets that can queue inside the server before the NIC drops."""
        framework = self.config.framework
        return self.config.rx_ring_entries + framework.ring_entries * len(self.chain)

    # ------------------------------------------------------------------ #
    # Datapath
    # ------------------------------------------------------------------ #

    def process_packet(self, packet: Packet) -> NfResult:
        """Run the packet through the NF chain (header rewrites, drops)."""
        return self.chain.process(packet)

    @property
    def wants_explicit_drop(self) -> bool:
        """True when dropped packets should produce Explicit Drop notifications."""
        return self.config.explicit_drop and self.config.framework.supports_explicit_drop

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NfServerModel(name={self.name!r}, chain={self.chain.name!r}, "
            f"framework={self.config.framework.name!r})"
        )
