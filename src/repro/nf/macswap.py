"""A MAC-address swapper.

The paper uses a single MAC-swapping NF for the functional-equivalence
experiment (§6.2.6) and, with an added busy loop, as the base for the
synthetic NF-Light/Medium/Heavy functions (§6.3.3): it bounces each
packet straight back toward its sender by exchanging the Ethernet
source and destination addresses.
"""

from __future__ import annotations

from typing import Optional

from repro.nf.base import NetworkFunction, NfResult
from repro.packet.packet import Packet


class MacSwapper(NetworkFunction):
    """Swap Ethernet source and destination addresses."""

    def __init__(self, swap_cycles: int = 20, name: Optional[str] = None) -> None:
        super().__init__(name=name or "MacSwap")
        self.swap_cycles = swap_cycles

    def process(self, packet: Packet) -> NfResult:
        """Swap the MAC addresses and forward."""
        packet.eth.swap_addresses()
        return self.forward(self.base_cycles + self.swap_cycles)
