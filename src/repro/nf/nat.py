"""A MazuNAT-style source NAT.

Outbound flows (identified by their 5-tuple) are rewritten to an
external address and a dynamically allocated external port; the binding
is remembered so reverse traffic can be translated back.  Only headers
are touched — the payload is never read — which is what makes a NAT a
shallow NF that PayloadPark can serve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.nf.base import NetworkFunction, NfResult
from repro.packet.flows import FiveTuple
from repro.packet.ipv4 import IPv4Address
from repro.packet.packet import Packet


@dataclass(frozen=True)
class NatBinding:
    """One NAT translation: the original flow and its external rewrite."""

    internal: FiveTuple
    external_ip: IPv4Address
    external_port: int


class NatPortExhausted(RuntimeError):
    """No free external ports remain for new flows."""


class Nat(NetworkFunction):
    """Source NAT with a hash-table flow lookup (MazuNAT-like behaviour).

    Parameters
    ----------
    external_ip:
        Address that replaces the source address of outbound packets.
    port_range:
        Inclusive range of external ports available for allocation.
    lookup_cycles / rewrite_cycles:
        CPU cost of the flow-table lookup and of the header rewrite
        (including checksum adjustment).
    """

    def __init__(
        self,
        external_ip: str = "203.0.113.1",
        port_range: tuple = (20_000, 60_000),
        lookup_cycles: int = 80,
        rewrite_cycles: int = 60,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name or "NAT")
        self.external_ip = IPv4Address.from_string(external_ip)
        self.port_low, self.port_high = port_range
        if self.port_low >= self.port_high:
            raise ValueError("port_range must be an increasing (low, high) pair")
        self.lookup_cycles = lookup_cycles
        self.rewrite_cycles = rewrite_cycles
        self._bindings: Dict[FiveTuple, NatBinding] = {}
        self._reverse: Dict[int, NatBinding] = {}
        self._next_port = self.port_low

    # ------------------------------------------------------------------ #
    # Binding management
    # ------------------------------------------------------------------ #

    def _allocate_port(self) -> int:
        if len(self._reverse) >= (self.port_high - self.port_low + 1):
            raise NatPortExhausted("all external NAT ports are in use")
        port = self._next_port
        while port in self._reverse:
            port = self.port_low + ((port + 1 - self.port_low) % (self.port_high - self.port_low + 1))
        self._next_port = self.port_low + ((port + 1 - self.port_low) % (self.port_high - self.port_low + 1))
        return port

    def binding_for(self, flow: FiveTuple) -> NatBinding:
        """Return (allocating if needed) the binding for an outbound flow."""
        binding = self._bindings.get(flow)
        if binding is None:
            binding = NatBinding(
                internal=flow,
                external_ip=self.external_ip,
                external_port=self._allocate_port(),
            )
            self._bindings[flow] = binding
            self._reverse[binding.external_port] = binding
        return binding

    @property
    def active_bindings(self) -> int:
        """Number of live translations."""
        return len(self._bindings)

    # ------------------------------------------------------------------ #
    # Datapath
    # ------------------------------------------------------------------ #

    def process(self, packet: Packet) -> NfResult:
        """Translate the packet's source address and port."""
        cycles = self.base_cycles + self.lookup_cycles
        flow = packet.five_tuple()
        if flow is None or packet.ip is None or packet.l4 is None:
            # Non-IP or headerless traffic passes through untranslated.
            return self.forward(cycles)
        if packet.ip.dst == self.external_ip:
            # Reverse direction: translate the destination back.
            binding = self._reverse.get(packet.l4.dst_port)
            if binding is None:
                return self.drop(cycles, reason="no NAT binding for reverse flow")
            packet.ip.dst = binding.internal.src_ip
            packet.l4.dst_port = binding.internal.src_port
            return self.forward(cycles + self.rewrite_cycles)
        binding = self.binding_for(flow)
        packet.ip.src = binding.external_ip
        packet.l4.src_port = binding.external_port
        return self.forward(cycles + self.rewrite_cycles)
