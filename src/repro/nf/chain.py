"""NF chains: ordered compositions of network functions.

The evaluation uses Firewall → NAT and Firewall → NAT → LB chains (plus
single NFs).  A chain processes a packet through each NF in order until
one drops it; the chain also exposes the per-stage cycle costs that the
server model needs for its pipelined-throughput calculation (in
OpenNetVM each NF runs on its own core and stages are connected by
rings, so chain throughput is set by the slowest stage while latency is
the sum of the stages).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.nf.base import NetworkFunction, NfResult, NfVerdict
from repro.packet.packet import Packet


class NfChain:
    """An ordered chain of network functions."""

    def __init__(self, nfs: Iterable[NetworkFunction], name: Optional[str] = None) -> None:
        self.nfs: List[NetworkFunction] = list(nfs)
        if not self.nfs:
            raise ValueError("an NF chain needs at least one NF")
        self.name = name or " -> ".join(nf.name for nf in self.nfs)
        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped = 0

    def __len__(self) -> int:
        return len(self.nfs)

    def __iter__(self):
        return iter(self.nfs)

    # ------------------------------------------------------------------ #
    # Datapath
    # ------------------------------------------------------------------ #

    def process(self, packet: Packet) -> NfResult:
        """Run *packet* through every NF until one drops it.

        Returns a combined :class:`NfResult` whose ``cycles`` is the sum
        of the cycles spent in each NF the packet visited.
        """
        self.packets_in += 1
        total_cycles = 0
        for nf in self.nfs:
            result = nf(packet)
            total_cycles += result.cycles
            if not result.forwarded:
                self.packets_dropped += 1
                return NfResult(
                    verdict=NfVerdict.DROP, cycles=total_cycles, reason=result.reason
                )
        self.packets_out += 1
        return NfResult(verdict=NfVerdict.FORWARD, cycles=total_cycles)

    # ------------------------------------------------------------------ #
    # Cost model helpers
    # ------------------------------------------------------------------ #

    def stage_cycle_estimates(self, sample_packet_cycles: Optional[List[int]] = None) -> List[int]:
        """Representative per-stage cycle costs, used by the server model.

        The estimate probes each NF's cost attributes without running a
        packet: it covers the firewall's rule count, the NAT's lookup and
        rewrite, the load balancer's hash, and synthetic NFs' fixed
        budget.  ``sample_packet_cycles`` overrides the estimate when an
        experiment has measured real values.
        """
        if sample_packet_cycles is not None:
            if len(sample_packet_cycles) != len(self.nfs):
                raise ValueError("sample_packet_cycles must have one entry per NF")
            return list(sample_packet_cycles)
        estimates = []
        for nf in self.nfs:
            estimate = getattr(nf, "cycles_per_packet", None)
            if estimate is not None:
                estimates.append(int(estimate))
                continue
            cycles = nf.base_cycles
            rules = getattr(nf, "rules", None)
            if rules is not None:
                cycles += len(rules) * getattr(nf, "cycles_per_rule", 0)
            for attribute in ("lookup_cycles", "rewrite_cycles", "hash_cycles", "swap_cycles"):
                cycles += getattr(nf, attribute, 0)
            estimates.append(cycles)
        return estimates

    def reset_counters(self) -> None:
        """Zero the chain and per-NF counters."""
        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped = 0
        for nf in self.nfs:
            nf.reset_counters()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NfChain(name={self.name!r}, nfs={len(self.nfs)})"
