"""A Maglev-style L4 load balancer.

Maglev (NSDI '16) builds a fixed-size lookup table from per-backend
preference lists so that (a) load spreads almost evenly and (b) most
flows keep their backend when the pool changes.  The paper's three-NF
chain ends in a Maglev-based load balancer; like the other shallow NFs
it only reads the 5-tuple and rewrites the destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.nf.base import NetworkFunction, NfResult
from repro.packet.flows import FiveTuple
from repro.packet.ipv4 import IPv4Address
from repro.packet.packet import Packet


@dataclass(frozen=True)
class Backend:
    """One backend server in the load-balanced pool."""

    name: str
    ip: IPv4Address

    @classmethod
    def from_string(cls, name: str, ip: str) -> "Backend":
        """Build a backend from a dotted-quad string."""
        return cls(name=name, ip=IPv4Address.from_string(ip))


def _is_prime(value: int) -> bool:
    if value < 2:
        return False
    factor = 2
    while factor * factor <= value:
        if value % factor == 0:
            return False
        factor += 1
    return True


def next_prime(value: int) -> int:
    """Smallest prime >= *value* (Maglev requires a prime table size)."""
    candidate = max(value, 2)
    while not _is_prime(candidate):
        candidate += 1
    return candidate


class MaglevLoadBalancer(NetworkFunction):
    """Consistent-hashing load balancer using Maglev's population algorithm.

    Parameters
    ----------
    backends:
        The backend pool.
    table_size:
        Lookup-table size; rounded up to the next prime.  Maglev uses
        65537 in production; the default here is smaller so unit tests
        stay fast while preserving the algorithm.
    hash_cycles / rewrite_cycles:
        CPU cost of hashing the 5-tuple and rewriting the destination.
    """

    def __init__(
        self,
        backends: Sequence[Backend],
        table_size: int = 251,
        hash_cycles: int = 120,
        rewrite_cycles: int = 60,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name or "MaglevLB")
        if not backends:
            raise ValueError("the load balancer needs at least one backend")
        self.backends: List[Backend] = list(backends)
        self.table_size = next_prime(table_size)
        self.hash_cycles = hash_cycles
        self.rewrite_cycles = rewrite_cycles
        self.lookup_table: List[int] = self._populate()
        self.assignments: Dict[str, int] = {backend.name: 0 for backend in self.backends}
        #: Fast-path memo: flow -> backend.  Maglev is deterministic per
        #: flow (that is its whole point), so the FNV walk over the
        #: 5-tuple can be skipped for flows already mapped.
        self._backend_cache: Optional[Dict[FiveTuple, Backend]] = None
        #: Cache efficiency counters (sampled by repro.obs as a hit-ratio
        #: gauge); plain int bumps, cheap enough to keep unconditional.
        self.cache_lookups = 0
        self.cache_hits = 0

    def enable_fast_path(self, enabled: bool = True) -> None:
        """Memoize the per-flow backend choice (behaviour-preserving)."""
        self._backend_cache = {} if enabled else None

    # ------------------------------------------------------------------ #
    # Backend churn (control plane)
    # ------------------------------------------------------------------ #

    def set_backends(self, backends: Sequence[Backend]) -> None:
        """Replace the backend pool and rebuild the Maglev table.

        Backend churn is the whole point of Maglev (most flows keep
        their backend when the pool changes), but every cached per-flow
        choice is stale the moment the table is repopulated, so the
        fast-path memo is dropped — keeping it would silently pin flows
        to removed backends.
        """
        if not backends:
            raise ValueError("the load balancer needs at least one backend")
        self.backends = list(backends)
        self.lookup_table = self._populate()
        for backend in self.backends:
            self.assignments.setdefault(backend.name, 0)
        if self._backend_cache is not None:
            self._backend_cache.clear()

    def add_backend(self, backend: Backend) -> None:
        """Add one backend to the pool (table rebuild + cache invalidation)."""
        if any(existing.name == backend.name for existing in self.backends):
            raise ValueError(f"backend {backend.name!r} already exists")
        self.set_backends(self.backends + [backend])

    def remove_backend(self, name: str) -> Backend:
        """Drain one backend out of the pool (table rebuild + cache invalidation)."""
        for index, backend in enumerate(self.backends):
            if backend.name == name:
                remaining = self.backends[:index] + self.backends[index + 1:]
                self.set_backends(remaining)
                return backend
        raise ValueError(f"no backend named {name!r}")

    # ------------------------------------------------------------------ #
    # Maglev table population
    # ------------------------------------------------------------------ #

    def _hash(self, data: str, seed: int) -> int:
        value = 0xCBF29CE484222325 ^ (seed * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF)
        for char in data:
            value ^= ord(char)
            value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return value

    def _populate(self) -> List[int]:
        """Build the lookup table from each backend's permutation."""
        size = self.table_size
        permutations = []
        for backend in self.backends:
            offset = self._hash(backend.name, seed=1) % size
            skip = self._hash(backend.name, seed=2) % (size - 1) + 1
            permutations.append([(offset + j * skip) % size for j in range(size)])
        table = [-1] * size
        next_index = [0] * len(self.backends)
        filled = 0
        while filled < size:
            for backend_index in range(len(self.backends)):
                if filled >= size:
                    break
                permutation = permutations[backend_index]
                cursor = next_index[backend_index]
                while cursor < size and table[permutation[cursor]] >= 0:
                    cursor += 1
                if cursor >= size:
                    next_index[backend_index] = cursor
                    continue
                table[permutation[cursor]] = backend_index
                next_index[backend_index] = cursor + 1
                filled += 1
        return table

    # ------------------------------------------------------------------ #
    # Datapath
    # ------------------------------------------------------------------ #

    def backend_for(self, flow: FiveTuple) -> Backend:
        """Return the backend consistently chosen for *flow*."""
        cache = self._backend_cache
        if cache is not None:
            self.cache_lookups += 1
            backend = cache.get(flow)
            if backend is None:
                backend = self.backends[
                    self.lookup_table[flow.stable_hash() % self.table_size]
                ]
                if len(cache) >= 65_536:
                    cache.clear()
                cache[flow] = backend
            else:
                self.cache_hits += 1
            return backend
        index = self.lookup_table[flow.stable_hash() % self.table_size]
        return self.backends[index]

    def process(self, packet: Packet) -> NfResult:
        """Rewrite the destination address to the chosen backend."""
        cycles = self.base_cycles + self.hash_cycles
        flow = packet.five_tuple()
        if flow is None or packet.ip is None:
            return self.forward(cycles)
        backend = self.backend_for(flow)
        packet.ip.dst = backend.ip
        self.assignments[backend.name] += 1
        return self.forward(cycles + self.rewrite_cycles)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def load_imbalance(self) -> float:
        """Max/mean ratio of table entries per backend (1.0 is perfect)."""
        counts = [0] * len(self.backends)
        for entry in self.lookup_table:
            counts[entry] += 1
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0

    @classmethod
    def with_backend_count(cls, count: int, table_size: int = 251,
                           name: Optional[str] = None) -> "MaglevLoadBalancer":
        """Build a pool of *count* synthetic backends (10.100.0.x)."""
        backends = [
            Backend.from_string(f"backend-{i}", f"10.100.0.{i + 1}") for i in range(count)
        ]
        return cls(backends=backends, table_size=table_size, name=name)
