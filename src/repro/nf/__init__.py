"""Network functions and the NF-framework model.

PayloadPark targets *shallow* NFs — functions that examine only packet
headers.  The paper evaluates firewalls (linear ACL probing), a MazuNAT-
style NAT, a Maglev-style L4 load balancer, a MAC-address swapper used
for functional-equivalence checks, and synthetic NFs of calibrated CPU
cost (NF-Light/Medium/Heavy).  NFs run inside an NF framework
(OpenNetVM or NetBricks in the paper); the framework model captures the
per-packet overhead and buffering that determine when the NF server
becomes compute bound.
"""

from repro.nf.base import NetworkFunction, NfResult, NfVerdict
from repro.nf.chain import NfChain
from repro.nf.firewall import Firewall, FirewallRule
from repro.nf.framework import NETBRICKS, OPENNETVM, NfFramework
from repro.nf.loadbalancer import Backend, MaglevLoadBalancer
from repro.nf.macswap import MacSwapper
from repro.nf.nat import Nat, NatBinding
from repro.nf.server import NfServerConfig, NfServerModel
from repro.nf.synthetic import NF_HEAVY_CYCLES, NF_LIGHT_CYCLES, NF_MEDIUM_CYCLES, SyntheticNf

__all__ = [
    "NetworkFunction",
    "NfResult",
    "NfVerdict",
    "NfChain",
    "Firewall",
    "FirewallRule",
    "Nat",
    "NatBinding",
    "MaglevLoadBalancer",
    "Backend",
    "MacSwapper",
    "SyntheticNf",
    "NF_LIGHT_CYCLES",
    "NF_MEDIUM_CYCLES",
    "NF_HEAVY_CYCLES",
    "NfFramework",
    "OPENNETVM",
    "NETBRICKS",
    "NfServerModel",
    "NfServerConfig",
]
