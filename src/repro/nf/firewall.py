"""A stateless firewall that linearly probes an access-control list.

The paper's firewall "linearly probes through a list of blacklisted IP
addresses" — the three-NF chain uses 20 rules, the two-NF chain a single
rule — so its per-packet cost grows with the rule count, which is what
makes the FW → NAT chain more compute-hungry than a lone NAT (§6.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.nf.base import NetworkFunction, NfResult
from repro.packet.ipv4 import IPv4Address
from repro.packet.packet import Packet


@dataclass(frozen=True)
class FirewallRule:
    """One ACL entry: drop packets whose source address falls in a prefix.

    Attributes
    ----------
    network / prefix_len:
        The blacklisted source prefix.
    dst_port:
        Optional destination-port qualifier (``None`` matches any port).
    """

    network: IPv4Address
    prefix_len: int = 32
    dst_port: Optional[int] = None

    def matches(self, packet: Packet) -> bool:
        """True when *packet* should be dropped by this rule."""
        if packet.ip is None:
            return False
        if not packet.ip.src.in_subnet(self.network, self.prefix_len):
            return False
        if self.dst_port is not None:
            if packet.l4 is None or packet.l4.dst_port != self.dst_port:
                return False
        return True

    @classmethod
    def blacklist(cls, cidr: str) -> "FirewallRule":
        """Build a rule from ``"a.b.c.d/len"`` (or a bare address)."""
        if "/" in cidr:
            address, prefix = cidr.split("/", 1)
            return cls(network=IPv4Address.from_string(address), prefix_len=int(prefix))
        return cls(network=IPv4Address.from_string(cidr), prefix_len=32)


class Firewall(NetworkFunction):
    """Linear-probe ACL firewall.

    Parameters
    ----------
    rules:
        Blacklist entries, probed in order; the first match drops the
        packet.
    cycles_per_rule:
        CPU cycles charged per probed rule (linear search).
    """

    def __init__(
        self,
        rules: Optional[Iterable[FirewallRule]] = None,
        cycles_per_rule: int = 6,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name or "Firewall")
        self.rules: List[FirewallRule] = list(rules or [])
        self.cycles_per_rule = cycles_per_rule
        #: Fast-path verdict memo keyed by the fields the ACL examines
        #: (source address, destination port); None = disabled.
        self._verdict_cache: Optional[dict] = None
        #: Fast-path pre-masked rule list: (mask, masked network, dst_port).
        self._compiled_rules: Optional[list] = None
        #: Cache efficiency counters (sampled by repro.obs as a hit-ratio
        #: gauge); plain int bumps, cheap enough to keep unconditional.
        self.cache_lookups = 0
        self.cache_hits = 0

    def add_rule(self, rule: FirewallRule) -> None:
        """Append an ACL entry (invalidates the fast-path structures)."""
        self.rules.append(rule)
        self._invalidate()

    def remove_rule(self, index: int) -> FirewallRule:
        """Remove and return the ACL entry at *index* (control plane).

        Like :meth:`add_rule`, drops the memoized verdicts and the
        pre-masked rule list: both the verdicts themselves and their
        cycle costs (probe counts) depend on the rule list.
        """
        rule = self.rules.pop(index)
        self._invalidate()
        return rule

    def _invalidate(self) -> None:
        if self._verdict_cache is not None:
            self._verdict_cache.clear()
        self._compiled_rules = None

    def enable_fast_path(self, enabled: bool = True) -> None:
        """Memoize verdicts per (src address, dst port).

        The ACL is stateless and rules only test the source prefix and
        optional destination port, so the verdict — including the probed
        rule count that sets the cycle cost — is a pure function of that
        pair.  Cold lookups probe a pre-masked rule list instead of
        calling :meth:`FirewallRule.matches` per rule.  ``add_rule``
        invalidates both structures.
        """
        self._verdict_cache = {} if enabled else None
        self._compiled_rules = None

    def process(self, packet: Packet) -> NfResult:
        """Probe the ACL; drop on the first match."""
        cache = self._verdict_cache
        if cache is not None:
            ip = packet.ip
            l4 = packet.l4
            key = (
                ip.src.value if ip is not None else None,
                l4.dst_port if l4 is not None else None,
            )
            self.cache_lookups += 1
            result = cache.get(key)
            if result is None:
                result = self._probe_compiled(key[0], key[1])
                if len(cache) >= 65_536:
                    cache.clear()
                cache[key] = result
            else:
                self.cache_hits += 1
            return result
        return self._probe(packet)

    def _probe(self, packet: Packet) -> NfResult:
        probed = 0
        for rule in self.rules:
            probed += 1
            if rule.matches(packet):
                cycles = self.base_cycles + probed * self.cycles_per_rule
                return self.drop(cycles, reason=f"blacklisted by rule {probed - 1}")
        cycles = self.base_cycles + probed * self.cycles_per_rule
        return self.forward(cycles)

    def _probe_compiled(self, src_value: Optional[int], dst_port: Optional[int]) -> NfResult:
        """Linear probe over pre-masked rules; same verdicts as :meth:`_probe`."""
        compiled = self._compiled_rules
        if compiled is None:
            compiled = self._compiled_rules = [
                (
                    (0xFFFFFFFF << (32 - rule.prefix_len)) & 0xFFFFFFFF
                    if rule.prefix_len
                    else 0,
                    rule.network.value
                    & (
                        (0xFFFFFFFF << (32 - rule.prefix_len)) & 0xFFFFFFFF
                        if rule.prefix_len
                        else 0
                    ),
                    rule.dst_port,
                )
                for rule in self.rules
            ]
        probed = 0
        for mask, network, port in compiled:
            probed += 1
            if (
                src_value is not None
                and (src_value & mask) == network
                and (port is None or port == dst_port)
            ):
                cycles = self.base_cycles + probed * self.cycles_per_rule
                return self.drop(cycles, reason=f"blacklisted by rule {probed - 1}")
        cycles = self.base_cycles + probed * self.cycles_per_rule
        return self.forward(cycles)

    @classmethod
    def with_rule_count(cls, rule_count: int, blacklist_subnet: str = "192.168.0.0/16",
                        name: Optional[str] = None) -> "Firewall":
        """Build a firewall with *rule_count* rules, only the last of which can hit.

        The evaluation varies the firewall's rule count to change its
        compute cost (20 rules for the three-NF chain, 1 for the two-NF
        chain); the rules point at an address range the traffic
        generator does not use unless an experiment deliberately directs
        a fraction of flows into it.
        """
        rules = [
            FirewallRule.blacklist(f"172.30.{i % 256}.0/24") for i in range(max(rule_count - 1, 0))
        ]
        rules.append(FirewallRule.blacklist(blacklist_subnet))
        return cls(rules=rules, name=name)
