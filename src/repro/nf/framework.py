"""NF framework profiles (OpenNetVM and NetBricks).

PayloadPark is transparent to the NF framework: the evaluation runs the
*unmodified* frameworks and only the optional Explicit-Drop optimization
(§6.2.4) adds ~50 lines to OpenNetVM.  What the simulation needs from a
framework is its per-packet overhead (RX/TX threads, inter-NF rings or
function calls, container crossings), its batching behaviour and its
ring sizes — these determine when the NF server becomes compute bound
and how much buffering (and therefore queueing latency) builds up ahead
of the NFs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NfFramework:
    """Cost/buffering profile of an NF framework.

    Attributes
    ----------
    name:
        Framework name used in reports.
    rx_cycles / tx_cycles:
        Per-packet cost of the framework's receive and transmit paths
        (mbuf allocation, descriptor handling).
    per_nf_overhead_cycles:
        Per-packet, per-NF-hop cost: ring enqueue/dequeue plus container
        crossing for OpenNetVM, a function call for NetBricks.
    batch_size:
        Packets pulled per poll; processing happens in bursts of this
        size, which adds burstiness to the service process.
    ring_entries:
        Depth of each inter-stage ring; together with the NIC RX ring
        this bounds how many packets can be queued inside the server.
    isolated_nfs:
        True when NFs run in separate containers/processes (OpenNetVM);
        False for the single-process model (NetBricks).
    supports_explicit_drop:
        Whether the (modified) framework can send Explicit Drop
        notifications back to the switch.
    """

    name: str
    rx_cycles: int = 90
    tx_cycles: int = 90
    per_nf_overhead_cycles: int = 150
    batch_size: int = 32
    ring_entries: int = 1024
    isolated_nfs: bool = True
    supports_explicit_drop: bool = False

    def chain_overhead_cycles(self, chain_length: int) -> int:
        """Framework cycles added to each packet for a chain of *chain_length* NFs."""
        if chain_length <= 0:
            raise ValueError("chain_length must be positive")
        return self.rx_cycles + self.tx_cycles + chain_length * self.per_nf_overhead_cycles

    def with_explicit_drop(self) -> "NfFramework":
        """The ~50-line modification of §6.2.4: enable Explicit Drop support."""
        return replace(self, supports_explicit_drop=True, name=f"{self.name}+ExplicitDrop")


#: OpenNetVM: DPDK + Docker containers, NFs connected by shared-memory rings.
OPENNETVM = NfFramework(
    name="OpenNetVM",
    rx_cycles=100,
    tx_cycles=100,
    per_nf_overhead_cycles=180,
    batch_size=32,
    ring_entries=1024,
    isolated_nfs=True,
)

#: NetBricks: Rust, no containers, NFs composed in a single process.
NETBRICKS = NfFramework(
    name="NetBricks",
    rx_cycles=80,
    tx_cycles=80,
    per_nf_overhead_cycles=60,
    batch_size=32,
    ring_entries=1024,
    isolated_nfs=False,
)
