"""Synthetic NFs of calibrated CPU cost (NF-Light / NF-Medium / NF-Heavy).

Section 6.3.3 studies how the NF's per-packet CPU cost determines
whether PayloadPark's extra packets-per-second help or hurt: the authors
take a MAC swapper and add a busy loop to reach roughly 50, 300 and 570
cycles per packet.  :class:`SyntheticNf` reproduces that knob.
"""

from __future__ import annotations

from typing import Optional

from repro.nf.base import NetworkFunction, NfResult
from repro.packet.packet import Packet

#: Average per-packet CPU cycles of the three synthetic NFs (§6.3.3).
NF_LIGHT_CYCLES = 50
NF_MEDIUM_CYCLES = 300
NF_HEAVY_CYCLES = 570


class SyntheticNf(NetworkFunction):
    """A MAC swapper padded with a busy loop to a target cycle count."""

    def __init__(self, cycles_per_packet: int, swap_macs: bool = True,
                 name: Optional[str] = None) -> None:
        if cycles_per_packet <= 0:
            raise ValueError("cycles_per_packet must be positive")
        super().__init__(name=name or f"SyntheticNf({cycles_per_packet})")
        self.cycles_per_packet = cycles_per_packet
        self.swap_macs = swap_macs

    def process(self, packet: Packet) -> NfResult:
        """Optionally swap MACs, then charge the configured cycle budget."""
        if self.swap_macs:
            packet.eth.swap_addresses()
        return self.forward(self.cycles_per_packet)

    @classmethod
    def light(cls) -> "SyntheticNf":
        """NF-Light: ≈ 50 cycles per packet."""
        return cls(NF_LIGHT_CYCLES, name="NF-Light")

    @classmethod
    def medium(cls) -> "SyntheticNf":
        """NF-Medium: ≈ 300 cycles per packet."""
        return cls(NF_MEDIUM_CYCLES, name="NF-Medium")

    @classmethod
    def heavy(cls) -> "SyntheticNf":
        """NF-Heavy: ≈ 570 cycles per packet."""
        return cls(NF_HEAVY_CYCLES, name="NF-Heavy")
