"""Base types shared by all network functions."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.packet.packet import Packet


class NfVerdict(enum.Enum):
    """What an NF decided to do with a packet."""

    FORWARD = "forward"
    DROP = "drop"


@dataclass
class NfResult:
    """Outcome of one NF processing one packet.

    Attributes
    ----------
    verdict:
        Forward or drop.
    cycles:
        CPU cycles the NF spent on this packet (drives the compute-bound
        analysis of §6.3.3).
    reason:
        Optional human-readable reason for a drop.
    """

    verdict: NfVerdict
    cycles: int
    reason: str = ""

    @property
    def forwarded(self) -> bool:
        """True when the packet continues down the chain."""
        return self.verdict is NfVerdict.FORWARD


class NetworkFunction:
    """Base class for shallow network functions.

    Subclasses implement :meth:`process`, which may rewrite the packet's
    headers in place (shallow NFs never touch the payload) and must
    return an :class:`NfResult` with the verdict and the CPU cycles
    consumed.  ``name`` is used in experiment reports.
    """

    #: Default per-packet cost charged on top of subclass-specific work.
    base_cycles: int = 30

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or type(self).__name__
        self.packets_seen = 0
        self.packets_dropped = 0

    def process(self, packet: Packet) -> NfResult:
        """Process one packet; must be overridden."""
        raise NotImplementedError

    def __call__(self, packet: Packet) -> NfResult:
        """Bookkeeping wrapper around :meth:`process`."""
        self.packets_seen += 1
        result = self.process(packet)
        if not result.forwarded:
            self.packets_dropped += 1
        return result

    def reset_counters(self) -> None:
        """Zero the per-NF counters."""
        self.packets_seen = 0
        self.packets_dropped = 0

    def enable_fast_path(self, enabled: bool = True) -> None:
        """Opt into behaviour-preserving per-NF caches (default: no-op).

        NFs whose per-packet decision is a pure function of the packet
        override this: the firewall memoizes verdicts, the Maglev LB
        memoizes its (deterministic-per-flow) backend choice.  NFs with
        per-packet state transitions (the NAT's binding allocation)
        keep the default no-op — their work cannot be skipped.
        """

    def forward(self, cycles: int) -> NfResult:
        """Helper: build a FORWARD result with *cycles* total cost."""
        return NfResult(verdict=NfVerdict.FORWARD, cycles=cycles)

    def drop(self, cycles: int, reason: str = "") -> NfResult:
        """Helper: build a DROP result with *cycles* total cost."""
        return NfResult(verdict=NfVerdict.DROP, cycles=cycles, reason=reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
