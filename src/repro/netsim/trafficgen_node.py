"""The traffic generator / sink as a simulation node.

One node plays both roles the PktGen server plays in the paper's
testbed: it offers load into the switch through (usually two) ports and
it receives the packets that come back after the NF chain, measuring
end-to-end latency, delivered goodput and drop rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.netsim.eventloop import EventLoop
from repro.netsim.node import Node
from repro.packet.packet import Packet
from repro.telemetry.latency import LatencyRecorder
from repro.traffic.pktgen import PacketFactory, PktGenConfig


class TrafficGenNode(Node):
    """A PktGen-style traffic source and measurement sink."""

    def __init__(
        self,
        env: EventLoop,
        config: PktGenConfig,
        tx_ports: Optional[List[int]] = None,
        name: str = "pktgen",
    ) -> None:
        super().__init__(env, name)
        self.config = config
        self.factory = PacketFactory(config)
        self.tx_ports = list(tx_ports) if tx_ports is not None else [0, 1]
        if not self.tx_ports:
            raise ValueError("the traffic generator needs at least one TX port")
        self._port_cursor = 0
        self._running = False
        self._stop_at_ns: Optional[int] = None
        self.latency = LatencyRecorder()
        # Counters.
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_received = 0
        self.useful_bytes_received = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def start(self, duration_ns: int) -> None:
        """Begin offering load now and stop after *duration_ns*."""
        if duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        self._running = True
        self._stop_at_ns = self.env.now + duration_ns
        self.env.schedule_in(0, self._emit_burst)

    def stop(self) -> None:
        """Stop offering load (already-queued frames still drain)."""
        self._running = False

    def _emit_burst(self) -> None:
        if not self._running:
            return
        if self._stop_at_ns is not None and self.env.now >= self._stop_at_ns:
            self._running = False
            return
        burst_bytes = 0
        for _ in range(self.config.burst_size):
            packet = self.factory.next_packet()
            packet.meta["tx_ns"] = self.env.now
            packet.meta["generator"] = self.name
            port = self.tx_ports[self._port_cursor]
            self._port_cursor = (self._port_cursor + 1) % len(self.tx_ports)
            wire = packet.wire_length
            burst_bytes += wire
            self.packets_sent += 1
            self.bytes_sent += wire
            self.send_out(port, packet)
        # Pace the next burst so the long-run offered rate matches the config.
        gap_ns = max(1, int(round(burst_bytes * 8 / self.config.rate_gbps)))
        self.env.schedule_in(gap_ns, self._emit_burst)

    # ------------------------------------------------------------------ #
    # Sink
    # ------------------------------------------------------------------ #

    def handle_packet(self, packet: Packet, port: int) -> None:
        """Count a packet that completed the round trip through the NF chain."""
        self.packets_received += 1
        self.bytes_received += packet.wire_length
        self.useful_bytes_received += packet.useful_bytes
        tx_ns = packet.meta.get("tx_ns")
        if tx_ns is not None:
            self.latency.record(self.env.now - tx_ns)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for warm-up-window deltas."""
        return {
            "packets_sent": self.packets_sent,
            "bytes_sent": self.bytes_sent,
            "packets_received": self.packets_received,
            "bytes_received": self.bytes_received,
            "useful_bytes_received": self.useful_bytes_received,
        }
