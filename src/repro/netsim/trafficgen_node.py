"""The traffic generator / sink as a simulation node.

One node plays both roles the PktGen server plays in the paper's
testbed: it offers load into the switch through (usually two) ports and
it receives the packets that come back after the NF chain, measuring
end-to-end latency, delivered goodput and drop rate.

Beyond the legacy constant-rate path, a node can carry a
:class:`~repro.workloads.base.TrafficModel`: a time-varying
:class:`~repro.workloads.schedule.TraceSchedule` modulates the burst
pacing (including silent zero-rate phases), an arrival model perturbs
the gaps (Poisson/MMPP/incast), a custom packet source replaces the
:class:`~repro.traffic.pktgen.PacketFactory`, and a timed replay stream
plays captured frames verbatim onto the event loop.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.netsim.eventloop import EventLoop
from repro.netsim.node import Node
from repro.packet.packet import Packet
from repro.telemetry.latency import LatencyRecorder
from repro.traffic.pktgen import PacketFactory, PktGenConfig
from repro.workloads.base import TimedFrame, TrafficModel, derived_rng

#: RNG salt for arrival-gap sampling (kept distinct from the packet
#: content RNG so pacing noise never perturbs generated frames).
_ARRIVALS_SALT = 1


class TrafficGenNode(Node):
    """A PktGen-style traffic source and measurement sink."""

    def __init__(
        self,
        env: EventLoop,
        config: PktGenConfig,
        tx_ports: Optional[List[int]] = None,
        name: str = "pktgen",
        traffic_model: Optional[TrafficModel] = None,
    ) -> None:
        super().__init__(env, name)
        self.config = config
        self.traffic_model = traffic_model
        self.schedule = traffic_model.schedule if traffic_model else None
        if traffic_model is not None and traffic_model.source_factory is not None:
            self.source = traffic_model.source_factory(config)
        else:
            self.source = PacketFactory(config)
        self.factory = self.source  # legacy alias; tests and tools peek at it
        if traffic_model is not None and traffic_model.arrivals is not None:
            self._gap_sampler = traffic_model.arrivals.sampler(
                derived_rng(config.seed, _ARRIVALS_SALT)
            )
        else:
            self._gap_sampler = None
        self._stream_factory = traffic_model.stream_factory if traffic_model else None
        self._loop_stream = traffic_model.loop_stream if traffic_model else True
        self._stream_iter: Optional[Iterator[TimedFrame]] = None
        self._stream_epoch_ns = 0
        if traffic_model is not None and traffic_model.transport_factory is not None:
            self.transport = traffic_model.transport_factory(config, self)
        else:
            self.transport = None
        self.tx_ports = list(tx_ports) if tx_ports is not None else [0, 1]
        if not self.tx_ports:
            raise ValueError("the traffic generator needs at least one TX port")
        self._port_cursor = 0
        self._running = False
        self._start_ns = 0
        self._stop_at_ns: Optional[int] = None
        self.latency = LatencyRecorder()
        # Counters.
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_received = 0
        self.useful_bytes_received = 0
        self.bytes_received = 0
        # Closed-loop accounting (always zero on open-loop nodes).
        self.retransmitted_packets = 0
        self.retransmitted_bytes = 0
        self.duplicate_packets_received = 0
        self.duplicate_bytes_received = 0
        # Observability hooks (repro.obs): all default None so the
        # uninstrumented hot path pays one predictable branch each.
        self.obs_recorder = None
        self.obs_profiler = None
        self.obs_latency_hist = None
        self._obs_pkt_index = 0

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def start(self, duration_ns: int) -> None:
        """Begin offering load now and stop after *duration_ns*."""
        if duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        self._running = True
        self._start_ns = self.env.now
        self._stop_at_ns = self.env.now + duration_ns
        if self.transport is not None:
            self.transport.start(self._stop_at_ns)
        elif self._stream_factory is not None:
            self._stream_iter = self._stream_factory(self.config.seed)
            self._stream_epoch_ns = self.env.now
            self._pump_stream()
        else:
            self.env.schedule_in(0, self._emit_burst)

    def stop(self) -> None:
        """Stop offering load (already-queued frames still drain)."""
        self._running = False
        if self.transport is not None:
            self.transport.stop()

    def current_rate_gbps(self) -> float:
        """The offered rate right now (schedule-aware)."""
        if self.schedule is None:
            return self.config.rate_gbps
        return self.schedule.rate_at(self.env.now - self._start_ns)

    def _transmit(self, packet: Packet) -> None:
        """Stamp, count and send one frame out the next TX port."""
        packet.meta["tx_ns"] = self.env.now
        packet.meta["generator"] = self.name
        port = self.tx_ports[self._port_cursor]
        self._port_cursor = (self._port_cursor + 1) % len(self.tx_ports)
        self.packets_sent += 1
        self.bytes_sent += packet.wire_length
        recorder = self.obs_recorder
        if recorder is not None:
            # Deterministic 1-in-N sampling decided at generation time:
            # the per-generator index depends only on emission order, so
            # the fast and reference paths follow identical packets.
            self._obs_pkt_index += 1
            if self._obs_pkt_index % recorder.sample_every == 0:
                pkt_id = f"{self.name}#{self._obs_pkt_index}"
                packet.meta["obs_pkt"] = pkt_id
                recorder.packet_generated(
                    pkt_id, self.env.now, port, packet.wire_length
                )
        self.send_out(port, packet)

    def transmit_segment(self, packet: Packet, retransmission: bool) -> None:
        """Put one closed-loop transport segment on the wire.

        Called by the transport engine instead of the burst pacer; the
        ``packets_sent``/``bytes_sent`` counters include retransmissions
        (they count frames on the wire), while the ``retransmitted_*``
        counters isolate the second-and-later copies so the validation
        engine can reconcile throughput against goodput.
        """
        if retransmission:
            self.retransmitted_packets += 1
            self.retransmitted_bytes += packet.wire_length
        self._transmit(packet)

    def _emit_burst(self) -> None:
        profiler = self.obs_profiler
        if profiler is None:
            self._emit_burst_now()
            return
        profiler.enter("traffic_gen")
        try:
            self._emit_burst_now()
        finally:
            profiler.exit()

    def _emit_burst_now(self) -> None:
        if not self._running:
            return
        if self._stop_at_ns is not None and self.env.now >= self._stop_at_ns:
            self._running = False
            return
        rate_gbps = self.current_rate_gbps()
        if rate_gbps <= 0:
            self._sleep_until_active()
            return
        burst_bytes = 0
        for _ in range(self.config.burst_size):
            packet = self.source.next_packet()
            burst_bytes += packet.wire_length
            self._transmit(packet)
        # Pace the next burst so the long-run offered rate matches the
        # schedule (or the config's constant rate); the arrival model
        # perturbs individual gaps around that target.  Scheduled rates
        # pace from the rate *integral*: quoting the instantaneous rate
        # would sleep almost forever on a ramp rising from ~zero and
        # blindly across phase boundaries.
        if self.schedule is not None:
            target_gap_ns = self.schedule.gap_for_bits(
                self.env.now - self._start_ns, burst_bytes * 8
            )
            if target_gap_ns is None:  # silent for the rest of the run
                self._running = False
                return
        else:
            target_gap_ns = burst_bytes * 8 / rate_gbps
        if self._gap_sampler is not None:
            gap_ns = self._gap_sampler.next_gap_ns(target_gap_ns)
        else:
            gap_ns = target_gap_ns
        self.env.schedule_in(max(1, int(round(gap_ns))), self._emit_burst)

    def _sleep_until_active(self) -> None:
        """Skip a zero-rate phase: wake at the next moment the schedule is live."""
        elapsed = self.env.now - self._start_ns
        active = self.schedule.next_active(elapsed + 1) if self.schedule else None
        if active is None:
            self._running = False
            return
        wake_ns = self._start_ns + active
        if self._stop_at_ns is not None and wake_ns >= self._stop_at_ns:
            self._running = False
            return
        self.env.schedule_at(wake_ns, self._emit_burst)

    # ------------------------------------------------------------------ #
    # Replay streams
    # ------------------------------------------------------------------ #

    def _pump_stream(self) -> None:
        """Schedule the next replayed frame (one outstanding at a time)."""
        if not self._running:
            return
        try:
            offset_ns, data = next(self._stream_iter)
        except StopIteration:
            if not self._loop_stream:
                self._running = False
                return
            fresh = self._stream_factory(self.config.seed)
            try:
                offset_ns, data = next(fresh)
            except StopIteration:  # an empty stream cannot loop
                self._running = False
                return
            self._stream_iter = fresh
            self._stream_epoch_ns = self.env.now + 1
        when_ns = max(self._stream_epoch_ns + offset_ns, self.env.now)
        if self._stop_at_ns is not None and when_ns >= self._stop_at_ns:
            self._running = False
            return
        self.env.schedule_at(when_ns, lambda: self._send_stream_frame(data))

    def _send_stream_frame(self, data: bytes) -> None:
        if not self._running:
            return
        # Rebuild the packet from bytes so loop iterations never share
        # mutable state (the switch attaches/detaches headers in place).
        self._transmit(Packet.from_bytes(data))
        self._pump_stream()

    # ------------------------------------------------------------------ #
    # Sink
    # ------------------------------------------------------------------ #

    def handle_packet(self, packet: Packet, port: int) -> None:
        """Count a packet that completed the round trip through the NF chain.

        With a closed-loop transport attached the delivery doubles as the
        segment's acknowledgment, and the transport decides whether this
        is the sequence number's *first* arrival (goodput) or a duplicate
        (an original racing its retransmission — throughput only).
        """
        self.packets_received += 1
        self.bytes_received += packet.wire_length
        if self.transport is not None:
            duplicate = self.transport.on_delivery(packet)
            if duplicate:
                self.duplicate_packets_received += 1
                self.duplicate_bytes_received += packet.useful_bytes
            else:
                self.useful_bytes_received += packet.useful_bytes
        else:
            self.useful_bytes_received += packet.useful_bytes
        tx_ns = packet.meta.get("tx_ns")
        latency_ns = None
        if tx_ns is not None:
            latency_ns = self.env.now - tx_ns
            self.latency.record(latency_ns)
            histogram = self.obs_latency_hist
            if histogram is not None:
                histogram.observe(latency_ns / 1_000.0)
        recorder = self.obs_recorder
        if recorder is not None:
            pkt_id = packet.meta.get("obs_pkt")
            if pkt_id is not None:
                recorder.packet_delivered(pkt_id, self.env.now, latency_ns)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for warm-up-window deltas."""
        return {
            "packets_sent": self.packets_sent,
            "bytes_sent": self.bytes_sent,
            "packets_received": self.packets_received,
            "bytes_received": self.bytes_received,
            "useful_bytes_received": self.useful_bytes_received,
            "retransmitted_packets": self.retransmitted_packets,
            "retransmitted_bytes": self.retransmitted_bytes,
            "duplicate_packets_received": self.duplicate_packets_received,
            "duplicate_bytes_received": self.duplicate_bytes_received,
        }
