"""A PCIe bus model for the NF server.

The paper reports PCIe bandwidth savings of 2–58 % (measured with
Intel PCM) because PayloadPark moves fewer payload bytes between the
NIC and the CPU.  The model charges, per packet and per direction, the
frame bytes plus a small fixed overhead for descriptors and TLP
headers, tracks the aggregate byte count for utilization reporting, and
exposes the transfer delay used in the latency budget.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PcieSpec:
    """Static characteristics of the server's PCIe attachment."""

    name: str = "PCIe 3.0 x8"
    #: Usable (post-encoding) bandwidth per direction in Gb/s.
    bandwidth_gbps: float = 55.0
    #: Fixed per-packet overhead bytes per direction (descriptor + TLP
    #: headers, amortized over batched doorbells).
    per_packet_overhead_bytes: int = 8
    #: Fixed DMA initiation latency per transfer, in nanoseconds.
    dma_latency_ns: int = 400


class PcieBus:
    """Run-time accounting for one server's PCIe bus."""

    def __init__(self, spec: PcieSpec = PcieSpec()) -> None:
        self.spec = spec
        self.rx_bytes = 0          # device -> host (received packets)
        self.tx_bytes = 0          # host -> device (transmitted packets)
        self.rx_transfers = 0
        self.tx_transfers = 0

    def transfer_bytes(self, wire_bytes: int) -> int:
        """Bytes actually moved over PCIe for a frame of *wire_bytes*."""
        return wire_bytes + self.spec.per_packet_overhead_bytes

    def rx_transfer(self, wire_bytes: int) -> int:
        """Account a device→host transfer; return its delay in nanoseconds."""
        nbytes = self.transfer_bytes(wire_bytes)
        self.rx_bytes += nbytes
        self.rx_transfers += 1
        return self.spec.dma_latency_ns + int(round(nbytes * 8 / self.spec.bandwidth_gbps))

    def tx_transfer(self, wire_bytes: int) -> int:
        """Account a host→device transfer; return its delay in nanoseconds."""
        nbytes = self.transfer_bytes(wire_bytes)
        self.tx_bytes += nbytes
        self.tx_transfers += 1
        return self.spec.dma_latency_ns + int(round(nbytes * 8 / self.spec.bandwidth_gbps))

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in both directions."""
        return self.rx_bytes + self.tx_bytes

    def bandwidth_gbps_over(self, window_ns: int) -> float:
        """Average PCIe bandwidth (both directions) over *window_ns*."""
        if window_ns <= 0:
            return 0.0
        return self.total_bytes * 8 / window_ns

    def utilization_over(self, window_ns: int) -> float:
        """Fraction of the bus's bidirectional capacity used over *window_ns*."""
        capacity = 2 * self.spec.bandwidth_gbps
        if capacity <= 0:
            return 0.0
        return self.bandwidth_gbps_over(window_ns) / capacity
