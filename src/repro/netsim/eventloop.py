"""Discrete-event simulation loops: the reference heap and the fast calendar.

Time is an integer number of nanoseconds.  Events are callbacks ordered
by (time, scheduling order); ties preserve scheduling order so the
simulation is fully deterministic for a given seed.

Two interchangeable implementations are provided:

* :class:`EventLoop` — the reference implementation: one ``heapq``
  push/pop per event, exactly as the seed simulator behaved.  This is
  the loop the golden-figure regression suite treats as ground truth.
* :class:`FastEventLoop` — the fast path: a timer-wheel-style calendar
  that buckets every event scheduled for the same nanosecond into one
  FIFO list, so the heap only orders *distinct timestamps*.  Paced
  traffic generators and burst transmissions produce long runs of
  same-time events, which the calendar executes with one list append
  and one cursor advance instead of a heap push and pop each.

Both loops execute identical event sequences for identical scheduling
calls (the property suite in ``tests/property`` asserts this), so the
experiment runner can switch between them via
``ScenarioConfig.fast_path`` without changing results.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Iterable, List, Optional, Tuple

Callback = Callable[[], None]


class EventLoop:
    """Priority-queue based discrete-event scheduler (reference path)."""

    __slots__ = ("_queue", "_sequence", "now", "events_executed", "monitor")

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Callback]] = []
        self._sequence = itertools.count()
        self.now: int = 0
        self.events_executed = 0
        #: Optional per-event observer ``monitor(when_ns)`` invoked as each
        #: event's timestamp becomes current.  Installed by the validation
        #: subsystem to assert event-time monotonicity; ``None`` (the
        #: default) keeps the dispatch loops branch-cheap.
        self.monitor: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule_at(self, when_ns: int, callback: Callback) -> None:
        """Schedule *callback* to run at absolute time *when_ns*."""
        if when_ns < self.now:
            raise ValueError(
                f"cannot schedule an event in the past ({when_ns} < now={self.now})"
            )
        heapq.heappush(self._queue, (when_ns, next(self._sequence), callback))

    def schedule_in(self, delay_ns: int, callback: Callback) -> None:
        """Schedule *callback* to run *delay_ns* nanoseconds from now."""
        if delay_ns < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ns}")
        self.schedule_at(self.now + delay_ns, callback)

    def schedule_many(self, events: Iterable[Tuple[int, Callback]]) -> None:
        """Schedule a batch of ``(when_ns, callback)`` pairs.

        Equivalent to calling :meth:`schedule_at` for each pair in order
        (same tie-breaking), but lets implementations amortize per-event
        overhead.  Validation matches ``schedule_at``: any pair in the
        past raises, and pairs before it are already scheduled.
        """
        queue = self._queue
        sequence = self._sequence
        now = self.now
        for when_ns, callback in events:
            if when_ns < now:
                raise ValueError(
                    f"cannot schedule an event in the past ({when_ns} < now={now})"
                )
            heapq.heappush(queue, (when_ns, next(sequence), callback))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run_until(self, horizon_ns: int) -> None:
        """Execute events in order until the queue is empty or the next
        event lies *beyond* ``horizon_ns``.

        The horizon is inclusive: events scheduled exactly at
        ``horizon_ns`` execute (and ``monitor`` fires for each executed
        callback).  ``FastEventLoop.run_until`` honours the identical
        contract — `tests/unit/test_eventloop_edges.py` pins the two
        loops to the same executed-event and monitor-fire counts at the
        boundary.  ``now`` never moves backwards: a horizon earlier than
        the current time executes nothing and leaves ``now`` unchanged.
        """
        monitor = self.monitor
        while self._queue:
            when_ns, _seq, callback = self._queue[0]
            if when_ns > horizon_ns:
                break
            heapq.heappop(self._queue)
            self.now = when_ns
            if monitor is not None:
                monitor(when_ns)
            callback()
            self.events_executed += 1
        # Leave ``now`` at the horizon so rate calculations use the full
        # window; clamp so an earlier horizon cannot rewind time.
        if self.now < horizon_ns:
            self.now = horizon_ns

    def run_all(self, max_events: Optional[int] = None) -> None:
        """Drain the queue completely (or up to *max_events* events)."""
        executed = 0
        monitor = self.monitor
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            when_ns, _seq, callback = heapq.heappop(self._queue)
            self.now = when_ns
            if monitor is not None:
                monitor(when_ns)
            callback()
            self.events_executed += 1
            executed += 1

    def translate_events(self, cutoff_ns: int, delta_ns: int) -> int:
        """Shift every pending event scheduled before *cutoff_ns* forward
        by *delta_ns* and advance ``now`` by the same amount.

        This is the clock jump the fluid fidelity tier performs when it
        extrapolates a steady traffic segment: near-term machinery events
        (in-flight link deliveries, burst emissions, server completions —
        all scheduled before the segment boundary) ride along with the
        clock, while boundary events at or beyond *cutoff_ns* (fault
        windows, rate-phase wakes, traffic stop) keep their absolute
        times.  Shifted events keep their relative order; where a shifted
        event lands on the same nanosecond as an unshifted one, the
        unshifted (boundary) event runs first.  Returns the number of
        events shifted.

        *cutoff_ns* must be at least ``now + delta_ns`` so no event —
        shifted or kept — ends up in the past.
        """
        if delta_ns < 0:
            raise ValueError(f"delta_ns must be non-negative, got {delta_ns}")
        if cutoff_ns < self.now + delta_ns:
            raise ValueError(
                f"cutoff_ns ({cutoff_ns}) must cover the translated clock "
                f"({self.now} + {delta_ns})"
            )
        if delta_ns == 0:
            return 0
        queue = self._queue
        shifted = [entry for entry in queue if entry[0] < cutoff_ns]
        if shifted:
            kept = [entry for entry in queue if entry[0] >= cutoff_ns]
            # Re-sequence the shifted events in their original execution
            # order so they sort after any kept event they now tie with.
            shifted.sort(key=lambda entry: (entry[0], entry[1]))
            sequence = self._sequence
            queue[:] = kept + [
                (when_ns + delta_ns, next(sequence), callback)
                for when_ns, _seq, callback in shifted
            ]
            heapq.heapify(queue)
        self.now += delta_ns
        return len(shifted)

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def now_seconds(self) -> float:
        """Current simulation time in seconds."""
        return self.now / 1e9


class FastEventLoop(EventLoop):
    """Calendar-bucket scheduler: heap of distinct times, FIFO buckets.

    Events scheduled for the same nanosecond share one list; the heap
    orders only the distinct timestamps.  Appending to a bucket is O(1)
    and preserves scheduling order, which reproduces the reference
    loop's ``(time, sequence)`` tie-breaking exactly — including events
    scheduled *for the current timestamp while it is being drained*,
    which land at the tail of the active bucket and run after every
    already-queued tie.
    """

    __slots__ = (
        "_buckets",
        "_times",
        "_pending",
        "_active_time",
        "_active_bucket",
        "_active_index",
        "_draining",
    )

    def __init__(self) -> None:
        self.now = 0
        self.events_executed = 0
        self.monitor = None
        #: timestamp -> FIFO list of callbacks at that timestamp.
        self._buckets: Dict[int, List[Callback]] = {}
        #: heap of distinct timestamps present in ``_buckets``.
        self._times: List[int] = []
        self._pending = 0
        # Drain cursor, kept as instance state so ``run_all(max_events)``
        # can stop mid-bucket and a later run resumes exactly where it
        # left off.
        self._active_time = -1
        self._active_bucket: Optional[List[Callback]] = None
        self._active_index = 0
        #: True while run_until/run_all is executing callbacks; guards
        #: translate_events (a re-entrant clock jump would invalidate
        #: the popped-timestamp the drain loop is standing on, even on
        #: the singleton-bucket fast path that bypasses the cursor).
        self._draining = False

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule_at(self, when_ns: int, callback: Callback) -> None:
        """Schedule *callback* at *when_ns* (same semantics as the reference)."""
        if when_ns < self.now:
            raise ValueError(
                f"cannot schedule an event in the past ({when_ns} < now={self.now})"
            )
        bucket = self._buckets.get(when_ns)
        if bucket is None:
            self._buckets[when_ns] = [callback]
            heapq.heappush(self._times, when_ns)
        else:
            bucket.append(callback)
        self._pending += 1

    def schedule_in(self, delay_ns: int, callback: Callback) -> None:
        """Schedule *callback* to run *delay_ns* nanoseconds from now."""
        if delay_ns < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ns}")
        self.schedule_at(self.now + delay_ns, callback)

    def schedule_many(self, events: Iterable[Tuple[int, Callback]]) -> None:
        """Batch-schedule ``(when_ns, callback)`` pairs into their buckets."""
        buckets = self._buckets
        now = self.now
        count = 0
        for when_ns, callback in events:
            if when_ns < now:
                self._pending += count
                raise ValueError(
                    f"cannot schedule an event in the past ({when_ns} < now={now})"
                )
            bucket = buckets.get(when_ns)
            if bucket is None:
                buckets[when_ns] = [callback]
                heapq.heappush(self._times, when_ns)
            else:
                bucket.append(callback)
            count += 1
        self._pending += count

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run_until(self, horizon_ns: int) -> None:
        """Execute events in order until the next event lies *beyond*
        ``horizon_ns``.

        Same inclusive-horizon contract as :meth:`EventLoop.run_until`:
        events scheduled exactly at ``horizon_ns`` execute, ``monitor``
        fires once per executed callback, and ``now`` is left clamped to
        the horizon afterwards.
        """
        times = self._times
        buckets = self._buckets
        pop = heapq.heappop
        monitor = self.monitor
        # ``consumed`` counts events taken off the calendar, ``executed``
        # events whose callback completed; they differ only when a
        # callback raises, and keeping both mirrors the reference loop
        # (the heap entry is popped even if the callback then raises).
        consumed = 0
        executed = 0
        self._draining = True
        try:
            while True:
                if self._active_bucket is None:
                    if not times or times[0] > horizon_ns:
                        break
                    when_ns = pop(times)
                    bucket = buckets[when_ns]
                    if len(bucket) == 1:
                        # Singleton bucket: skip the drain-cursor
                        # bookkeeping.  The bucket is removed first, so a
                        # callback scheduling at ``now`` creates a fresh
                        # bucket that the heap serves next — the same
                        # order the reference loop produces.
                        del buckets[when_ns]
                        self.now = when_ns
                        if monitor is not None:
                            monitor(when_ns)
                        consumed += 1
                        bucket[0]()
                        executed += 1
                        continue
                    self._active_time = when_ns
                    self._active_bucket = bucket
                    self._active_index = 0
                elif self._active_time > horizon_ns:
                    break
                self.now = self._active_time
                bucket = self._active_bucket
                index = self._active_index
                # Callbacks may append same-time events to this bucket;
                # re-reading the length each iteration runs them in FIFO
                # order, matching the reference loop's sequence numbers.
                while index < len(bucket):
                    callback = bucket[index]
                    index += 1
                    self._active_index = index
                    if monitor is not None:
                        monitor(self._active_time)
                    consumed += 1
                    callback()
                    executed += 1
                del buckets[self._active_time]
                self._active_bucket = None
                self._active_time = -1
        finally:
            self._draining = False
            self.events_executed += executed
            self._pending -= consumed
        if self.now < horizon_ns:
            self.now = horizon_ns

    def run_all(self, max_events: Optional[int] = None) -> None:
        """Drain the calendar completely (or up to *max_events* events)."""
        times = self._times
        buckets = self._buckets
        pop = heapq.heappop
        monitor = self.monitor
        remaining = float("inf") if max_events is None else max_events
        consumed = 0
        executed = 0
        self._draining = True
        try:
            while remaining > 0:
                if self._active_bucket is None:
                    if not times:
                        break
                    when_ns = pop(times)
                    self._active_time = when_ns
                    self._active_bucket = buckets[when_ns]
                    self._active_index = 0
                self.now = self._active_time
                bucket = self._active_bucket
                index = self._active_index
                while index < len(bucket) and remaining > 0:
                    callback = bucket[index]
                    index += 1
                    self._active_index = index
                    if monitor is not None:
                        monitor(self._active_time)
                    consumed += 1
                    callback()
                    executed += 1
                    remaining -= 1
                if self._active_index >= len(bucket):
                    del buckets[self._active_time]
                    self._active_bucket = None
                    self._active_time = -1
        finally:
            self._draining = False
            self.events_executed += executed
            self._pending -= consumed

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return self._pending

    def translate_events(self, cutoff_ns: int, delta_ns: int) -> int:
        """Calendar version of :meth:`EventLoop.translate_events`.

        Rebuilds the bucket map with shifted keys.  Buckets keep their
        FIFO order, and a shifted bucket landing on an existing
        (unshifted) timestamp is appended after it — the same
        kept-before-shifted tie order the reference loop produces.  Must
        not be called mid-drain (from inside a running callback).
        """
        if self._draining or self._active_bucket is not None:
            raise RuntimeError("cannot translate events while the loop is draining")
        if delta_ns < 0:
            raise ValueError(f"delta_ns must be non-negative, got {delta_ns}")
        if cutoff_ns < self.now + delta_ns:
            raise ValueError(
                f"cutoff_ns ({cutoff_ns}) must cover the translated clock "
                f"({self.now} + {delta_ns})"
            )
        if delta_ns == 0:
            return 0
        buckets = self._buckets
        shifted = 0
        rebuilt: Dict[int, List[Callback]] = {
            when_ns: bucket
            for when_ns, bucket in buckets.items()
            if when_ns >= cutoff_ns
        }
        # Kept buckets first, then shifted ones in timestamp order, so a
        # collision appends the shifted callbacks after the kept ones.
        for when_ns in sorted(when for when in buckets if when < cutoff_ns):
            bucket = buckets[when_ns]
            shifted += len(bucket)
            target = when_ns + delta_ns
            existing = rebuilt.get(target)
            if existing is None:
                rebuilt[target] = bucket
            else:
                existing.extend(bucket)
        if shifted:
            self._buckets = rebuilt
            self._times = list(rebuilt)
            heapq.heapify(self._times)
        self.now += delta_ns
        return shifted
