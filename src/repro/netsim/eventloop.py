"""A minimal discrete-event simulation loop.

Time is an integer number of nanoseconds.  Events are callbacks ordered
by (time, sequence number); ties preserve scheduling order so the
simulation is fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

Callback = Callable[[], None]


class EventLoop:
    """Priority-queue based discrete-event scheduler."""

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Callback]] = []
        self._sequence = itertools.count()
        self.now: int = 0
        self.events_executed = 0

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule_at(self, when_ns: int, callback: Callback) -> None:
        """Schedule *callback* to run at absolute time *when_ns*."""
        if when_ns < self.now:
            raise ValueError(
                f"cannot schedule an event in the past ({when_ns} < now={self.now})"
            )
        heapq.heappush(self._queue, (when_ns, next(self._sequence), callback))

    def schedule_in(self, delay_ns: int, callback: Callback) -> None:
        """Schedule *callback* to run *delay_ns* nanoseconds from now."""
        if delay_ns < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ns}")
        self.schedule_at(self.now + delay_ns, callback)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run_until(self, horizon_ns: int) -> None:
        """Execute events in order until the queue is empty or time exceeds *horizon_ns*."""
        while self._queue:
            when_ns, _seq, callback = self._queue[0]
            if when_ns > horizon_ns:
                break
            heapq.heappop(self._queue)
            self.now = when_ns
            callback()
            self.events_executed += 1
        # Leave ``now`` at the horizon so rate calculations use the full window.
        if self.now < horizon_ns:
            self.now = horizon_ns

    def run_all(self, max_events: Optional[int] = None) -> None:
        """Drain the queue completely (or up to *max_events* events)."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            when_ns, _seq, callback = heapq.heappop(self._queue)
            self.now = when_ns
            callback()
            self.events_executed += 1
            executed += 1

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def now_seconds(self) -> float:
        """Current simulation time in seconds."""
        return self.now / 1e9
