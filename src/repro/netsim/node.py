"""Base class for simulation nodes (hosts and switches)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.packet.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.netsim.eventloop import EventLoop
    from repro.netsim.link import Link


class Node:
    """Anything that terminates links: traffic generators, switches, servers.

    A node owns a set of numbered ports; the topology wires each port to
    one end of a :class:`~repro.netsim.link.Link`.  Subclasses implement
    :meth:`handle_packet`, which the link calls when a frame finishes
    arriving.
    """

    def __init__(self, env: "EventLoop", name: str) -> None:
        self.env = env
        self.name = name
        self.links: Dict[int, "Link"] = {}

    def attach_link(self, port: int, link: "Link") -> None:
        """Register *link* as connected to local *port* (called by Link)."""
        if port in self.links:
            raise ValueError(f"{self.name}: port {port} already has a link attached")
        self.links[port] = link

    def send_out(self, port: int, packet: Packet) -> None:
        """Transmit *packet* out of local *port*."""
        link = self.links.get(port)
        if link is None:
            raise ValueError(f"{self.name}: no link attached to port {port}")
        link.transmit(packet, self)

    def handle_packet(self, packet: Packet, port: int) -> None:
        """Receive a frame that arrived on local *port*; must be overridden."""
        raise NotImplementedError

    def stats(self) -> Dict[str, float]:
        """Return a snapshot of this node's counters (used for warm-up deltas)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
