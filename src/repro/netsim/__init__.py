"""Discrete-event network simulation substrate.

The paper's testbed is a traffic generator, a Tofino switch and one or
more NF servers connected by 10/40 GbE links.  This subpackage provides
the discrete-event machinery to reproduce that testbed in simulation:
an event loop, links with serialization/propagation delay and finite
egress buffers, NIC and PCIe models, a switch node that runs a
:class:`~repro.core.program.SwitchProgram`, an NF-server node built on
:class:`~repro.nf.server.NfServerModel`, a PktGen-style traffic source /
sink, and topology builders for the single- and multi-server setups.
"""

from repro.netsim.eventloop import EventLoop
from repro.netsim.link import Link
from repro.netsim.nic import NicPort, NicSpec, NIC_10GE, NIC_40GE
from repro.netsim.pcie import PcieBus, PcieSpec
from repro.netsim.server_node import NfServerNode
from repro.netsim.switch_node import SwitchNode
from repro.netsim.topology import MultiServerTopology, SingleServerTopology
from repro.netsim.trafficgen_node import TrafficGenNode

__all__ = [
    "EventLoop",
    "Link",
    "NicSpec",
    "NicPort",
    "NIC_10GE",
    "NIC_40GE",
    "PcieBus",
    "PcieSpec",
    "SwitchNode",
    "NfServerNode",
    "TrafficGenNode",
    "SingleServerTopology",
    "MultiServerTopology",
]
