"""Full-duplex point-to-point links with finite egress buffers.

A link direction models three things: serialization delay (frame bytes
over the link rate), propagation delay, and an egress buffer of finite
byte capacity.  When the buffer is full the frame is dropped — this is
where the baseline deployment loses packets once the switch → NF-server
link saturates (§6.2.1), and it is the buffer whose occupancy produces
the latency cliff visible in Fig. 7 and Fig. 16.

The transmit path is deliberately lean: links move every frame of every
simulated hop, so the delivery callback is pre-bound per direction at
wiring time, and the two per-frame events (serialization end,
arrival) are scheduled with one batched call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.netsim.eventloop import EventLoop
from repro.netsim.node import Node
from repro.packet.packet import Packet


@dataclass
class LinkDirectionStats:
    """Counters for one direction of a link."""

    frames_sent: int = 0
    frames_delivered: int = 0
    frames_dropped: int = 0
    bytes_sent: int = 0
    bytes_dropped: int = 0
    busy_ns: int = 0
    peak_queue_bytes: int = 0


class _LinkDirection:
    """One direction of a full-duplex link."""

    __slots__ = (
        "env",
        "name",
        "bandwidth_gbps",
        "propagation_delay_ns",
        "buffer_bytes",
        "next_free_ns",
        "queued_bytes",
        "stats",
        "_deliver",
    )

    def __init__(
        self,
        env: EventLoop,
        name: str,
        bandwidth_gbps: float,
        propagation_delay_ns: int,
        buffer_bytes: int,
    ) -> None:
        self.env = env
        self.name = name
        self.bandwidth_gbps = bandwidth_gbps
        self.propagation_delay_ns = propagation_delay_ns
        self.buffer_bytes = buffer_bytes
        self.next_free_ns = 0
        self.queued_bytes = 0
        self.stats = LinkDirectionStats()
        #: Bound by the owning Link once the receiving endpoint is known.
        self._deliver = None

    def serialization_ns(self, nbytes: int) -> int:
        """Time to clock *nbytes* onto the wire at the link rate."""
        return int(round(nbytes * 8 / self.bandwidth_gbps))

    def transmit(self, packet: Packet, deliver=None) -> None:
        """Queue *packet* for transmission; deliver it on arrival.

        *deliver* overrides the direction's pre-bound delivery callback
        (kept for tests that drive a direction standalone).
        """
        stats = self.stats
        wire_bytes = packet.wire_length
        queued = self.queued_bytes + wire_bytes
        if queued > self.buffer_bytes:
            stats.frames_dropped += 1
            stats.bytes_dropped += wire_bytes
            return
        now = self.env.now
        next_free = self.next_free_ns
        start = now if now > next_free else next_free
        tx_done = start + self.serialization_ns(wire_bytes)
        self.next_free_ns = tx_done
        self.queued_bytes = queued
        stats.frames_sent += 1
        stats.bytes_sent += wire_bytes
        stats.busy_ns += tx_done - start
        if queued > stats.peak_queue_bytes:
            stats.peak_queue_bytes = queued

        if deliver is None:
            deliver = self._deliver

        def finish_serialization() -> None:
            self.queued_bytes -= wire_bytes

        def arrive() -> None:
            stats.frames_delivered += 1
            deliver(packet)

        # One batched call; identical ordering to two schedule_at calls
        # (schedule_many preserves pair order for tie-breaking).
        self.env.schedule_many(
            (
                (tx_done, finish_serialization),
                (tx_done + self.propagation_delay_ns, arrive),
            )
        )

    def utilization(self, window_ns: int) -> float:
        """Fraction of *window_ns* the link spent transmitting."""
        if window_ns <= 0:
            return 0.0
        return min(self.stats.busy_ns / window_ns, 1.0)


class Link:
    """A full-duplex link between two node ports."""

    def __init__(
        self,
        env: EventLoop,
        node_a: Node,
        port_a: int,
        node_b: Node,
        port_b: int,
        bandwidth_gbps: float = 10.0,
        propagation_delay_ns: int = 500,
        buffer_bytes: int = 512 * 1024,
        name: Optional[str] = None,
    ) -> None:
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        self.env = env
        self.name = name or f"{node_a.name}:{port_a}<->{node_b.name}:{port_b}"
        self.node_a, self.port_a = node_a, port_a
        self.node_b, self.port_b = node_b, port_b
        self.bandwidth_gbps = bandwidth_gbps
        self._a_to_b = _LinkDirection(
            env, f"{self.name}[a->b]", bandwidth_gbps, propagation_delay_ns, buffer_bytes
        )
        self._b_to_a = _LinkDirection(
            env, f"{self.name}[b->a]", bandwidth_gbps, propagation_delay_ns, buffer_bytes
        )
        # Pre-bind delivery: the endpoints never change after wiring, so
        # the per-frame transmit path does not rebuild these closures.
        self._a_to_b._deliver = lambda pkt: node_b.handle_packet(pkt, port_b)
        self._b_to_a._deliver = lambda pkt: node_a.handle_packet(pkt, port_a)
        node_a.attach_link(port_a, self)
        node_b.attach_link(port_b, self)

    def transmit(self, packet: Packet, sender: Node) -> None:
        """Send *packet* from *sender* toward the other end of the link."""
        if sender is self.node_a:
            self._a_to_b.transmit(packet)
        elif sender is self.node_b:
            self._b_to_a.transmit(packet)
        else:
            raise ValueError(f"{sender.name} is not attached to link {self.name}")

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def direction_stats(self, sender: Node) -> LinkDirectionStats:
        """Stats of the direction whose transmitter is *sender*."""
        if sender is self.node_a:
            return self._a_to_b.stats
        if sender is self.node_b:
            return self._b_to_a.stats
        raise ValueError(f"{sender.name} is not attached to link {self.name}")

    def total_drops(self) -> int:
        """Frames dropped in both directions."""
        return self._a_to_b.stats.frames_dropped + self._b_to_a.stats.frames_dropped

    def stats(self) -> Dict[str, float]:
        """Combined counters for both directions."""
        return {
            "a_to_b_sent": self._a_to_b.stats.frames_sent,
            "a_to_b_dropped": self._a_to_b.stats.frames_dropped,
            "a_to_b_bytes": self._a_to_b.stats.bytes_sent,
            "b_to_a_sent": self._b_to_a.stats.frames_sent,
            "b_to_a_dropped": self._b_to_a.stats.frames_dropped,
            "b_to_a_bytes": self._b_to_a.stats.bytes_sent,
        }
