"""Full-duplex point-to-point links with finite egress buffers.

A link direction models three things: serialization delay (frame bytes
over the link rate), propagation delay, and an egress buffer of finite
byte capacity.  When the buffer is full the frame is dropped — this is
where the baseline deployment loses packets once the switch → NF-server
link saturates (§6.2.1), and it is the buffer whose occupancy produces
the latency cliff visible in Fig. 7 and Fig. 16.

The transmit path is deliberately lean: links move every frame of every
simulated hop, so the delivery callback is pre-bound per direction at
wiring time, and the two per-frame events (serialization end,
arrival) are scheduled with one batched call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.netsim.eventloop import EventLoop
from repro.netsim.node import Node
from repro.packet.packet import Packet


@dataclass
class LinkDirectionStats:
    """Counters for one direction of a link.

    ``frames_dropped`` counts egress-buffer overflows (the organic drop
    mechanism); the two fault counters attribute frames lost to injected
    conditions — a downed link or an active random-loss window — so the
    validation subsystem's drop-aware packet-conservation invariant can
    account every loss to its mechanism.
    """

    frames_sent: int = 0
    frames_delivered: int = 0
    frames_dropped: int = 0
    bytes_sent: int = 0
    bytes_dropped: int = 0
    busy_ns: int = 0
    peak_queue_bytes: int = 0
    frames_dropped_down: int = 0
    frames_dropped_loss: int = 0
    bytes_dropped_fault: int = 0

    @property
    def fault_drops(self) -> int:
        """Frames lost to injected faults (link down + loss windows)."""
        return self.frames_dropped_down + self.frames_dropped_loss

    def reset(self) -> None:
        """Zero every counter (control plane; see ControlPlaneManager.reset)."""
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.bytes_sent = 0
        self.bytes_dropped = 0
        self.busy_ns = 0
        self.peak_queue_bytes = 0
        self.frames_dropped_down = 0
        self.frames_dropped_loss = 0
        self.bytes_dropped_fault = 0


class _LinkDirection:
    """One direction of a full-duplex link."""

    __slots__ = (
        "env",
        "name",
        "bandwidth_gbps",
        "propagation_delay_ns",
        "buffer_bytes",
        "next_free_ns",
        "queued_bytes",
        "stats",
        "_deliver",
        "up",
        "loss_probability",
        "jitter_ns",
        "_loss_rng",
        "_jitter_rng",
        "last_arrival_ns",
        "obs_recorder",
        "obs_profiler",
    )

    def __init__(
        self,
        env: EventLoop,
        name: str,
        bandwidth_gbps: float,
        propagation_delay_ns: int,
        buffer_bytes: int,
    ) -> None:
        self.env = env
        self.name = name
        self.bandwidth_gbps = bandwidth_gbps
        self.propagation_delay_ns = propagation_delay_ns
        self.buffer_bytes = buffer_bytes
        self.next_free_ns = 0
        self.queued_bytes = 0
        self.stats = LinkDirectionStats()
        #: Bound by the owning Link once the receiving endpoint is known.
        self._deliver = None
        # Fault-injection state (see repro.faults): a downed direction
        # drops every offered frame; an active loss window drops each
        # frame with ``loss_probability``; an active jitter window adds a
        # uniform extra in [0, jitter_ns) to the propagation delay.  All
        # default to the fault-free fast case, so the per-frame checks in
        # ``transmit`` cost two predictable branches.
        self.up = True
        self.loss_probability = 0.0
        self.jitter_ns = 0
        self._loss_rng = None
        self._jitter_rng = None
        #: Latest arrival time scheduled on this direction.  A wire is
        #: FIFO: jitter delays frames but can never reorder them, so
        #: jittered arrivals are clamped to be monotone.  Without jitter
        #: arrivals are already strictly increasing (serialization is
        #: serialized through ``next_free_ns``), making the clamp a no-op.
        self.last_arrival_ns = 0
        # Observability hooks (repro.obs): None keeps the per-frame cost
        # at one predictable branch each.
        self.obs_recorder = None
        self.obs_profiler = None

    def serialization_ns(self, nbytes: int) -> int:
        """Time to clock *nbytes* onto the wire at the link rate."""
        return int(round(nbytes * 8 / self.bandwidth_gbps))

    def transmit(self, packet: Packet, deliver=None) -> None:
        """Queue *packet* for transmission; deliver it on arrival.

        *deliver* overrides the direction's pre-bound delivery callback
        (kept for tests that drive a direction standalone).
        """
        stats = self.stats
        wire_bytes = packet.wire_length
        if not self.up:
            stats.frames_dropped_down += 1
            stats.bytes_dropped_fault += wire_bytes
            self._record_drop(packet, "link-down")
            return
        if self.loss_probability > 0.0 and self._loss_rng.random() < self.loss_probability:
            stats.frames_dropped_loss += 1
            stats.bytes_dropped_fault += wire_bytes
            self._record_drop(packet, "link-loss")
            return
        queued = self.queued_bytes + wire_bytes
        if queued > self.buffer_bytes:
            stats.frames_dropped += 1
            stats.bytes_dropped += wire_bytes
            self._record_drop(packet, "link-buffer-overflow")
            return
        profiler = self.obs_profiler
        if profiler is not None:
            profiler.enter("link_transmit")
        now = self.env.now
        next_free = self.next_free_ns
        start = now if now > next_free else next_free
        tx_done = start + self.serialization_ns(wire_bytes)
        self.next_free_ns = tx_done
        self.queued_bytes = queued
        stats.frames_sent += 1
        stats.bytes_sent += wire_bytes
        stats.busy_ns += tx_done - start
        if queued > stats.peak_queue_bytes:
            stats.peak_queue_bytes = queued

        if deliver is None:
            deliver = self._deliver

        def finish_serialization() -> None:
            self.queued_bytes -= wire_bytes

        def arrive() -> None:
            stats.frames_delivered += 1
            deliver(packet)

        propagation = self.propagation_delay_ns
        if self.jitter_ns:
            propagation += int(self._jitter_rng.random() * self.jitter_ns)
        arrival = tx_done + propagation
        if arrival < self.last_arrival_ns:
            arrival = self.last_arrival_ns
        self.last_arrival_ns = arrival

        # One batched call; identical ordering to two schedule_at calls
        # (schedule_many preserves pair order for tie-breaking).
        self.env.schedule_many(
            (
                (tx_done, finish_serialization),
                (arrival, arrive),
            )
        )
        if profiler is not None:
            profiler.exit()

    def _record_drop(self, packet: Packet, reason: str) -> None:
        """Flight-recorder drop hook (drop branches only, never the fast case)."""
        recorder = self.obs_recorder
        if recorder is not None:
            pkt_id = packet.meta.get("obs_pkt")
            if pkt_id is not None:
                recorder.packet_dropped(pkt_id, self.env.now, self.name, reason)

    def utilization(self, window_ns: int) -> float:
        """Fraction of *window_ns* the link spent transmitting."""
        if window_ns <= 0:
            return 0.0
        return min(self.stats.busy_ns / window_ns, 1.0)


class Link:
    """A full-duplex link between two node ports."""

    def __init__(
        self,
        env: EventLoop,
        node_a: Node,
        port_a: int,
        node_b: Node,
        port_b: int,
        bandwidth_gbps: float = 10.0,
        propagation_delay_ns: int = 500,
        buffer_bytes: int = 512 * 1024,
        name: Optional[str] = None,
    ) -> None:
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        self.env = env
        self.name = name or f"{node_a.name}:{port_a}<->{node_b.name}:{port_b}"
        self.node_a, self.port_a = node_a, port_a
        self.node_b, self.port_b = node_b, port_b
        self.bandwidth_gbps = bandwidth_gbps
        self._a_to_b = _LinkDirection(
            env, f"{self.name}[a->b]", bandwidth_gbps, propagation_delay_ns, buffer_bytes
        )
        self._b_to_a = _LinkDirection(
            env, f"{self.name}[b->a]", bandwidth_gbps, propagation_delay_ns, buffer_bytes
        )
        # Pre-bind delivery: the endpoints never change after wiring, so
        # the per-frame transmit path does not rebuild these closures.
        self._a_to_b._deliver = lambda pkt: node_b.handle_packet(pkt, port_b)
        self._b_to_a._deliver = lambda pkt: node_a.handle_packet(pkt, port_a)
        node_a.attach_link(port_a, self)
        node_b.attach_link(port_b, self)

    def transmit(self, packet: Packet, sender: Node) -> None:
        """Send *packet* from *sender* toward the other end of the link."""
        if sender is self.node_a:
            self._a_to_b.transmit(packet)
        elif sender is self.node_b:
            self._b_to_a.transmit(packet)
        else:
            raise ValueError(f"{sender.name} is not attached to link {self.name}")

    # ------------------------------------------------------------------ #
    # Fault injection (control plane; see repro.faults)
    # ------------------------------------------------------------------ #

    def set_up(self, up: bool) -> None:
        """Bring both directions of the link up or down.

        While down, every frame offered to either direction is dropped
        and counted as a fault drop; frames already serialized or
        propagating still arrive (the outage severs new transmissions,
        not photons already in flight).
        """
        self._a_to_b.up = up
        self._b_to_a.up = up

    @property
    def is_up(self) -> bool:
        """True when both directions accept frames."""
        return self._a_to_b.up and self._b_to_a.up

    def set_loss(self, probability: float, seed: int = 0) -> None:
        """Open (or with 0.0, close) a random-loss window on both directions.

        Each direction draws from its own RNG derived from *seed*, so
        the drop pattern is reproducible for a given scenario seed and
        identical across the fast and reference simulation paths.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must lie in [0, 1], got {probability}")
        for salt, direction in enumerate((self._a_to_b, self._b_to_a)):
            direction.loss_probability = probability
            if probability > 0.0:
                direction._loss_rng = random.Random((seed * 2 + salt) & 0xFFFFFFFFFFFFFFFF)
            else:
                direction._loss_rng = None

    def set_jitter(self, jitter_ns: int, seed: int = 0) -> None:
        """Open (or with 0, close) a latency-jitter window on both directions.

        While active, each frame's propagation delay gains a uniform
        extra in ``[0, jitter_ns)`` drawn from a seed-derived RNG.
        """
        if jitter_ns < 0:
            raise ValueError(f"jitter_ns must be non-negative, got {jitter_ns}")
        for salt, direction in enumerate((self._a_to_b, self._b_to_a)):
            direction.jitter_ns = jitter_ns
            if jitter_ns > 0:
                direction._jitter_rng = random.Random((seed * 2 + salt + 1) & 0xFFFFFFFFFFFFFFFF)
            else:
                direction._jitter_rng = None

    def set_observability(self, recorder=None, profiler=None) -> None:
        """Install observability hooks on both directions (repro.obs)."""
        for direction in (self._a_to_b, self._b_to_a):
            direction.obs_recorder = recorder
            direction.obs_profiler = profiler

    def clear_faults(self) -> None:
        """Return the link to its fault-free state (up, lossless, jitterless)."""
        self.set_up(True)
        self.set_loss(0.0)
        self.set_jitter(0)

    def reset_stats(self) -> None:
        """Zero both directions' counters (live state — queue occupancy,
        serialization cursor — is untouched; see ControlPlaneManager.reset)."""
        self._a_to_b.stats.reset()
        self._b_to_a.stats.reset()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def direction_counters(self) -> "Tuple[LinkDirectionStats, LinkDirectionStats]":
        """Both directions' counters, ``(a->b, b->a)`` (control-plane view).

        The public surface the validation subsystem iterates for
        per-direction accounting identities, so invariants do not couple
        to the private direction layout.
        """
        return (self._a_to_b.stats, self._b_to_a.stats)

    def direction_stats(self, sender: Node) -> LinkDirectionStats:
        """Stats of the direction whose transmitter is *sender*."""
        if sender is self.node_a:
            return self._a_to_b.stats
        if sender is self.node_b:
            return self._b_to_a.stats
        raise ValueError(f"{sender.name} is not attached to link {self.name}")

    def total_drops(self) -> int:
        """Frames dropped in both directions (buffer overflows + faults)."""
        a, b = self._a_to_b.stats, self._b_to_a.stats
        return a.frames_dropped + a.fault_drops + b.frames_dropped + b.fault_drops

    def buffer_drops(self) -> int:
        """Frames lost to egress-buffer overflows in both directions."""
        return self._a_to_b.stats.frames_dropped + self._b_to_a.stats.frames_dropped

    def fault_drops(self) -> int:
        """Frames lost to injected faults (down/loss) in both directions."""
        return self._a_to_b.stats.fault_drops + self._b_to_a.stats.fault_drops

    def stats(self) -> Dict[str, float]:
        """Combined counters for both directions."""
        return {
            "a_to_b_sent": self._a_to_b.stats.frames_sent,
            "a_to_b_dropped": self._a_to_b.stats.frames_dropped,
            "a_to_b_bytes": self._a_to_b.stats.bytes_sent,
            "a_to_b_fault_drops": self._a_to_b.stats.fault_drops,
            "b_to_a_sent": self._b_to_a.stats.frames_sent,
            "b_to_a_dropped": self._b_to_a.stats.frames_dropped,
            "b_to_a_bytes": self._b_to_a.stats.bytes_sent,
            "b_to_a_fault_drops": self._b_to_a.stats.fault_drops,
        }
