"""Topology builders for the paper's testbed layouts.

Two layouts cover the whole evaluation:

* **Single server** (Fig. 5): one PktGen connected to the switch through
  two ports (so the generator can overdrive the single server-facing
  link), and one NF server connected through one port.
* **Multi server** (§6.2.3): up to eight NF servers, two per pipe, each
  with its own traffic generator and its own slice of the reserved
  switch memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import NfServerBinding
from repro.core.program import SwitchProgram
from repro.netsim.eventloop import EventLoop
from repro.netsim.link import Link
from repro.netsim.nic import NicSpec, NIC_10GE
from repro.netsim.server_node import NfServerNode
from repro.netsim.switch_node import SwitchNode
from repro.netsim.trafficgen_node import TrafficGenNode
from repro.nf.server import NfServerModel
from repro.traffic.pktgen import PktGenConfig
from repro.workloads.base import TrafficModel

#: Default egress-buffer size of a switch port (bytes); the baseline's
#: latency cliff at link saturation comes from this buffer filling up.
DEFAULT_PORT_BUFFER_BYTES = 256 * 1024


@dataclass
class ServerAttachment:
    """Everything attached to one NF-server binding."""

    binding: NfServerBinding
    pktgen: TrafficGenNode
    server: NfServerNode
    gen_links: List[Link]
    server_link: Link


class BaseTopology:
    """Common wiring logic for single- and multi-server layouts."""

    def __init__(self, env: EventLoop, program: SwitchProgram,
                 switch_latency_ns: int = SwitchNode.BASE_LATENCY_NS) -> None:
        self.env = env
        self.program = program
        self.switch = SwitchNode(env, program, base_latency_ns=switch_latency_ns)
        self.attachments: List[ServerAttachment] = []
        #: Optional chaos driver (see repro.faults); attached by the
        #: experiment runner when the scenario carries a ``faults`` spec
        #: and started alongside the traffic generators.
        self.fault_injector = None

    def attach_server(
        self,
        binding: NfServerBinding,
        server_model: NfServerModel,
        pktgen_config: PktGenConfig,
        nic_spec: NicSpec = NIC_10GE,
        gen_link_gbps: float = 100.0,
        server_link_gbps: Optional[float] = None,
        port_buffer_bytes: int = DEFAULT_PORT_BUFFER_BYTES,
        seed: int = 1,
        traffic_model: Optional[TrafficModel] = None,
        fast_path: bool = False,
    ) -> ServerAttachment:
        """Wire one binding: a PktGen on the ingress ports, a server on the NF port."""
        pktgen = TrafficGenNode(
            self.env,
            pktgen_config,
            tx_ports=list(range(len(binding.ingress_ports))),
            name=f"pktgen-{binding.name}",
            traffic_model=traffic_model,
        )
        gen_links = []
        for local_port, switch_port in enumerate(binding.ingress_ports):
            gen_links.append(
                Link(
                    self.env,
                    pktgen,
                    local_port,
                    self.switch,
                    switch_port,
                    bandwidth_gbps=gen_link_gbps,
                    buffer_bytes=port_buffer_bytes,
                    name=f"{binding.name}-gen{local_port}",
                )
            )
        server = NfServerNode(
            self.env,
            server_model,
            nic_spec=nic_spec,
            name=f"server-{binding.name}",
            switch_port=0,
            seed=seed,
            cache_cost_model=fast_path,
        )
        server_link = Link(
            self.env,
            server,
            0,
            self.switch,
            binding.nf_port,
            bandwidth_gbps=server_link_gbps or nic_spec.speed_gbps,
            buffer_bytes=port_buffer_bytes,
            name=f"{binding.name}-server",
        )
        attachment = ServerAttachment(
            binding=binding,
            pktgen=pktgen,
            server=server,
            gen_links=gen_links,
            server_link=server_link,
        )
        self.attachments.append(attachment)
        return attachment

    # ------------------------------------------------------------------ #
    # Execution helpers
    # ------------------------------------------------------------------ #

    def attach_fault_injector(self, injector) -> None:
        """Register *injector* to be started with the traffic generators."""
        if self.fault_injector is not None:
            raise ValueError("a fault injector is already attached")
        self.fault_injector = injector

    def start_traffic(self, duration_ns: int) -> None:
        """Start every traffic generator (and any fault injector) for *duration_ns*.

        The injector arms before the generators so same-tick fault
        events execute ahead of same-tick traffic bursts — identically
        in the reference and fast event loops (both preserve scheduling
        order for ties).
        """
        if self.fault_injector is not None:
            self.fault_injector.start(duration_ns)
        for attachment in self.attachments:
            attachment.pktgen.start(duration_ns)

    def run_until(self, horizon_ns: int) -> None:
        """Advance the simulation to *horizon_ns*."""
        self.env.run_until(horizon_ns)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Counter snapshot of every node and link (used for warm-up deltas)."""
        snap: Dict[str, Dict[str, float]] = {"switch": self.switch.stats()}
        for attachment in self.attachments:
            name = attachment.binding.name
            snap[f"pktgen.{name}"] = attachment.pktgen.stats()
            snap[f"server.{name}"] = attachment.server.stats()
            link_drops = attachment.server_link.total_drops()
            link_drops += sum(link.total_drops() for link in attachment.gen_links)
            fault_drops = attachment.server_link.fault_drops()
            fault_drops += sum(link.fault_drops() for link in attachment.gen_links)
            snap[f"links.{name}"] = {
                "dropped_frames": float(link_drops),
                "fault_drops": float(fault_drops),
            }
        return snap


class SingleServerTopology(BaseTopology):
    """Fig. 5: PktGen ↔ switch ↔ one NF server."""

    def __init__(
        self,
        env: EventLoop,
        program: SwitchProgram,
        server_model: NfServerModel,
        pktgen_config: PktGenConfig,
        nic_spec: NicSpec = NIC_10GE,
        gen_link_gbps: float = 100.0,
        server_link_gbps: Optional[float] = None,
        port_buffer_bytes: int = DEFAULT_PORT_BUFFER_BYTES,
        seed: int = 1,
        traffic_model: Optional[TrafficModel] = None,
        fast_path: bool = False,
    ) -> None:
        super().__init__(env, program)
        if len(program.bindings) != 1:
            raise ValueError("SingleServerTopology expects a program with exactly one binding")
        self.attachment = self.attach_server(
            binding=program.bindings[0],
            server_model=server_model,
            pktgen_config=pktgen_config,
            nic_spec=nic_spec,
            gen_link_gbps=gen_link_gbps,
            server_link_gbps=server_link_gbps,
            port_buffer_bytes=port_buffer_bytes,
            seed=seed,
            traffic_model=traffic_model,
            fast_path=fast_path,
        )

    @property
    def pktgen(self) -> TrafficGenNode:
        """The single traffic generator."""
        return self.attachment.pktgen

    @property
    def server(self) -> NfServerNode:
        """The single NF server."""
        return self.attachment.server


class MultiServerTopology(BaseTopology):
    """§6.2.3: several NF servers share the switch, one slice of memory each."""

    def __init__(
        self,
        env: EventLoop,
        program: SwitchProgram,
        server_models: List[NfServerModel],
        pktgen_configs: List[PktGenConfig],
        nic_spec: NicSpec = NIC_10GE,
        gen_link_gbps: float = 100.0,
        server_link_gbps: Optional[float] = None,
        port_buffer_bytes: int = DEFAULT_PORT_BUFFER_BYTES,
        traffic_model: Optional[TrafficModel] = None,
        fast_path: bool = False,
    ) -> None:
        super().__init__(env, program)
        bindings = program.bindings
        if not (len(bindings) == len(server_models) == len(pktgen_configs)):
            raise ValueError(
                "need exactly one server model and one PktGen config per binding"
            )
        for index, (binding, model, config) in enumerate(
            zip(bindings, server_models, pktgen_configs)
        ):
            self.attach_server(
                binding=binding,
                server_model=model,
                pktgen_config=config,
                nic_spec=nic_spec,
                gen_link_gbps=gen_link_gbps,
                server_link_gbps=server_link_gbps,
                port_buffer_bytes=port_buffer_bytes,
                seed=index + 1,
                traffic_model=traffic_model,
                fast_path=fast_path,
            )
