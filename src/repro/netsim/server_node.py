"""The NF server as a simulation node.

The server is modeled as: NIC receive path (byte-rate limited, finite
buffering) → PCIe DMA into host memory → the NF framework pipeline
(whose throughput is set by its slowest stage and whose latency is the
sum of its stages, per :class:`~repro.nf.server.NfServerModel`) → PCIe
back to the NIC → NIC transmit path → the wire toward the switch.

Packets the NF chain drops either vanish (leaving their parked payload
to the switch's evictor) or, when Explicit Drops are enabled, are turned
into a truncated notification carrying the PayloadPark header with the
Explicit-Drop opcode (§6.2.4).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.core.header import OP_EXPLICIT_DROP
from repro.netsim.eventloop import EventLoop
from repro.netsim.nic import NicPort, NicSpec, NIC_10GE
from repro.netsim.node import Node
from repro.netsim.pcie import PcieBus, PcieSpec
from repro.nf.server import NfServerModel
from repro.packet.packet import Packet


class NfServerNode(Node):
    """A commodity server running an NF framework and chain."""

    def __init__(
        self,
        env: EventLoop,
        model: NfServerModel,
        nic_spec: NicSpec = NIC_10GE,
        pcie_spec: Optional[PcieSpec] = None,
        name: str = "nf-server",
        switch_port: int = 0,
        seed: int = 1,
        cache_cost_model: bool = False,
    ) -> None:
        super().__init__(env, name)
        self.model = model
        self.nic = NicPort(nic_spec)
        self.pcie = PcieBus(pcie_spec or PcieSpec())
        self.switch_port = switch_port
        self._rng = random.Random(seed)
        self._worker_free_at_ns = 0
        self._in_server = 0
        # Fast path: the cost model is a pure function of the chain and
        # framework config, so precompute it once instead of re-walking
        # the chain's cycle estimates for every packet.  The reference
        # path keeps querying the model live (None disables the cache).
        if cache_cost_model:
            self._bottleneck_ns: Optional[float] = model.bottleneck_service_ns()
            self._pipeline_latency_ns: Optional[float] = model.pipeline_latency_ns()
        else:
            self._bottleneck_ns = None
            self._pipeline_latency_ns = None
        self._buffer_capacity = min(
            model.buffer_capacity_packets(),
            nic_spec.rx_ring_entries + model.config.framework.ring_entries * len(model.chain),
        )
        # Counters.
        self.accepted_packets = 0
        self.processed_packets = 0
        self.forwarded_packets = 0
        self.chain_dropped_packets = 0
        self.explicit_drop_notifications = 0
        self.overflow_drops = 0
        self.busy_ns = 0
        # Observability hooks (repro.obs): None keeps the hot path lean.
        self.obs_recorder = None
        self.obs_profiler = None

    def invalidate_cost_cache(self) -> None:
        """Recompute the memoized cost model after an NF chain mutation.

        Control-plane churn (firewall rule bursts) changes the chain's
        per-stage cycle estimates mid-run.  The reference path queries
        the model live for every packet and picks the change up
        immediately; this hook re-derives the fast path's cached values
        at the same simulated instant, keeping the two paths identical
        under active fault schedules.  No-op when caching is off.
        """
        if self._bottleneck_ns is not None:
            self._bottleneck_ns = self.model.bottleneck_service_ns()
            self._pipeline_latency_ns = self.model.pipeline_latency_ns()

    # ------------------------------------------------------------------ #
    # Receive path
    # ------------------------------------------------------------------ #

    def handle_packet(self, packet: Packet, port: int) -> None:
        """A frame arrived from the switch on the server's NIC port."""
        profiler = self.obs_profiler
        if profiler is None:
            self._receive(packet)
            return
        profiler.enter("nf_processing")
        try:
            self._receive(packet)
        finally:
            profiler.exit()

    def _receive(self, packet: Packet) -> None:
        if self._in_server >= self._buffer_capacity:
            self.nic.note_rx_drop()
            self.overflow_drops += 1
            recorder = self.obs_recorder
            if recorder is not None:
                pkt_id = packet.meta.get("obs_pkt")
                if pkt_id is not None:
                    recorder.packet_dropped(
                        pkt_id, self.env.now, self.name, "server-buffer-overflow"
                    )
            return
        self._in_server += 1
        self.accepted_packets += 1
        wire_bytes = packet.wire_length
        nic_done = self.nic.rx_ready_at(self.env.now, wire_bytes)
        pcie_delay = self.pcie.rx_transfer(wire_bytes)
        ready = nic_done + pcie_delay
        bottleneck_ns = (
            self._bottleneck_ns
            if self._bottleneck_ns is not None
            else self.model.bottleneck_service_ns()
        )
        service = self._jittered(bottleneck_ns)
        start = max(ready, self._worker_free_at_ns)
        finish = start + service
        self._worker_free_at_ns = finish
        self.busy_ns += service
        # The remaining (non-bottleneck) pipeline stages add latency but do
        # not constrain throughput.
        pipeline_latency_ns = (
            self._pipeline_latency_ns
            if self._pipeline_latency_ns is not None
            else self.model.pipeline_latency_ns()
        )
        completion = finish + int(pipeline_latency_ns - service)
        completion = max(completion, finish)
        self.env.schedule_at(completion, lambda: self._complete(packet))

    def _jittered(self, service_ns: float) -> int:
        jitter = self.model.config.service_jitter
        if jitter <= 0:
            return int(service_ns)
        factor = max(0.1, self._rng.gauss(1.0, jitter))
        return max(1, int(service_ns * factor))

    # ------------------------------------------------------------------ #
    # Completion / transmit path
    # ------------------------------------------------------------------ #

    def _complete(self, packet: Packet) -> None:
        profiler = self.obs_profiler
        if profiler is None:
            self._complete_now(packet)
            return
        profiler.enter("nf_processing")
        try:
            self._complete_now(packet)
        finally:
            profiler.exit()

    def _complete_now(self, packet: Packet) -> None:
        self._in_server -= 1
        self.processed_packets += 1
        result = self.model.process_packet(packet)
        recorder = self.obs_recorder
        if recorder is not None:
            pkt_id = packet.meta.get("obs_pkt")
            if pkt_id is not None:
                recorder.nf_processed(
                    pkt_id, self.env.now, self.name, result.forwarded
                )
        if not result.forwarded:
            self.chain_dropped_packets += 1
            if recorder is not None:
                pkt_id = packet.meta.get("obs_pkt")
                if pkt_id is not None:
                    recorder.packet_dropped(
                        pkt_id, self.env.now, self.name, "nf-chain-drop"
                    )
            if (
                self.model.wants_explicit_drop
                and packet.pp is not None
                and packet.pp.enb == 1
            ):
                self._send_explicit_drop(packet)
            return
        self._transmit(packet)

    def _transmit(self, packet: Packet) -> None:
        wire_bytes = packet.wire_length
        pcie_delay = self.pcie.tx_transfer(wire_bytes)
        tx_done = self.nic.tx_ready_at(self.env.now + pcie_delay, wire_bytes)
        self.forwarded_packets += 1
        self.env.schedule_at(tx_done, lambda: self.send_out(self.switch_port, packet))

    def _send_explicit_drop(self, packet: Packet) -> None:
        """Truncate the packet and return it with the Explicit-Drop opcode."""
        if packet.payload_length:
            packet.park_leading_payload(packet.payload_length)
        packet.pp.op = OP_EXPLICIT_DROP
        self.explicit_drop_notifications += 1
        self._transmit(packet)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def queue_occupancy(self) -> int:
        """Packets currently buffered inside the server."""
        return self._in_server

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for warm-up-window deltas."""
        return {
            "accepted_packets": self.accepted_packets,
            "processed_packets": self.processed_packets,
            "forwarded_packets": self.forwarded_packets,
            "chain_dropped_packets": self.chain_dropped_packets,
            "explicit_drop_notifications": self.explicit_drop_notifications,
            "overflow_drops": self.overflow_drops,
            "pcie_rx_bytes": self.pcie.rx_bytes,
            "pcie_tx_bytes": self.pcie.tx_bytes,
            "busy_ns": self.busy_ns,
        }
