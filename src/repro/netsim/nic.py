"""NIC models.

The evaluation uses an Intel 82599ES 10 GbE NIC and an Intel XL710
40 GbE NIC.  Two NIC properties matter for reproducing the paper's
results: the effective per-direction byte throughput the device can
sustain toward the host (the XL710 is well documented to fall short of
40 Gb/s for small and medium frames because of PCIe/descriptor
overheads — this is what caps the baseline at ≈ 34 Gb/s in Fig. 16),
and the receive descriptor ring whose depth bounds in-server buffering.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NicSpec:
    """Static characteristics of a NIC."""

    name: str
    speed_gbps: float
    effective_rx_gbps: float
    effective_tx_gbps: float
    rx_ring_entries: int = 1024
    tx_ring_entries: int = 1024
    rx_processing_ns: int = 300  # fixed per-packet DMA/IRQ-less poll cost


#: Intel 82599ES dual-port 10 GbE NIC.
NIC_10GE = NicSpec(
    name="Intel 82599ES 10GE",
    speed_gbps=10.0,
    effective_rx_gbps=9.7,
    effective_tx_gbps=9.7,
    rx_ring_entries=1024,
)

#: Intel XL710 dual-port 40 GbE NIC (effective host throughput ≈ 34 Gb/s).
NIC_40GE = NicSpec(
    name="Intel XL710 40GE",
    speed_gbps=40.0,
    effective_rx_gbps=34.0,
    effective_tx_gbps=34.0,
    rx_ring_entries=1024,
)


class NicPort:
    """Run-time state of one NIC port: a byte-rate limiter plus a ring."""

    def __init__(self, spec: NicSpec) -> None:
        self.spec = spec
        self.rx_free_at_ns = 0
        self.tx_free_at_ns = 0
        self.rx_packets = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.tx_bytes = 0
        self.rx_dropped = 0

    def rx_ready_at(self, now_ns: int, wire_bytes: int) -> int:
        """Time at which the NIC finishes moving a received frame to the host."""
        start = max(now_ns, self.rx_free_at_ns)
        done = start + int(round(wire_bytes * 8 / self.spec.effective_rx_gbps))
        self.rx_free_at_ns = done
        self.rx_packets += 1
        self.rx_bytes += wire_bytes
        return done + self.spec.rx_processing_ns

    def tx_ready_at(self, now_ns: int, wire_bytes: int) -> int:
        """Time at which the NIC finishes transmitting a frame from the host."""
        start = max(now_ns, self.tx_free_at_ns)
        done = start + int(round(wire_bytes * 8 / self.spec.effective_tx_gbps))
        self.tx_free_at_ns = done
        self.tx_packets += 1
        self.tx_bytes += wire_bytes
        return done

    def note_rx_drop(self) -> None:
        """Record a frame dropped because the receive path was saturated."""
        self.rx_dropped += 1
