"""The switch as a simulation node.

Wraps a :class:`~repro.core.program.SwitchProgram` (PayloadPark or
baseline): every frame delivered by a link is run through the program's
pipe, and the resulting egress decision is applied after the switch's
forwarding latency (plus any recirculation penalty the program reports).
Egress contention and buffering are modeled by the outgoing link.
"""

from __future__ import annotations

from typing import Dict

from repro.core.program import SwitchProgram
from repro.netsim.eventloop import EventLoop
from repro.netsim.node import Node
from repro.packet.packet import Packet


class SwitchNode(Node):
    """A Tofino-class switch running a dataplane program."""

    #: Cut-through forwarding latency of a Tofino-class switch pipeline.
    BASE_LATENCY_NS = 800

    def __init__(
        self,
        env: EventLoop,
        program: SwitchProgram,
        name: str = "switch",
        base_latency_ns: int = BASE_LATENCY_NS,
    ) -> None:
        super().__init__(env, name)
        self.program = program
        self.base_latency_ns = base_latency_ns
        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped = 0
        self.useful_bytes_to_nf = 0
        self.packets_to_nf = 0
        self.drop_reasons: Dict[str, int] = {}
        self._nf_ports = {binding.nf_port for binding in program.bindings}
        # Observability hooks (repro.obs): None keeps the hot path lean.
        self.obs_recorder = None
        self.obs_profiler = None

    def handle_packet(self, packet: Packet, port: int) -> None:
        """Run the frame through the dataplane program and forward it."""
        self.packets_in += 1
        profiler = self.obs_profiler
        if profiler is None:
            ctx = self.program.process(packet, port)
        else:
            profiler.enter("pipeline_walk")
            try:
                ctx = self.program.process(packet, port)
            finally:
                profiler.exit()
        if ctx.dropped:
            self.packets_dropped += 1
            self.drop_reasons[ctx.drop_reason] = self.drop_reasons.get(ctx.drop_reason, 0) + 1
            self._record_drop(packet, ctx.drop_reason)
            return
        if ctx.egress_port is None:
            self.packets_dropped += 1
            self.drop_reasons["no-egress-decision"] = (
                self.drop_reasons.get("no-egress-decision", 0) + 1
            )
            self._record_drop(packet, "no-egress-decision")
            return
        egress = ctx.egress_port
        if egress in self._nf_ports:
            # Goodput "from the RMT switch's perspective": useful header
            # bytes handed to the NF server (§6.1).
            self.useful_bytes_to_nf += packet.useful_bytes
            self.packets_to_nf += 1
        latency = self.base_latency_ns
        if ctx.recirculations:
            # Programs only add latency for recirculated passes, so the
            # (per-packet) lookup is skipped for the common single-pass
            # case.
            latency += self.program.extra_latency_ns(ctx)
        self.packets_out += 1
        self.env.schedule_in(latency, lambda: self.send_out(egress, packet))

    def _record_drop(self, packet: Packet, reason: str) -> None:
        """Flight-recorder drop hook (off the hot path's common case)."""
        recorder = self.obs_recorder
        if recorder is not None:
            pkt_id = packet.meta.get("obs_pkt")
            if pkt_id is not None:
                recorder.packet_dropped(pkt_id, self.env.now, self.name, reason)

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for warm-up-window deltas."""
        return {
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
            "packets_dropped": self.packets_dropped,
            "packets_to_nf": self.packets_to_nf,
            "useful_bytes_to_nf": self.useful_bytes_to_nf,
        }
