"""Declarative fault schedules: explicit events plus seeded generators.

An :class:`EventSchedule` is plain data — a name, a list of explicit
event records, and a list of *generators* that expand into periodic
event trains with seeded random phase — so it loads from YAML/JSON/dict
specs, travels inside campaign grids and fuzz descriptors, and hashes
stably.  :meth:`EventSchedule.materialize` resolves it against a
concrete run horizon and seed into a sorted list of
:class:`~repro.faults.events.FaultEvent` instances; the same
``(spec, seed, horizon)`` triple always yields the same events, which
is what lets the fast-vs-slow and seed-determinism metamorphic
relations hold under active fault schedules.

Spec format (YAML shown; the dict form is identical)::

    name: my-chaos            # optional
    description: ...          # optional
    events:
      - {kind: link_down, at_frac: 0.3, duration_frac: 0.1, link: server}
      - {kind: expiry_threshold, at_us: 2000, value: 5}
    generators:
      - {kind: backend_churn, period_frac: 0.2, action: flap}
      - {kind: link_loss, period_frac: 0.25, duration_frac: 0.05,
         probability: 0.05, jitter: 0.3}

A generator fires every ``period_us``/``period_frac`` from
``start_us``/``start_frac`` (default: one period in) until the horizon
(or ``count`` firings); ``jitter`` (a fraction of the period) perturbs
each firing time with the schedule's seeded RNG.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import FaultSpecError
from repro.faults.events import (
    EVENT_KINDS,
    FaultEvent,
    WINDOW_KINDS,
    validate_event_record,
)
from repro.workloads.base import derived_rng

#: RNG salt namespace for generator phase jitter (distinct from the
#: packet-content and arrival-gap salts used elsewhere).
_GENERATOR_SALT = 0x_FA_01

_TIMING_KEYS = {"at_us", "at_frac", "duration_us", "duration_frac"}
_GENERATOR_KEYS = {"kind", "start_us", "start_frac", "period_us", "period_frac",
                   "repeat", "jitter", "duration_us", "duration_frac"}


def _validate_generator(record: Mapping[str, Any]) -> None:
    if not isinstance(record, Mapping):
        raise FaultSpecError(f"fault generator must be a mapping, got {record!r}")
    kind = record.get("kind")
    if kind not in EVENT_KINDS:
        raise FaultSpecError(
            f"fault generator needs a known 'kind'; got {kind!r} "
            f"(expected one of {sorted(EVENT_KINDS)})"
        )
    if "period_us" not in record and "period_frac" not in record:
        raise FaultSpecError(f"fault generator {kind!r} needs 'period_us' or 'period_frac'")
    for key in ("period_us", "period_frac"):
        if key in record and float(record[key]) <= 0:
            raise FaultSpecError(f"generator {key} must be positive, got {record[key]}")
    jitter = float(record.get("jitter", 0.0))
    if not 0.0 <= jitter <= 1.0:
        raise FaultSpecError(f"generator jitter must lie in [0, 1], got {jitter}")
    repeat = record.get("repeat")
    if repeat is not None and int(repeat) < 1:
        raise FaultSpecError(f"generator repeat must be at least 1, got {repeat}")
    for duration_key in ("duration_us", "duration_frac"):
        duration = record.get(duration_key)
        if duration is None:
            continue
        if kind not in WINDOW_KINDS:
            raise FaultSpecError(f"fault generator {kind!r} does not take a duration")
        if float(duration) < 0:
            raise FaultSpecError(
                f"generator {duration_key} must be non-negative, got {duration}"
            )
    # Validate the event payload the generator will emit (timing keys are
    # supplied per firing, so stub them for the structural check).
    required, optional = EVENT_KINDS[kind]
    payload = {
        key: value for key, value in record.items()
        if key in required or key in optional or key == "kind"
    }
    unknown = set(record) - _GENERATOR_KEYS - required - optional
    if unknown:
        raise FaultSpecError(
            f"fault generator {kind!r} has unknown key(s) {sorted(unknown)}"
        )
    validate_event_record({**payload, "at_us": 0.0})


@dataclass(frozen=True)
class EventSchedule:
    """A declarative, seed-reproducible fault schedule."""

    name: str = "custom"
    description: str = ""
    events: Sequence[Mapping[str, Any]] = field(default_factory=tuple)
    generators: Sequence[Mapping[str, Any]] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.events and not self.generators:
            raise FaultSpecError(
                "a fault schedule needs at least one event or generator"
            )
        for record in self.events:
            validate_event_record(record)
        for record in self.generators:
            _validate_generator(record)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_spec(cls, spec: Any) -> "EventSchedule":
        """Build a schedule from a profile name, a dict spec, or a schedule.

        This is the resolution point for ``ScenarioConfig.faults``: a
        string names a registered profile, a mapping is an inline spec,
        and an existing schedule passes through unchanged.
        """
        if isinstance(spec, EventSchedule):
            return spec
        if isinstance(spec, str):
            from repro.faults.registry import get_fault_profile

            return get_fault_profile(spec)
        if isinstance(spec, Mapping):
            known = {"name", "description", "events", "generators"}
            unknown = set(spec) - known
            if unknown:
                raise FaultSpecError(
                    f"unknown fault-schedule key(s) {sorted(unknown)}; known: {sorted(known)}"
                )
            events = spec.get("events") or ()  # YAML 'events:' parses to None
            generators = spec.get("generators") or ()
            if not isinstance(events, (list, tuple)) or not isinstance(
                generators, (list, tuple)
            ):
                raise FaultSpecError(
                    "fault-schedule 'events'/'generators' must be lists of mappings"
                )
            return cls(
                name=str(spec.get("name", "custom")),
                description=str(spec.get("description", "")),
                events=tuple(dict(event) for event in events),
                generators=tuple(dict(gen) for gen in generators),
            )
        raise FaultSpecError(
            f"faults spec must be a profile name, mapping or EventSchedule; got {spec!r}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form, round-trippable through :meth:`from_spec`."""
        return {
            "name": self.name,
            "description": self.description,
            "events": [dict(event) for event in self.events],
            "generators": [dict(gen) for gen in self.generators],
        }

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #

    def materialize(self, seed: int, horizon_ns: int) -> List[FaultEvent]:
        """Resolve the schedule against a run horizon into concrete events.

        Fractional times resolve against *horizon_ns*; absolute events
        beyond the horizon are silently dropped (they would never fire).
        Events are returned sorted by time with materialization order as
        the tie-break, so the injector schedules them deterministically.
        """
        if horizon_ns <= 0:
            raise FaultSpecError(f"horizon_ns must be positive, got {horizon_ns}")
        raw: List[FaultEvent] = []
        sequence = 0
        for record in self.events:
            event = self._resolve_event(record, horizon_ns, sequence)
            if event is not None:
                raw.append(event)
            sequence += 1
        for gen_index, record in enumerate(self.generators):
            rng = derived_rng(seed, _GENERATOR_SALT + gen_index)
            period_ns = self._resolve_ns(record, "period", horizon_ns)
            if period_ns <= 0:
                # Spec validation bounds the *expressed* period, but a
                # sub-nanosecond period_us or a period_frac of a tiny
                # horizon truncates to 0 here — which would never advance
                # the firing cursor and generate events forever.
                raise FaultSpecError(
                    f"fault generator {record['kind']!r}: period resolves to "
                    f"{period_ns} ns against a {horizon_ns} ns horizon; the "
                    "period must be at least 1 ns"
                )
            start_ns = self._resolve_ns(record, "start", horizon_ns, default=period_ns)
            repeat = record.get("repeat")
            jitter = float(record.get("jitter", 0.0))
            payload = {
                key: value for key, value in record.items()
                if key not in _GENERATOR_KEYS or key in ("duration_us", "duration_frac")
            }
            fired = 0
            when_ns = start_ns
            while when_ns < horizon_ns and (repeat is None or fired < int(repeat)):
                at_ns = when_ns
                if jitter > 0.0:
                    at_ns += int((rng.random() - 0.5) * jitter * period_ns)
                event = self._resolve_event(
                    {**payload, "kind": record["kind"], "at_us": max(at_ns, 0) / 1_000.0},
                    horizon_ns,
                    sequence,
                )
                if event is not None:
                    raw.append(event)
                sequence += 1
                fired += 1
                when_ns += period_ns
        raw.sort(key=lambda event: (event.at_ns, event.sequence))
        return raw

    @staticmethod
    def _resolve_ns(
        record: Mapping[str, Any], prefix: str, horizon_ns: int,
        default: Optional[int] = None,
    ) -> int:
        if f"{prefix}_us" in record:
            return int(float(record[f"{prefix}_us"]) * 1_000)
        if f"{prefix}_frac" in record:
            return int(float(record[f"{prefix}_frac"]) * horizon_ns)
        if default is not None:
            return default
        return 0

    @classmethod
    def _resolve_event(
        cls, record: Mapping[str, Any], horizon_ns: int, sequence: int
    ) -> Optional[FaultEvent]:
        at_ns = cls._resolve_ns(record, "at", horizon_ns)
        if at_ns >= horizon_ns:
            return None
        params = {
            key: value for key, value in record.items()
            if key not in _TIMING_KEYS and key != "kind"
        }
        duration_ns = cls._resolve_ns(record, "duration", horizon_ns)
        if duration_ns and record["kind"] in WINDOW_KINDS:
            params["duration_ns"] = duration_ns
        return FaultEvent(
            kind=record["kind"], at_ns=at_ns, params=params, sequence=sequence
        )

    def describe(self) -> Dict[str, Any]:
        """Human-oriented summary for ``repro faults describe``."""
        return {
            "name": self.name,
            "description": self.description or "(no description)",
            "events": json.dumps([dict(event) for event in self.events]),
            "generators": json.dumps([dict(gen) for gen in self.generators]),
        }
