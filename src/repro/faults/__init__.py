"""Fault injection & control-plane churn: the chaos axis of the evaluation.

The paper's claim is that payload parking survives *real* operating
conditions — NF backends coming and going, rules being pushed, links
degrading — not just static testbeds.  This package makes those
conditions a first-class, declarative scenario dimension:

* :mod:`~repro.faults.events` — the atomic timed operations (link
  down/up, loss and latency-jitter windows, Maglev backend churn,
  firewall rule bursts, expiry-threshold reconfiguration, parked-payload
  drains);
* :mod:`~repro.faults.schedule` — :class:`EventSchedule`, a plain-data
  YAML/dict spec of explicit events plus seeded periodic generators,
  materialized deterministically against a run horizon;
* :mod:`~repro.faults.injector` — :class:`FaultInjectorNode`, the
  simulation node that executes a schedule against the live testbed
  through a :class:`~repro.controlplane.manager.ControlPlaneManager`;
* :mod:`~repro.faults.registry` — named profiles (``link-flap``,
  ``backend-churn``, ``chaos-mix``, …) swept by campaigns and the
  scenario fuzzer.

CLI: ``repro faults list|describe|preview`` and ``repro run <fig>
--faults <profile>``.  Campaigns sweep profiles via a ``faults`` grid
axis; every mutation preserves fast-vs-slow equality and seed
determinism (the chaos test suite proves it).
"""

from repro.faults.events import EVENT_KINDS, FaultEvent, validate_event_record
from repro.faults.injector import FaultInjectorNode
from repro.faults.registry import (
    FAULT_REGISTRY,
    fault_profile_names,
    get_fault_profile,
    register_fault_profile,
)
from repro.faults.schedule import EventSchedule

__all__ = [
    "EVENT_KINDS",
    "EventSchedule",
    "FAULT_REGISTRY",
    "FaultEvent",
    "FaultInjectorNode",
    "fault_profile_names",
    "get_fault_profile",
    "register_fault_profile",
    "validate_event_record",
]
