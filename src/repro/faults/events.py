"""Fault events: the atomic operations a chaos schedule injects.

A :class:`FaultEvent` is one timed control-plane or environment action
applied to a *running* testbed: a link going down, a loss or latency
window opening on a link, a Maglev backend draining out of the pool, a
firewall rule burst, an expiry-threshold change, or a parked-payload
drain.  Events are plain data (kind + time + parameter mapping), so
schedules serialize into campaign specs and fuzz corpus entries
unchanged, and the injector resolves targets (links, NFs, bindings)
only at execution time against the live topology.

Times are expressed either absolutely (``at_us``, simulated
microseconds from traffic start) or as a fraction of the run horizon
(``at_frac`` in ``[0, 1]``); fraction-based events let one profile
adapt to any scenario duration or ``--time-scale`` setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.errors import FaultSpecError

#: Event kind -> (required params, optional params).  ``at_us``/``at_frac``
#: and ``duration_us``/``duration_frac`` are handled generically.
EVENT_KINDS: Dict[str, Tuple[frozenset, frozenset]] = {
    # Take the targeted link(s) down; with a duration, schedule the
    # matching link_up automatically.
    "link_down": (frozenset(), frozenset({"link", "binding"})),
    "link_up": (frozenset(), frozenset({"link", "binding"})),
    # Open a random-loss window: each frame is dropped with
    # ``probability`` while the window is active.
    "link_loss": (frozenset({"probability"}), frozenset({"link", "binding"})),
    # Open a latency-jitter window: each frame's propagation delay gains
    # a uniform extra in [0, jitter_ns].
    "link_jitter": (frozenset({"jitter_ns"}), frozenset({"link", "binding"})),
    # Maglev pool churn: drain (remove), add, or flap (remove + re-add)
    # ``count`` backends on every load balancer in the NF chains.
    "backend_churn": (frozenset(), frozenset({"action", "count"})),
    # Firewall ACL churn: add/remove ``count`` rules (an added rule may
    # carry a ``subnet`` to actually blacklist traffic).
    "firewall_churn": (frozenset(), frozenset({"action", "count", "subnet"})),
    # Mid-run expiry-threshold reconfiguration (PayloadPark runs only).
    "expiry_threshold": (frozenset({"value"}), frozenset()),
    # Control-plane SRAM reclamation: drain a fraction of the occupied
    # parking slots, accounting each as an eviction (PayloadPark only).
    "park_drain": (frozenset(), frozenset({"fraction", "binding"})),
}

#: Kinds that open a window and close it ``duration`` later.
WINDOW_KINDS = frozenset({"link_down", "link_loss", "link_jitter"})

#: Link selectors the injector understands (besides explicit names).
LINK_SELECTORS = ("server", "gen", "gen0", "gen1", "all")

#: Backend churn actions.
CHURN_ACTIONS = ("remove", "add", "flap")


@dataclass(frozen=True)
class FaultEvent:
    """One concrete injection: *kind* applied at *at_ns* with *params*.

    Instances are produced by :meth:`EventSchedule.materialize
    <repro.faults.schedule.EventSchedule.materialize>`, which has already
    resolved fractional times against the run horizon; ``at_ns`` is
    absolute simulated time from traffic start.
    """

    kind: str
    at_ns: int
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Materialization order; salts the per-event RNGs so two loss
    #: windows on the same link draw independent sequences.
    sequence: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise FaultSpecError(
                f"unknown fault event kind {self.kind!r}; "
                f"expected one of {sorted(EVENT_KINDS)}"
            )
        if self.at_ns < 0:
            raise FaultSpecError(f"event time must be non-negative, got {self.at_ns}")

    @property
    def duration_ns(self) -> int:
        """Window length in nanoseconds (0 for instantaneous events)."""
        return int(self.params.get("duration_ns", 0))

    def as_row(self) -> Dict[str, Any]:
        """Flat dict for preview tables and JSON output."""
        row: Dict[str, Any] = {"at_us": self.at_ns / 1_000.0, "kind": self.kind}
        for key, value in sorted(self.params.items()):
            if key == "duration_ns":
                row["duration_us"] = value / 1_000.0
            else:
                row[key] = value
        return row


def validate_event_record(record: Mapping[str, Any]) -> None:
    """Structurally validate one raw event record from a spec.

    Raises :class:`~repro.errors.FaultSpecError` naming the offending
    key, so campaign files and CLI specs fail with actionable messages
    before any simulation starts.
    """
    if not isinstance(record, Mapping):
        raise FaultSpecError(f"fault event must be a mapping, got {record!r}")
    kind = record.get("kind")
    if kind not in EVENT_KINDS:
        raise FaultSpecError(
            f"fault event needs a known 'kind'; got {kind!r} "
            f"(expected one of {sorted(EVENT_KINDS)})"
        )
    required, optional = EVENT_KINDS[kind]
    timing = {"at_us", "at_frac", "duration_us", "duration_frac"}
    allowed = required | optional | timing | {"kind"}
    unknown = set(record) - allowed
    if unknown:
        raise FaultSpecError(
            f"fault event {kind!r} has unknown key(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    missing = required - set(record)
    if missing:
        raise FaultSpecError(f"fault event {kind!r} is missing {sorted(missing)}")
    if "at_us" not in record and "at_frac" not in record:
        raise FaultSpecError(f"fault event {kind!r} needs 'at_us' or 'at_frac'")
    if "at_us" in record and "at_frac" in record:
        raise FaultSpecError(f"fault event {kind!r}: give 'at_us' or 'at_frac', not both")
    frac = record.get("at_frac")
    if frac is not None and not 0.0 <= float(frac) <= 1.0:
        raise FaultSpecError(f"at_frac must lie in [0, 1], got {frac}")
    for duration_key in ("duration_us", "duration_frac"):
        duration = record.get(duration_key)
        if duration is not None and float(duration) < 0:
            raise FaultSpecError(
                f"{duration_key} must be non-negative, got {duration}"
            )
    if ("duration_us" in record or "duration_frac" in record) and kind not in WINDOW_KINDS:
        raise FaultSpecError(f"fault event {kind!r} does not take a duration")
    _validate_params(kind, record)


def _validate_params(kind: str, record: Mapping[str, Any]) -> None:
    if kind == "link_loss":
        probability = float(record["probability"])
        if not 0.0 < probability <= 1.0:
            raise FaultSpecError(f"loss probability must lie in (0, 1], got {probability}")
    if kind == "link_jitter" and int(record["jitter_ns"]) <= 0:
        raise FaultSpecError(f"jitter_ns must be positive, got {record['jitter_ns']}")
    if kind == "backend_churn":
        action = record.get("action", "flap")
        if action not in CHURN_ACTIONS:
            raise FaultSpecError(
                f"backend_churn action must be one of {CHURN_ACTIONS}, got {action!r}"
            )
    if kind == "firewall_churn":
        action = record.get("action", "add")
        if action not in ("add", "remove"):
            raise FaultSpecError(
                f"firewall_churn action must be 'add' or 'remove', got {action!r}"
            )
    if kind == "expiry_threshold" and int(record["value"]) < 1:
        raise FaultSpecError("expiry_threshold value must be at least 1")
    if kind == "park_drain":
        fraction = float(record.get("fraction", 1.0))
        if not 0.0 < fraction <= 1.0:
            raise FaultSpecError(f"park_drain fraction must lie in (0, 1], got {fraction}")
    if int(record.get("count", 1)) < 1:
        raise FaultSpecError("event count must be at least 1")
    link = record.get("link")
    if link is not None and not is_link_selector(link):
        raise FaultSpecError(
            f"unknown link selector {link!r}; expected one of "
            f"{LINK_SELECTORS} or genN"
        )


def is_link_selector(selector: Any) -> bool:
    """True when *selector* names a resolvable link target (server/gen/genN/all)."""
    if not isinstance(selector, str):
        return False
    if selector in LINK_SELECTORS:
        return True
    return selector.startswith("gen") and selector[3:].isdigit()
