"""The fault injector: a simulation node that executes a chaos schedule.

:class:`FaultInjectorNode` is wired into a topology by the experiment
runner when a scenario carries a ``faults`` spec.  At traffic start it
materializes the schedule against the run horizon and registers one
event-loop callback per fault event; at each callback it resolves the
event's targets against the *live* testbed (links by selector, Maglev
load balancers and firewalls by scanning the NF chains, the program via
a :class:`~repro.controlplane.manager.ControlPlaneManager`) and applies
the mutation.

Determinism contract: every random choice — which backend drains, the
per-window loss/jitter RNG seeds — derives from the injector seed and
the event's materialization sequence, never from ambient state.  The
same scenario therefore replays the same churn on the fast and the
reference simulation path, which is what lets the fast-vs-slow and
seed-determinism metamorphic relations hold under active fault
schedules (``tests/property/test_property_faults.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.controlplane.manager import ControlPlaneManager
from repro.errors import FaultSpecError
from repro.faults.events import FaultEvent, is_link_selector
from repro.faults.schedule import EventSchedule
from repro.netsim.eventloop import EventLoop
from repro.netsim.node import Node
from repro.nf.firewall import Firewall, FirewallRule
from repro.nf.loadbalancer import Backend, MaglevLoadBalancer
from repro.workloads.base import derived_rng

#: RNG salt for the injector's own choices (backend selection).
_INJECTOR_SALT = 0x_FA_02

#: RNG salt namespace for per-event loss/jitter windows.
_WINDOW_SALT = 0x_FA_03

#: Subnet pool for chaos-added firewall rules: an address range the
#: traffic generators never use, so a rule burst changes the ACL's
#: probe cost without (by default) changing any verdict.
_CHAOS_RULE_SUBNET = "172.31.{octet}.0/24"


class FaultInjectorNode(Node):
    """Executes an :class:`EventSchedule` against a running testbed."""

    def __init__(
        self,
        env: EventLoop,
        topology: Any,
        program: Any,
        schedule: EventSchedule,
        seed: int = 0,
        name: str = "fault-injector",
    ) -> None:
        super().__init__(env, name)
        self.topology = topology
        self.schedule = schedule
        self.seed = seed
        self.manager = ControlPlaneManager(program, topology)
        self._rng = derived_rng(seed, _INJECTOR_SALT)
        self._chaos_rule_count = 0
        self._chaos_backend_count = 0
        #: Rules this injector added, so ``firewall_churn remove`` prefers
        #: withdrawing its own rules before touching the scenario's ACL.
        self._added_rules: Dict[int, List[FirewallRule]] = {}
        # Counters (surfaced via ``stats`` and read by the chaos suite).
        self.events_applied = 0
        self.links_downed = 0
        self.loss_windows = 0
        self.jitter_windows = 0
        self.backends_removed = 0
        self.backends_added = 0
        self.rules_added = 0
        self.rules_removed = 0
        self.threshold_changes = 0
        #: Binding name -> parking slots drained by park_drain events.
        self.slots_drained: Dict[str, int] = {}
        #: Applied-event log: (at_ns, kind) pairs in execution order.
        self.applied: List[Tuple[int, str]] = []
        # Overlapping-window bookkeeping.  Outage windows nest: a link
        # comes back up only when every window covering it has closed.
        # Loss/jitter windows are last-writer-wins: a window's close
        # restores the link only if no newer window has re-armed it
        # since (the token identifies the arming event).
        self._down_depth: Dict[int, int] = {}
        #: Outage epoch per link: an explicit link_up bumps it, which
        #: cancels every back_up timer armed in the previous epoch (a
        #: stale closure must not end a window opened after the link_up).
        self._down_epoch: Dict[int, int] = {}
        self._loss_token: Dict[int, int] = {}
        self._jitter_token: Dict[int, int] = {}
        # Observability hooks (repro.obs): fault applications become
        # trace annotations and profiled "fault_injection" wall time.
        self.obs_recorder = None
        self.obs_profiler = None

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def start(self, duration_ns: int) -> None:
        """Materialize the schedule and arm one callback per event."""
        if duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        base_ns = self.env.now
        events = self.schedule.materialize(self.seed, duration_ns)
        self.env.schedule_many(
            (base_ns + event.at_ns, self._applier(event)) for event in events
        )

    def _applier(self, event: FaultEvent):
        def apply() -> None:
            self.apply_event(event)

        return apply

    # ------------------------------------------------------------------ #
    # Target resolution
    # ------------------------------------------------------------------ #

    def _select_links(self, params) -> List[Any]:
        """Resolve a ``link``/``binding`` selector pair against the topology.

        Selector names are validated at spec time (see
        :func:`~repro.faults.events.is_link_selector`); this re-check
        covers callers that build events programmatically.
        """
        selector = params.get("link", "server")
        if not is_link_selector(selector):
            raise FaultSpecError(
                f"link selector {selector!r} matched nothing; "
                "expected server, gen, genN or all"
            )
        binding = params.get("binding")
        links: List[Any] = []
        for attachment in self.topology.attachments:
            if binding is not None and attachment.binding.name != binding:
                continue
            if selector in ("server", "all"):
                links.append(attachment.server_link)
            if selector in ("gen", "all"):
                links.extend(attachment.gen_links)
            elif selector.startswith("gen") and selector != "gen":
                index = int(selector[3:])
                if index < len(attachment.gen_links):
                    links.append(attachment.gen_links[index])
        if not links:
            # A well-formed selector that matches nothing (binding typo,
            # genN beyond the topology's generator count) must fail loudly
            # — a silently no-op'd fault event would let a run claim
            # chaos coverage it never had.
            raise FaultSpecError(
                f"link selector {selector!r}"
                + (f" with binding {binding!r}" if binding is not None else "")
                + " matched no link in this topology"
            )
        return links

    def _nfs_of_type(self, nf_type) -> List[Tuple[Any, Any]]:
        """Every ``(server_node, nf)`` pair of *nf_type* across the chains."""
        found = []
        for attachment in self.topology.attachments:
            server = attachment.server
            for nf in server.model.chain:
                if isinstance(nf, nf_type):
                    found.append((server, nf))
        return found

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def apply_event(self, event: FaultEvent) -> None:
        """Apply one event now (normally invoked by the event loop)."""
        profiler = self.obs_profiler
        if profiler is None:
            self._apply(event)
            return
        profiler.enter("fault_injection")
        try:
            self._apply(event)
        finally:
            profiler.exit()

    def _apply(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_apply_{event.kind}")
        handler(event)
        self.events_applied += 1
        self.applied.append((self.env.now, event.kind))
        recorder = self.obs_recorder
        if recorder is not None:
            recorder.fault_applied(
                event.kind, self.env.now, event.duration_ns, dict(event.params)
            )

    def _apply_link_down(self, event: FaultEvent) -> None:
        links = self._select_links(event.params)
        epochs = {}
        for link in links:
            self._down_depth[id(link)] = self._down_depth.get(id(link), 0) + 1
            epochs[id(link)] = self._down_epoch.get(id(link), 0)
            link.set_up(False)
        self.links_downed += len(links)
        duration = event.duration_ns
        if duration:
            def back_up() -> None:
                for link in links:
                    if self._down_epoch.get(id(link), 0) != epochs[id(link)]:
                        # An explicit link_up ended this epoch; the
                        # window (and its depth contribution) is gone.
                        continue
                    depth = self._down_depth.get(id(link), 1) - 1
                    self._down_depth[id(link)] = depth
                    if depth <= 0:
                        link.set_up(True)

            self.env.schedule_in(duration, back_up)

    def _apply_link_up(self, event: FaultEvent) -> None:
        # An explicit up event ends every outstanding outage window and
        # starts a fresh epoch, cancelling their pending back_up timers.
        for link in self._select_links(event.params):
            self._down_depth[id(link)] = 0
            self._down_epoch[id(link)] = self._down_epoch.get(id(link), 0) + 1
            link.set_up(True)

    def _apply_link_loss(self, event: FaultEvent) -> None:
        probability = float(event.params["probability"])
        links = self._select_links(event.params)
        for index, link in enumerate(links):
            self._loss_token[id(link)] = event.sequence
            link.set_loss(
                probability,
                seed=self._window_seed(event.sequence, index),
            )
        self.loss_windows += 1
        duration = event.duration_ns
        if duration:
            def close_window() -> None:
                for link in links:
                    if self._loss_token.get(id(link)) == event.sequence:
                        link.set_loss(0.0)

            self.env.schedule_in(duration, close_window)

    def _apply_link_jitter(self, event: FaultEvent) -> None:
        jitter_ns = int(event.params["jitter_ns"])
        links = self._select_links(event.params)
        for index, link in enumerate(links):
            self._jitter_token[id(link)] = event.sequence
            link.set_jitter(jitter_ns, seed=self._window_seed(event.sequence, index))
        self.jitter_windows += 1
        duration = event.duration_ns
        if duration:
            def close_window() -> None:
                for link in links:
                    if self._jitter_token.get(id(link)) == event.sequence:
                        link.set_jitter(0)

            self.env.schedule_in(duration, close_window)

    def _window_seed(self, sequence: int, link_index: int) -> int:
        return (self.seed * 1_000_003 + _WINDOW_SALT * 8_191
                + sequence * 127 + link_index) & 0xFFFFFFFF

    def _apply_backend_churn(self, event: FaultEvent) -> None:
        action = event.params.get("action", "flap")
        count = int(event.params.get("count", 1))
        for _server, lb in self._nfs_of_type(MaglevLoadBalancer):
            for _ in range(count):
                if action in ("remove", "flap") and len(lb.backends) > 1:
                    victim = self._rng.choice(lb.backends)
                    lb.remove_backend(victim.name)
                    self.backends_removed += 1
                    if action == "flap":
                        lb.add_backend(victim)
                        self.backends_added += 1
                elif action == "add":
                    self._chaos_backend_count += 1
                    n = self._chaos_backend_count
                    lb.add_backend(
                        Backend.from_string(
                            f"chaos-{n}", f"10.200.{n // 250}.{n % 250 + 1}"
                        )
                    )
                    self.backends_added += 1

    def _apply_firewall_churn(self, event: FaultEvent) -> None:
        action = event.params.get("action", "add")
        count = int(event.params.get("count", 1))
        subnet = event.params.get("subnet")
        touched = []
        for server, firewall in self._nfs_of_type(Firewall):
            added = self._added_rules.setdefault(id(firewall), [])
            for _ in range(count):
                if action == "add":
                    if subnet is not None:
                        rule = FirewallRule.blacklist(subnet)
                    else:
                        self._chaos_rule_count += 1
                        rule = FirewallRule.blacklist(
                            _CHAOS_RULE_SUBNET.format(
                                octet=self._chaos_rule_count % 256
                            )
                        )
                    firewall.add_rule(rule)
                    added.append(rule)
                    self.rules_added += 1
                else:
                    if added:
                        rule = added.pop()
                        firewall.remove_rule(firewall.rules.index(rule))
                        self.rules_removed += 1
                    elif len(firewall.rules) > 1:
                        # Never drain the ACL completely: the scenario's
                        # semantics (which traffic is blacklisted) should
                        # degrade, not invert.
                        firewall.remove_rule(0)
                        self.rules_removed += 1
            touched.append(server)
        # Rule-count changes move the chain's cycle estimates; re-derive
        # the fast path's cached cost model at the same instant the
        # reference path (which queries live) picks the change up.
        for server in touched:
            server.invalidate_cost_cache()

    def _apply_expiry_threshold(self, event: FaultEvent) -> None:
        if self.manager.set_expiry_threshold(int(event.params["value"])):
            self.threshold_changes += 1

    def _apply_park_drain(self, event: FaultEvent) -> None:
        drained = self.manager.drain_parked(
            binding=event.params.get("binding"),
            fraction=float(event.params.get("fraction", 1.0)),
        )
        for name, count in drained.items():
            self.slots_drained[name] = self.slots_drained.get(name, 0) + count

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def handle_packet(self, packet, port) -> None:  # pragma: no cover - no links
        raise NotImplementedError("the fault injector terminates no links")

    def stats(self) -> Dict[str, float]:
        """Counter snapshot (chaos-suite assertions, preview output)."""
        return {
            "events_applied": float(self.events_applied),
            "links_downed": float(self.links_downed),
            "loss_windows": float(self.loss_windows),
            "jitter_windows": float(self.jitter_windows),
            "backends_removed": float(self.backends_removed),
            "backends_added": float(self.backends_added),
            "rules_added": float(self.rules_added),
            "rules_removed": float(self.rules_removed),
            "threshold_changes": float(self.threshold_changes),
            "slots_drained": float(sum(self.slots_drained.values())),
        }
