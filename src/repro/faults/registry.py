"""The named fault-profile registry.

Every profile here is runnable three ways with zero setup: previewed
with ``repro faults preview <name>``, attached to any experiment with
``repro run <fig> --faults <name>``, and swept by campaigns
(``grid: {faults: [...]}``) or the scenario fuzzer.

Profiles express times as *fractions of the run horizon* so one profile
adapts to any scenario duration and ``--time-scale`` setting.  Builders,
not instances, are registered, mirroring the workload registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import FaultSpecError
from repro.faults.schedule import EventSchedule

#: Profile name → zero-argument builder returning a fresh schedule.
FAULT_REGISTRY: Dict[str, Callable[[], EventSchedule]] = {}


def register_fault_profile(name: str, builder: Callable[[], EventSchedule]) -> None:
    """Add *builder* under *name*; duplicate names are an error."""
    if name in FAULT_REGISTRY:
        raise FaultSpecError(f"fault profile {name!r} is already registered")
    FAULT_REGISTRY[name] = builder


def fault_profile_names() -> List[str]:
    """Sorted registered fault-profile names."""
    return sorted(FAULT_REGISTRY)


def get_fault_profile(name: str) -> EventSchedule:
    """Build a fresh schedule for *name* (``FaultSpecError`` on unknowns)."""
    builder = FAULT_REGISTRY.get(name)
    if builder is None:
        raise FaultSpecError(
            f"unknown fault profile {name!r}; expected one of {fault_profile_names()}"
        )
    return builder()


# ---------------------------------------------------------------------- #
# Built-in profiles
# ---------------------------------------------------------------------- #


def _link_flap() -> EventSchedule:
    return EventSchedule(
        name="link-flap",
        description="The switch→NF-server link goes down for 8% of the run, "
                    "twice, mid-run; parked headers ride out the outage.",
        events=(
            {"kind": "link_down", "at_frac": 0.35, "duration_frac": 0.08,
             "link": "server"},
            {"kind": "link_down", "at_frac": 0.70, "duration_frac": 0.08,
             "link": "server"},
        ),
    )


def _lossy_links() -> EventSchedule:
    return EventSchedule(
        name="lossy-links",
        description="Random 5% frame loss opens on every link in periodic "
                    "windows (degraded optics / early congestion drops).",
        generators=(
            {"kind": "link_loss", "period_frac": 0.25, "duration_frac": 0.10,
             "probability": 0.05, "link": "all", "jitter": 0.3},
        ),
    )


def _jittery_links() -> EventSchedule:
    return EventSchedule(
        name="jittery-links",
        description="Latency-jitter windows add up to 4 µs of uniform extra "
                    "propagation delay on the server link.",
        generators=(
            {"kind": "link_jitter", "period_frac": 0.30, "duration_frac": 0.15,
             "jitter_ns": 4_000, "link": "server", "jitter": 0.2},
        ),
    )


def _backend_churn() -> EventSchedule:
    return EventSchedule(
        name="backend-churn",
        description="Maglev pool churn: a backend drains out and a fresh one "
                    "joins every fifth of the run (rolling restart).",
        generators=(
            {"kind": "backend_churn", "period_frac": 0.20, "action": "flap",
             "jitter": 0.25},
        ),
    )


def _rule_burst() -> EventSchedule:
    return EventSchedule(
        name="rule-burst",
        description="Firewall ACL bursts: 8 rules install mid-run and are "
                    "withdrawn later (policy push + rollback).",
        events=(
            {"kind": "firewall_churn", "at_frac": 0.30, "action": "add", "count": 8},
            {"kind": "firewall_churn", "at_frac": 0.75, "action": "remove", "count": 8},
        ),
    )


def _threshold_flap() -> EventSchedule:
    return EventSchedule(
        name="threshold-flap",
        description="The control plane oscillates the expiry threshold between "
                    "aggressive and conservative mid-run (PayloadPark only).",
        events=(
            {"kind": "expiry_threshold", "at_frac": 0.30, "value": 10},
            {"kind": "expiry_threshold", "at_frac": 0.60, "value": 1},
        ),
    )


def _park_drain() -> EventSchedule:
    return EventSchedule(
        name="park-drain",
        description="The control plane reclaims half the occupied parking "
                    "slots mid-run, accounting each as an eviction "
                    "(SRAM re-slicing under pressure).",
        events=(
            {"kind": "park_drain", "at_frac": 0.50, "fraction": 0.5},
        ),
    )


def _chaos_mix() -> EventSchedule:
    return EventSchedule(
        name="chaos-mix",
        description="Everything at once: backend churn, rule bursts, loss "
                    "windows, a link flap, a threshold change and a park "
                    "drain in one run.",
        events=(
            {"kind": "link_down", "at_frac": 0.40, "duration_frac": 0.05,
             "link": "gen0"},
            {"kind": "firewall_churn", "at_frac": 0.25, "action": "add", "count": 4},
            {"kind": "expiry_threshold", "at_frac": 0.55, "value": 5},
            {"kind": "park_drain", "at_frac": 0.65, "fraction": 0.5},
        ),
        generators=(
            {"kind": "backend_churn", "period_frac": 0.25, "action": "flap",
             "jitter": 0.2},
            {"kind": "link_loss", "period_frac": 0.35, "duration_frac": 0.08,
             "probability": 0.03, "link": "all", "jitter": 0.3},
        ),
    )


register_fault_profile("link-flap", _link_flap)
register_fault_profile("lossy-links", _lossy_links)
register_fault_profile("jittery-links", _jittery_links)
register_fault_profile("backend-churn", _backend_churn)
register_fault_profile("rule-burst", _rule_burst)
register_fault_profile("threshold-flap", _threshold_flap)
register_fault_profile("park-drain", _park_drain)
register_fault_profile("chaos-mix", _chaos_mix)
